//! Property-based safety tests of the first-order (restarted PDHG) node
//! engine, cross-checked against the `gmip-verify` exact rational oracle:
//! the dual-feasibility-adjusted bound is valid at *arbitrary* dual
//! vectors and at every dual iterate the engine actually retires with —
//! so inexact first-order iterates can never prune a true optimum.

use gmip::linalg::CsrMatrix;
use gmip::lp::firstorder::tighten_bounds;
use gmip::lp::{safe_dual_bound, FirstOrderWaveEngine, FoOutcome, PdhgConfig, StandardLp};
use gmip::problems::generators::{random_mip, RandomMipConfig};
use gmip::problems::MipInstance;
use gmip_verify::{solve_oracle, OracleStatus};
use proptest::prelude::*;

/// The oracle-certified optimum (source == internal sense: `random_mip`
/// instances maximize), or `None` if the oracle proves infeasibility.
fn oracle_optimum(m: &MipInstance) -> Option<f64> {
    let r = solve_oracle(m).expect("oracle");
    match r.status {
        OracleStatus::Optimal => Some(r.objective.expect("optimal => objective").approx()),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The safe dual bound dominates the exact MIP optimum at completely
    /// arbitrary dual vectors — even ones no PDHG trajectory would visit.
    /// (The bound over-states the node LP, which over-states the MIP.)
    #[test]
    fn safe_bound_dominates_oracle_at_arbitrary_duals(
        rows in 2usize..6,
        cols in 4usize..10,
        density in 0.3f64..0.9,
        seed in 0u64..5000,
        y_raw in proptest::collection::vec(-10.0f64..10.0, 6),
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 1.0,
            seed,
        });
        let Some(exact) = oracle_optimum(&inst) else { return Ok(()) };
        let std = StandardLp::from_instance(&inst, &[]);
        let csr = CsrMatrix::from_dense(&std.a);
        let slack_rows: Vec<(usize, f64)> =
            std.slacks.iter().map(|&(_, r, cf)| (r, cf)).collect();
        let y: Vec<f64> = (0..std.m()).map(|i| y_raw[i % y_raw.len()]).collect();
        let bound = safe_dual_bound(&csr, &std.b, &std.c, &std.lb, &std.ub, &slack_rows, &y);
        prop_assert!(
            bound >= exact - 1e-6,
            "safe bound {bound} cuts off the exact optimum {exact} at y={y:?}"
        );
        // Implied-bound tightening never cuts the optimum either: the
        // bound stays valid on the tightened box.
        let (mut lb, mut ub) = (std.lb.clone(), std.ub.clone());
        if tighten_bounds(&csr, &std.b, &mut lb, &mut ub) {
            let tightened =
                safe_dual_bound(&csr, &std.b, &std.c, &lb, &ub, &slack_rows, &y);
            prop_assert!(
                tightened >= exact - 1e-6,
                "tightened safe bound {tightened} cuts off the exact optimum {exact}"
            );
        }
    }

    /// An actual engine run — loose tolerance, tight iteration cap, so
    /// lanes retire on genuinely inexact iterates — still never states a
    /// bound below the exact optimum, and never declares a feasible
    /// instance's root LP infeasible.
    #[test]
    fn engine_retirement_bound_dominates_oracle(
        rows in 2usize..6,
        cols in 4usize..10,
        seed in 0u64..5000,
        max_iters in 8usize..120,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density: 0.5,
            integral_fraction: 1.0,
            seed,
        });
        let Some(exact) = oracle_optimum(&inst) else { return Ok(()) };
        let std = StandardLp::from_instance(&inst, &[]);
        let cfg = PdhgConfig {
            tol: 1e-3,
            max_iters,
            ..PdhgConfig::default()
        };
        let mut fo = FirstOrderWaveEngine::new(gmip::gpu::Accel::gpu(1), &std, 1, cfg)
            .expect("engine");
        fo.load_lane(0, 0, &std.lb, &std.ub, None).expect("load");
        fo.run_to_retire();
        let report = fo.take_lane(0).expect("take");
        prop_assert_ne!(
            report.outcome,
            FoOutcome::Infeasible,
            "root LP of an oracle-feasible MIP declared infeasible"
        );
        prop_assert!(
            report.safe_bound >= exact - 1e-6,
            "{:?} lane retired with bound {} below the exact optimum {exact}",
            report.outcome,
            report.safe_bound
        );
    }
}
