//! Determinism guarantees: the simulators use logical clocks and seeded
//! RNGs only, so identical inputs must produce *bit-identical* outputs —
//! solve paths, cost ledgers, and cluster makespans alike. (DESIGN.md's
//! determinism commitment, load-bearing for reproducible experiments.)

use gmip::core::{plan, MipConfig, MipSolver, Strategy};
use gmip::gpu::CostModel;
use gmip::parallel::{solve_parallel, solve_threaded, ParallelConfig};
use gmip::problems::generators::{knapsack, random_mip, RandomMipConfig};
use gmip::trace::TraceSession;
use std::sync::Mutex;

/// The trace collector is process-global: a session started in one test
/// would capture spans recorded by solver code running concurrently in a
/// sibling test thread. Every test in this binary takes this lock so the
/// byte-identical trace comparisons see only their own events.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn device_solver_is_bit_deterministic() {
    let _g = gate();
    let instance = knapsack(18, 0.5, 99);
    let run = || {
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 30,
        );
        let mut s = MipSolver::with_plan(instance.clone(), p);
        let r = s.solve().expect("solve");
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.lp_iterations,
            r.stats.cuts,
            r.stats.device.kernel_launches,
            r.stats.device.h2d_bytes,
            r.stats.sim_time_ns.to_bits(),
        )
    };
    assert_eq!(run(), run(), "two identical runs diverged");
}

#[test]
fn des_cluster_is_bit_deterministic() {
    let _g = gate();
    let instance = random_mip(&RandomMipConfig {
        rows: 4,
        cols: 10,
        density: 0.6,
        integral_fraction: 1.0,
        seed: 5,
    });
    let run = || {
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 24,
                checkpoint_every: Some(2),
                ..Default::default()
            },
        )
        .expect("parallel solve");
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.messages,
            r.stats.message_bytes,
            r.stats.makespan_ns.to_bits(),
            r.snapshots.len(),
        )
    };
    assert_eq!(run(), run(), "DES cluster runs diverged");
}

#[test]
fn device_solver_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = knapsack(15, 0.5, 7);
    let run = || {
        let session = TraceSession::start();
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 30,
        );
        let mut s = MipSolver::with_plan(instance.clone(), p);
        s.solve().expect("solve");
        session.finish().to_chrome_json()
    };
    let (a, b) = (run(), run());
    assert!(
        !a.is_empty() && a.contains("\"node\""),
        "solver spans missing"
    );
    assert!(a.contains("gpu 0"), "GPU track missing");
    assert_eq!(a, b, "trace streams diverged between identical runs");
}

#[test]
fn batched_wave_trace_stream_is_byte_identical() {
    use gmip::core::{solve_batched_wave, BatchedWaveConfig};
    use gmip::gpu::Accel;
    let _g = gate();
    let instance = knapsack(15, 0.5, 7);
    let run = || {
        let session = TraceSession::start();
        let r = solve_batched_wave(
            &instance,
            &BatchedWaveConfig {
                lanes: 4,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .expect("batched solve");
        (
            r.objective.to_bits(),
            r.nodes,
            r.supersteps,
            r.retires,
            r.refills,
            r.device.kernel_launches,
            r.makespan_ns.to_bits(),
            session.finish().to_chrome_json(),
        )
    };
    let (a, b) = (run(), run());
    assert!(
        a.7.contains("wave.pricing") && a.7.contains("wave.factor"),
        "fused wave kernel spans missing from trace"
    );
    assert!(a.7.contains("gpu 0"), "GPU track missing");
    assert_eq!(a, b, "batched wave runs diverged");
}

#[test]
fn des_cluster_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = random_mip(&RandomMipConfig {
        rows: 4,
        cols: 10,
        density: 0.6,
        integral_fraction: 1.0,
        seed: 5,
    });
    let run = || {
        let session = TraceSession::start();
        solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 24,
                checkpoint_every: Some(2),
                ..Default::default()
            },
        )
        .expect("parallel solve");
        session.finish().to_chrome_json()
    };
    let (a, b) = (run(), run());
    assert!(a.contains("supervisor"), "supervisor track missing");
    assert!(a.contains("rank 1"), "per-rank track missing");
    assert_eq!(a, b, "DES cluster trace streams diverged");
}

#[test]
fn chaotic_des_cluster_trace_stream_is_byte_identical() {
    use gmip::parallel::ChaosConfig;
    let _g = gate();
    let instance = knapsack(16, 0.5, 5);
    // Size the crash window from the clean makespan so crashes (and the
    // crash/recovery spans they emit) actually land mid-run.
    let clean = solve_parallel(
        &instance,
        ParallelConfig {
            workers: 3,
            gpu_mem: 1 << 24,
            ..Default::default()
        },
    )
    .expect("clean solve");
    let run = || {
        let session = TraceSession::start();
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 24,
                chaos: Some(ChaosConfig {
                    crashes: 4,
                    drop_prob: 0.15,
                    horizon_ns: clean.stats.makespan_ns * 0.8,
                    ..ChaosConfig::quiet(11)
                }),
                ..Default::default()
            },
        )
        .expect("chaotic solve");
        assert!(r.stats.faults.crashes > 0, "plan must land a crash");
        session.finish().to_chrome_json()
    };
    let (a, b) = (run(), run());
    assert!(a.contains("fault.crash"), "crash spans missing from trace");
    assert!(
        a.contains("recovery.respawn") || a.contains("recovery.degrade"),
        "recovery spans missing from trace"
    );
    assert!(a.contains("recovery.reassign") || a.contains("fault.drop"));
    assert_eq!(
        a, b,
        "identical fault plans must give byte-identical traces"
    );
}

#[test]
fn threaded_cluster_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = knapsack(12, 0.5, 3);
    // workers = 1 on purpose: with several OS worker threads the *span
    // stream* stays well-formed but the interleaving of shared-queue service
    // is scheduler-dependent, so only the single-worker threaded cluster
    // promises byte-identical traces (the DES cluster promises it at any
    // width — that's the test above).
    let run = || {
        let session = TraceSession::start();
        solve_threaded(
            &instance,
            &ParallelConfig {
                workers: 1,
                gpu_mem: 1 << 24,
                ..Default::default()
            },
        )
        .expect("threaded solve");
        session.finish().to_chrome_json()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "threaded cluster trace streams diverged");
}

#[test]
fn propagation_on_and_off_reach_the_same_oracle_checked_optimum_everywhere() {
    use gmip::core::{
        solve_batched_wave, solve_first_order_wave, BatchedWaveConfig, FirstOrderWaveConfig,
    };
    use gmip::gpu::Accel;
    use gmip::parallel::{solve_hierarchical, HierarchyConfig};
    let _g = gate();
    let instance = knapsack(14, 0.5, 7);
    let oracle = gmip::verify::solve_oracle(&instance).expect("oracle");
    let exact = oracle
        .objective
        .as_ref()
        .expect("optimal instance")
        .approx();
    let mut objectives: Vec<(String, f64)> = Vec::new();
    for enabled in [false, true] {
        let tag = if enabled { "prop" } else { "base" };
        let period = if enabled { 2 } else { 0 };
        // Single-device host path.
        let mut cfg = MipConfig::default();
        cfg.propagate = enabled;
        cfg.heuristics.fix_and_propagate_period = period;
        let mut s = MipSolver::host_baseline(instance.clone(), cfg);
        objectives.push((format!("host/{tag}"), s.solve().expect("host").objective));
        // Threaded cluster (real OS threads; answer-deterministic).
        let pcfg = ParallelConfig {
            workers: 2,
            gpu_mem: 1 << 24,
            propagate: enabled,
            heuristic_period: period,
            ..Default::default()
        };
        objectives.push((
            format!("threaded/{tag}"),
            solve_threaded(&instance, &pcfg)
                .expect("threaded")
                .objective,
        ));
        // Discrete-event cluster, flat and hierarchical.
        objectives.push((
            format!("cluster/{tag}"),
            solve_parallel(&instance, pcfg.clone())
                .expect("cluster")
                .objective,
        ));
        objectives.push((
            format!("hierarchy/{tag}"),
            solve_hierarchical(
                &instance,
                ParallelConfig {
                    workers: 4,
                    ..pcfg.clone()
                },
                HierarchyConfig {
                    fanout: 2,
                    ..Default::default()
                },
            )
            .expect("hierarchy")
            .objective,
        ));
        // Batched simplex wave.
        objectives.push((
            format!("batched/{tag}"),
            solve_batched_wave(
                &instance,
                &BatchedWaveConfig {
                    lanes: 4,
                    propagate: enabled,
                    heuristic_period: period,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .expect("batched")
            .objective,
        ));
        // First-order (PDHG) wave.
        objectives.push((
            format!("firstorder/{tag}"),
            solve_first_order_wave(
                &instance,
                &FirstOrderWaveConfig {
                    lanes: 4,
                    propagate: enabled,
                    heuristic_period: period,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .expect("firstorder")
            .objective,
        ));
    }
    for (path, obj) in &objectives {
        assert!(
            (obj - exact).abs() < 1e-6,
            "{path}: objective {obj} disagrees with the proven optimum {exact}"
        );
    }
}

#[test]
fn propagating_batched_wave_trace_stream_is_byte_identical() {
    use gmip::core::{solve_batched_wave, BatchedWaveConfig};
    use gmip::gpu::Accel;
    let _g = gate();
    let instance = knapsack(15, 0.5, 7);
    let run = || {
        let session = TraceSession::start();
        let r = solve_batched_wave(
            &instance,
            &BatchedWaveConfig {
                lanes: 4,
                propagate: true,
                heuristic_period: 2,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .expect("batched solve");
        (
            r.objective.to_bits(),
            r.nodes,
            r.first_incumbent_ns.map(f64::to_bits),
            r.metrics.counter("prop.tightenings").to_bits(),
            session.finish().to_chrome_json(),
        )
    };
    let (a, b) = (run(), run());
    assert!(
        a.4.contains("prop.activity") && a.4.contains("prop.tighten"),
        "propagation kernel spans missing from trace"
    );
    assert_eq!(a, b, "propagating batched wave runs diverged");
}

#[test]
fn propagating_des_cluster_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = knapsack(14, 0.5, 5);
    let run = || {
        let session = TraceSession::start();
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 24,
                propagate: true,
                heuristic_period: 2,
                ..Default::default()
            },
        )
        .expect("parallel solve");
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.makespan_ns.to_bits(),
            r.stats.metrics.counter("prop.nodes").to_bits(),
            session.finish().to_chrome_json(),
        )
    };
    let (a, b) = (run(), run());
    assert!(f64::from_bits(a.3) > 0.0, "ranks never propagated");
    assert_eq!(a, b, "propagating DES cluster runs diverged");
}

#[test]
fn generators_are_bit_deterministic() {
    let _g = gate();
    use gmip::problems::mps::write_mps;
    for seed in [0u64, 7, 12345] {
        let a = write_mps(&knapsack(25, 0.5, seed));
        let b = write_mps(&knapsack(25, 0.5, seed));
        assert_eq!(a, b);
    }
}
