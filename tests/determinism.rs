//! Determinism guarantees: the simulators use logical clocks and seeded
//! RNGs only, so identical inputs must produce *bit-identical* outputs —
//! solve paths, cost ledgers, and cluster makespans alike. (DESIGN.md's
//! determinism commitment, load-bearing for reproducible experiments.)

use gmip::core::{plan, MipConfig, MipSolver, Strategy};
use gmip::gpu::CostModel;
use gmip::parallel::{solve_parallel, ParallelConfig};
use gmip::problems::generators::{knapsack, random_mip, RandomMipConfig};

#[test]
fn device_solver_is_bit_deterministic() {
    let instance = knapsack(18, 0.5, 99);
    let run = || {
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 30,
        );
        let mut s = MipSolver::with_plan(instance.clone(), p);
        let r = s.solve().expect("solve");
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.lp_iterations,
            r.stats.cuts,
            r.stats.device.kernel_launches,
            r.stats.device.h2d_bytes,
            r.stats.sim_time_ns.to_bits(),
        )
    };
    assert_eq!(run(), run(), "two identical runs diverged");
}

#[test]
fn des_cluster_is_bit_deterministic() {
    let instance = random_mip(&RandomMipConfig {
        rows: 4,
        cols: 10,
        density: 0.6,
        integral_fraction: 1.0,
        seed: 5,
    });
    let run = || {
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 24,
                checkpoint_every: Some(2),
                ..Default::default()
            },
        )
        .expect("parallel solve");
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.messages,
            r.stats.message_bytes,
            r.stats.makespan_ns.to_bits(),
            r.snapshots.len(),
        )
    };
    assert_eq!(run(), run(), "DES cluster runs diverged");
}

#[test]
fn generators_are_bit_deterministic() {
    use gmip::problems::mps::write_mps;
    for seed in [0u64, 7, 12345] {
        let a = write_mps(&knapsack(25, 0.5, seed));
        let b = write_mps(&knapsack(25, 0.5, seed));
        assert_eq!(a, b);
    }
}
