//! Serving-tier determinism: one seed fixes the traffic tape, every
//! admission decision, every fault plan, every schedule — so a full
//! 500-job replay must reproduce byte-identical traces and identical
//! served outcomes run over run (DESIGN.md §10's determinism claim).

use gmip::parallel::ChaosConfig;
use gmip::serve::{generate, ServeConfig, Service, TrafficConfig};
use gmip::trace::TraceSession;
use std::sync::Mutex;

/// Same process-global trace-collector gate as tests/determinism.rs: the
/// byte-identical comparisons must not see spans from sibling tests.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn replay(chaos: Option<ChaosConfig>) -> (String, String, u64, usize) {
    let (tenants, jobs) = generate(&TrafficConfig {
        jobs: 500,
        seed: 424242,
        max_items: 9,
        ..TrafficConfig::default()
    });
    let session = TraceSession::start();
    let report = Service::new(
        ServeConfig {
            ranks: 6,
            chaos,
            ..ServeConfig::default()
        },
        tenants,
    )
    .run(jobs);
    let trace = session.finish().to_chrome_json();
    (
        trace,
        report.outcome_digest(),
        report.makespan_ns.to_bits(),
        report.completed(),
    )
}

#[test]
fn serve_500_job_replay_is_byte_identical() {
    let _g = gate();
    let (trace_a, digest_a, makespan_a, done_a) = replay(None);
    let (trace_b, digest_b, makespan_b, done_b) = replay(None);
    assert!(done_a > 400, "most of the tape should be answered");
    assert_eq!(done_a, done_b, "completed counts diverged");
    assert!(trace_a.contains("serve"), "serve track missing from trace");
    assert_eq!(digest_a, digest_b, "served outcomes diverged");
    assert_eq!(makespan_a, makespan_b, "simulated makespans diverged");
    assert_eq!(trace_a, trace_b, "serve trace streams diverged");
}

#[test]
fn serve_replay_under_chaos_is_byte_identical() {
    let _g = gate();
    let overlay = ChaosConfig {
        drop_prob: 0.05,
        delay_prob: 0.1,
        crashes: 1,
        horizon_ns: 5.0e5,
        ..ChaosConfig::quiet(77)
    };
    let (trace_a, digest_a, makespan_a, done_a) = replay(Some(overlay.clone()));
    let (trace_b, digest_b, makespan_b, _) = replay(Some(overlay));
    assert!(done_a > 300, "chaos must not wipe out the tape");
    assert_eq!(digest_a, digest_b, "chaotic outcomes diverged");
    assert_eq!(makespan_a, makespan_b);
    assert_eq!(trace_a, trace_b, "chaotic serve traces diverged");
}
