//! gmip-chaos differential harness: a cluster under deterministic fault
//! injection must terminate and report the **same optimal objective** (and
//! an integer-feasible incumbent) as the fault-free run — the recovery
//! protocol may cost simulated time, never correctness.
//!
//! The matrix crosses catalog/generator instances with fault plans of
//! different character (drop-heavy, delay-heavy, crash-heavy, everything at
//! once). Crash windows are sized from each instance's measured fault-free
//! makespan so the injected failures land while the cluster is busy.

use gmip::core::MipStatus;
use gmip::parallel::{solve_parallel, solve_threaded, ChaosConfig, ParallelConfig, ParallelResult};
use gmip::problems::catalog::textbook_mip;
use gmip::problems::generators::knapsack;
use gmip::problems::MipInstance;
use gmip::trace::names;

const WORKERS: usize = 3;

fn cluster_cfg() -> ParallelConfig {
    ParallelConfig {
        workers: WORKERS,
        gpu_mem: 1 << 24,
        ..Default::default()
    }
}

fn instances() -> Vec<(&'static str, MipInstance)> {
    vec![
        ("textbook", textbook_mip()),
        ("knapsack-14", knapsack(14, 0.5, 7)),
        ("knapsack-16", knapsack(16, 0.5, 2)),
    ]
}

/// Fault-free baseline: objective + makespan for sizing crash windows.
fn baseline(id: &str, instance: &MipInstance) -> (f64, f64) {
    let r = solve_parallel(instance, cluster_cfg())
        .unwrap_or_else(|e| panic!("{id}: clean solve failed: {e}"));
    assert_eq!(r.status, MipStatus::Optimal, "{id}: clean run not optimal");
    (r.objective, r.stats.makespan_ns)
}

/// The fault plans of the matrix. `makespan` is the instance's fault-free
/// makespan; crash horizons stop at 80% of it so crashes land mid-search.
fn plans(makespan: f64) -> Vec<(&'static str, ChaosConfig)> {
    vec![
        (
            "drop-heavy",
            ChaosConfig {
                drop_prob: 0.25,
                ..ChaosConfig::quiet(3)
            },
        ),
        (
            "delay-heavy",
            ChaosConfig {
                delay_prob: 0.5,
                delay_ns: 40_000.0,
                ..ChaosConfig::quiet(4)
            },
        ),
        (
            "crash-heavy",
            ChaosConfig {
                crashes: 4,
                horizon_ns: makespan * 0.8,
                ..ChaosConfig::quiet(11)
            },
        ),
        (
            "kitchen-sink",
            ChaosConfig {
                crashes: 2,
                drop_prob: 0.1,
                delay_prob: 0.2,
                delay_ns: 20_000.0,
                stragglers: 1,
                straggle_factor: 4.0,
                straggle_ns: makespan * 0.3,
                horizon_ns: makespan * 0.8,
                ..ChaosConfig::quiet(9)
            },
        ),
    ]
}

fn chaotic(instance: &MipInstance, chaos: ChaosConfig) -> ParallelResult {
    solve_parallel(
        instance,
        ParallelConfig {
            chaos: Some(chaos),
            ..cluster_cfg()
        },
    )
    .expect("chaotic solve must not error")
}

/// The tentpole assertion: every (instance, fault plan) cell recovers to
/// the fault-free optimum with a feasible incumbent.
#[test]
fn every_fault_plan_recovers_the_fault_free_optimum() {
    for (id, instance) in instances() {
        let (expected, makespan) = baseline(id, &instance);
        for (plan_id, chaos) in plans(makespan) {
            let r = chaotic(&instance, chaos);
            assert_eq!(r.status, MipStatus::Optimal, "{id}/{plan_id}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "{id}/{plan_id}: chaotic {} vs clean {expected}",
                r.objective
            );
            assert!(
                instance.is_integer_feasible(&r.x, 1e-5),
                "{id}/{plan_id}: incumbent not integer-feasible"
            );
        }
    }
}

/// A crash-heavy plan must demonstrably exercise the recovery machinery:
/// crashes land, lost subproblems are reassigned, ranks respawn — and the
/// counters surface in the metrics registry, not just in `FaultStats`.
#[test]
fn crash_heavy_plan_exercises_reassignment() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = baseline("knapsack-16/5", &instance);
    let r = chaotic(
        &instance,
        ChaosConfig {
            crashes: 6,
            drop_prob: 0.1,
            horizon_ns: makespan * 0.8,
            ..ChaosConfig::quiet(11)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!((r.objective - expected).abs() < 1e-6);
    let f = &r.stats.faults;
    assert!(f.crashes > 0, "no crash landed: {f:?}");
    assert!(f.reassignments > 0, "no subproblem reassigned: {f:?}");
    assert!(f.respawns > 0, "no rank respawned: {f:?}");
    let m = &r.stats.metrics;
    assert!(m.counter(names::FAULT_CRASHES) > 0.0);
    assert!(m.counter(names::RECOVERY_REASSIGNMENTS) > 0.0);
    assert!(m.counter(names::RECOVERY_RESPAWNS) > 0.0);
    assert_eq!(m.counter(names::FAULT_CRASHES), f.crashes as f64);
    assert_eq!(
        m.counter(names::RECOVERY_REASSIGNMENTS),
        f.reassignments as f64
    );
}

/// With a zero respawn budget the cluster degrades to fewer ranks — and
/// still finishes with the right answer (last-rank immunity guarantees at
/// least one survivor).
#[test]
fn respawn_exhaustion_degrades_gracefully() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = baseline("knapsack-16/5", &instance);
    let r = chaotic(
        &instance,
        ChaosConfig {
            crashes: 5,
            horizon_ns: makespan * 0.8,
            max_respawns: 0,
            ..ChaosConfig::quiet(11)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!((r.objective - expected).abs() < 1e-6);
    assert!(
        r.stats.faults.degraded_ranks > 0,
        "zero budget must retire ranks: {:?}",
        r.stats.faults
    );
    assert!(r.stats.metrics.counter(names::RECOVERY_DEGRADED_RANKS) > 0.0);
}

/// The extreme degradation edge case: a crash storm with a zero respawn
/// budget kills every rank except the immune last survivor mid-solve. The
/// cluster must finish on that one rank and still report the fault-free
/// optimum.
#[test]
fn killing_all_but_the_immune_last_rank_still_finds_the_optimum() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = baseline("knapsack-16/5", &instance);
    let r = chaotic(
        &instance,
        ChaosConfig {
            // Far more crash draws than ranks: every rank is hit within
            // the horizon, and the sole survivor is hit repeatedly.
            crashes: 32,
            horizon_ns: makespan * 0.8,
            max_respawns: 0,
            ..ChaosConfig::quiet(11)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "single-survivor run {} vs clean {expected}",
        r.objective
    );
    assert!(
        instance.is_integer_feasible(&r.x, 1e-5),
        "survivor incumbent not integer-feasible"
    );
    let f = &r.stats.faults;
    assert_eq!(
        f.degraded_ranks,
        WORKERS - 1,
        "every rank but the immune survivor must retire: {f:?}"
    );
    assert!(
        f.respawns > 0,
        "crashes on the immune survivor must respawn it: {f:?}"
    );
}

/// Faults cost simulated time: a crash-laden run can't beat the clean one.
#[test]
fn recovery_costs_simulated_time() {
    let instance = knapsack(16, 0.5, 5);
    let (_, makespan) = baseline("knapsack-16/5", &instance);
    let r = chaotic(
        &instance,
        ChaosConfig {
            crashes: 4,
            drop_prob: 0.15,
            horizon_ns: makespan * 0.8,
            ..ChaosConfig::quiet(11)
        },
    );
    assert!(r.stats.faults.any(), "plan must inject something");
    assert!(
        r.stats.makespan_ns >= makespan,
        "chaotic makespan {} beat clean {makespan}",
        r.stats.makespan_ns
    );
}

/// A fault-free config reports all-zero fault counters and no `fault.*` /
/// `recovery.*` rows in the metrics registry.
#[test]
fn reliable_cluster_reports_no_faults() {
    let r = solve_parallel(&knapsack(12, 0.5, 1), cluster_cfg()).unwrap();
    assert!(!r.stats.faults.any());
    assert_eq!(r.stats.metrics.counter(names::FAULT_CRASHES), 0.0);
    assert!(
        !r.stats
            .metrics
            .counters()
            .any(|(k, _)| k.starts_with("fault.")),
        "reliable runs must not register fault metrics"
    );
}

/// The threaded backend's recovery: injected thread crashes are detected
/// by report timeout and respawned, and the answer still matches the
/// fault-free DES cluster.
#[test]
fn threaded_crashes_recover_to_the_same_answer() {
    let instance = knapsack(14, 0.5, 8);
    let (expected, _) = baseline("knapsack-14/8", &instance);
    let r = solve_threaded(
        &instance,
        &ParallelConfig {
            chaos: Some(ChaosConfig {
                crashes: 3,
                ..ChaosConfig::quiet(7)
            }),
            ..cluster_cfg()
        },
    )
    .expect("threaded chaotic solve");
    assert_eq!(r.status, MipStatus::Optimal);
    assert!((r.objective - expected).abs() < 1e-6);
    assert!(r.respawns >= 1, "crash point must kill a thread");
    assert!(r.reassignments >= 1, "the dead thread held a subproblem");
}

// ---- hierarchical (supervisor-of-supervisors) fault matrix ----

use gmip::parallel::{solve_hierarchical, HierResult, HierarchyConfig};

fn hier_cfg(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        gpu_mem: 1 << 24,
        ..Default::default()
    }
}

fn hier_baseline(id: &str, instance: &MipInstance) -> (f64, f64) {
    let r = solve_hierarchical(
        instance,
        hier_cfg(16),
        HierarchyConfig {
            fanout: 4,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{id}: clean hier solve failed: {e}"));
    assert_eq!(
        r.status,
        MipStatus::Optimal,
        "{id}: clean hier run not optimal"
    );
    (r.objective, r.stats.makespan_ns)
}

fn chaotic_hier(instance: &MipInstance, chaos: ChaosConfig) -> HierResult {
    solve_hierarchical(
        instance,
        ParallelConfig {
            chaos: Some(chaos),
            ..hier_cfg(16)
        },
        HierarchyConfig {
            fanout: 4,
            ..Default::default()
        },
    )
    .expect("chaotic hier solve must not error")
}

/// Every subtree a recovery moves is accounted for: reopen events match
/// rank-level reassignments plus hierarchical transit arrivals exactly, so
/// nothing is double-counted or silently dropped.
fn assert_reassignment_ledger(id: &str, r: &HierResult) {
    assert_eq!(
        r.stats.tree.reopened,
        r.stats.faults.reassignments + r.hier.transit_arrivals,
        "{id}: reopen ledger out of balance: {:?} / {:?}",
        r.stats.faults,
        r.hier
    );
    assert!(
        r.hier.transit_arrivals >= r.stats.faults.group_reassigned_subtrees,
        "{id}: evacuated subtrees never arrived"
    );
}

/// A sub-supervisor crash mid-solve takes its whole group down; the root
/// must evacuate the group's subtrees, respawn it, and still land on the
/// fault-free optimum — with the recovery counters visible in the metrics
/// registry and the subtree ledger balanced.
#[test]
fn sub_supervisor_crash_recovers_the_optimum() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = hier_baseline("knapsack-16/5", &instance);
    let r = chaotic_hier(
        &instance,
        ChaosConfig {
            sub_crashes: 2,
            horizon_ns: makespan * 0.8,
            ..ChaosConfig::quiet(11)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "sub-crash run {} vs clean {expected}",
        r.objective
    );
    assert!(instance.is_integer_feasible(&r.x, 1e-5));
    let f = &r.stats.faults;
    assert!(f.sub_crashes > 0, "no sub-supervisor crash landed: {f:?}");
    assert!(f.sub_respawns > 0, "crashed group never respawned: {f:?}");
    assert_reassignment_ledger("sub-crash", &r);
    let m = &r.stats.metrics;
    assert_eq!(m.counter(names::FAULT_SUB_CRASHES), f.sub_crashes as f64);
    assert_eq!(
        m.counter(names::RECOVERY_SUB_RESPAWNS),
        f.sub_respawns as f64
    );
    assert_eq!(
        m.counter(names::RECOVERY_GROUP_REASSIGNED),
        f.group_reassigned_subtrees as f64
    );
}

/// Targeted wipe: every rank of one group crashes at once mid-solve. The
/// survivors absorb the group's frontier and the answer still matches the
/// fault-free run.
#[test]
fn killing_every_rank_in_one_group_recovers() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = hier_baseline("knapsack-16/5", &instance);
    let r = chaotic_hier(
        &instance,
        ChaosConfig {
            kill_group: Some(1),
            kill_group_at_ns: makespan * 0.3,
            max_respawns: 0,
            ..ChaosConfig::quiet(13)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "group-wipe run {} vs clean {expected}",
        r.objective
    );
    assert!(instance.is_integer_feasible(&r.x, 1e-5));
    assert!(
        r.stats.faults.crashes >= 4,
        "the wipe must land on all 4 ranks of the group: {:?}",
        r.stats.faults
    );
    assert_reassignment_ledger("group-wipe", &r);
}

/// A straggling root link slows every summary, broadcast, and stolen
/// subtree — it may cost simulated time, never the answer.
#[test]
fn straggling_root_link_costs_time_not_correctness() {
    let instance = knapsack(16, 0.5, 5);
    let (expected, makespan) = hier_baseline("knapsack-16/5", &instance);
    let r = chaotic_hier(
        &instance,
        ChaosConfig {
            root_slow_factor: 16.0,
            ..ChaosConfig::quiet(17)
        },
    );
    assert_eq!(r.status, MipStatus::Optimal);
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "straggled-root run {} vs clean {expected}",
        r.objective
    );
    assert!(
        r.stats.makespan_ns >= makespan,
        "a 16x slower root link can't beat the clean makespan ({} < {makespan})",
        r.stats.makespan_ns
    );
}

/// The hierarchical fault plans are deterministic too: identical seeds give
/// identical objectives, counters, and makespans.
#[test]
fn chaotic_hier_runs_are_bit_deterministic() {
    let instance = knapsack(16, 0.5, 5);
    let (_, makespan) = hier_baseline("knapsack-16/5", &instance);
    let run = || {
        let r = chaotic_hier(
            &instance,
            ChaosConfig {
                sub_crashes: 1,
                crashes: 2,
                root_slow_factor: 2.0,
                horizon_ns: makespan * 0.8,
                ..ChaosConfig::quiet(23)
            },
        );
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.hier.clone(),
            r.stats.faults,
            r.stats.makespan_ns.to_bits(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "chaotic hier runs diverged under identical seeds"
    );
}

/// Identical seeds ⇒ identical chaotic runs, down to objective bits, fault
/// counters, and makespan (the determinism contract extends to faults).
#[test]
fn chaotic_runs_are_bit_deterministic() {
    let instance = knapsack(14, 0.5, 7);
    let run = || {
        let r = chaotic(
            &instance,
            ChaosConfig {
                crashes: 3,
                drop_prob: 0.15,
                delay_prob: 0.2,
                delay_ns: 20_000.0,
                ..ChaosConfig::quiet(21)
            },
        );
        (
            r.objective.to_bits(),
            r.stats.nodes,
            r.stats.messages,
            r.stats.makespan_ns.to_bits(),
            r.stats.faults,
        )
    };
    assert_eq!(run(), run(), "chaotic runs diverged under identical seeds");
}
