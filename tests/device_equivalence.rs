//! Property-based equivalence of the simulated device kernels and the host
//! linear algebra: the device charges simulated cost but must compute the
//! same numbers, conserve its memory ledger, and keep its clock monotone.

use gmip::gpu::{Accel, DEFAULT_STREAM as S};
use gmip::linalg::{CsrMatrix, DenseMatrix, LuFactors};
use proptest::prelude::*;

/// Strategy: a small well-conditioned (diagonally dominant) matrix.
fn dd_matrix_strategy(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(-1.0f64..1.0, n * n),
                proptest::collection::vec(1.0f64..3.0, n),
            )
        })
        .prop_map(|(n, off, diag)| {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        a.set(i, j, n as f64 + diag[i]);
                    } else {
                        a.set(i, j, off[i * n + j]);
                    }
                }
            }
            a
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Device LU solve equals host LU solve bit-for-bit (same kernel code).
    #[test]
    fn device_lu_equals_host(a in dd_matrix_strategy(10)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let host = LuFactors::factorize(&a).expect("dd nonsingular").solve(&b).expect("solve");
        let accel = Accel::gpu(1);
        let dev = accel.with(|d| -> Result<Vec<f64>, gmip::gpu::GpuError> {
            let ah = d.upload_matrix(&a, S)?;
            let bh = d.upload_vector(&b, S)?;
            let f = d.lu_factor(ah, S)?;
            let x = d.lu_solve(f, bh, S)?;
            d.download_vector(x, S)
        }).expect("device path");
        prop_assert_eq!(host, dev);
    }

    /// Sparse and dense device paths agree numerically.
    #[test]
    fn sparse_and_dense_paths_agree(a in dd_matrix_strategy(8)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
        let accel = Accel::gpu(1);
        let (xd, xs) = accel.with(|d| -> Result<(Vec<f64>, Vec<f64>), gmip::gpu::GpuError> {
            let ah = d.upload_matrix(&a, S)?;
            let bh = d.upload_vector(&b, S)?;
            let f = d.lu_factor(ah, S)?;
            let x = d.lu_solve(f, bh, S)?;
            let xd = d.download_vector(x, S)?;
            let sh = d.upload_sparse(&CsrMatrix::from_dense(&a), S)?;
            let sf = d.sparse_lu_factor(sh, S)?;
            let xs_h = d.sparse_solve(sf, bh, S)?;
            let xs = d.download_vector(xs_h, S)?;
            Ok((xd, xs))
        }).expect("paths");
        for (u, v) in xd.iter().zip(&xs) {
            prop_assert!((u - v).abs() < 1e-8, "dense {} vs sparse {}", u, v);
        }
    }

    /// The memory ledger balances: freeing everything returns usage to zero,
    /// and the simulated clock never decreases.
    #[test]
    fn memory_conserved_and_clock_monotone(
        a in dd_matrix_strategy(8),
        ops in 1usize..6,
    ) {
        let accel = Accel::gpu(1);
        let mut last_clock = 0.0f64;
        accel.with(|d| -> Result<(), gmip::gpu::GpuError> {
            let mut vecs = Vec::new();
            let ah = d.upload_matrix(&a, S)?;
            for k in 0..ops {
                let x = vec![k as f64 + 1.0; a.cols()];
                let xh = d.upload_vector(&x, S)?;
                let yh = d.gemv(ah, xh, S)?;
                vecs.push(xh);
                vecs.push(yh);
                let t = d.elapsed_ns();
                assert!(t >= last_clock, "clock went backwards");
                last_clock = t;
            }
            for v in vecs {
                d.free_vector(v)?;
            }
            d.free_matrix(ah)?;
            Ok(())
        }).expect("ops");
        prop_assert_eq!(accel.mem_used(), 0, "device memory leaked");
    }

    /// Batched device solve equals per-system host solves.
    #[test]
    fn batched_solve_equals_host(
        mats in proptest::collection::vec(dd_matrix_strategy(6), 1..5),
    ) {
        let rhs: Vec<Vec<f64>> = mats.iter().map(|m| vec![1.0; m.rows()]).collect();
        let accel = Accel::gpu(1);
        let got = accel.with(|d| -> Result<Vec<Vec<f64>>, gmip::gpu::GpuError> {
            let mut hs = Vec::new();
            for (m, b) in mats.iter().zip(&rhs) {
                hs.push((d.upload_matrix(m, S)?, d.upload_vector(b, S)?));
            }
            let xs = d.batched_lu_solve(&hs, S)?;
            xs.into_iter().map(|x| d.download_vector(x, S)).collect()
        }).expect("batched");
        for ((m, b), x) in mats.iter().zip(&rhs).zip(&got) {
            let want = LuFactors::factorize(m).expect("dd").solve(b).expect("solve");
            prop_assert_eq!(&want, x);
        }
    }
}
