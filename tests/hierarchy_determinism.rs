//! Determinism audit for the hierarchical (supervisor-of-supervisors)
//! cluster: identical seeds must give byte-identical trace streams and
//! bit-identical node/steal counts, with and without injected faults, and
//! the topology must never change the answer — `cluster:64x8` has to agree
//! with the flat star and with the host solver on every instance here.

use gmip::core::{plan, MipConfig, MipSolver, Strategy};
use gmip::gpu::CostModel;
use gmip::parallel::{
    solve_hierarchical, solve_parallel, ChaosConfig, HierarchyConfig, ParallelConfig,
};
use gmip::problems::generators::{knapsack, random_mip, RandomMipConfig};
use gmip::trace::TraceSession;
use std::sync::Mutex;

/// The trace collector is process-global (see tests/determinism.rs): every
/// test in this binary serializes on this lock so byte-identical trace
/// comparisons see only their own spans.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn pcfg(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        gpu_mem: 1 << 26,
        ..Default::default()
    }
}

fn hcfg(fanout: usize) -> HierarchyConfig {
    HierarchyConfig {
        fanout,
        ..Default::default()
    }
}

/// The audited fingerprint of one hierarchical run: everything the
/// determinism commitment covers, down to makespan bits.
fn fingerprint(r: &gmip::parallel::HierResult) -> (u64, usize, usize, usize, usize, usize, u64) {
    (
        r.objective.to_bits(),
        r.stats.nodes,
        r.hier.steals,
        r.hier.stolen_subtrees,
        r.hier.root_messages,
        r.hier.summaries,
        r.stats.makespan_ns.to_bits(),
    )
}

#[test]
fn cluster_64x8_is_bit_deterministic() {
    let _g = gate();
    // This instance actually exercises the steal path at 64x8 (the run
    // below asserts so): reruns must agree on *every* count, not just the
    // objective.
    let instance = knapsack(28, 0.5, 7);
    let run = || {
        let r = solve_hierarchical(&instance, pcfg(64), hcfg(8)).expect("hier solve");
        assert_eq!(
            r.hier.max_evaluations_per_node, 1,
            "fault-free run must evaluate every node exactly once"
        );
        fingerprint(&r)
    };
    let (a, b) = (run(), run());
    assert!(a.2 > 0, "64x8 on this instance should steal at least once");
    assert_eq!(a, b, "hierarchical cluster reruns diverged");
}

#[test]
fn cluster_64x8_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = knapsack(28, 0.5, 7);
    let run = || {
        let session = TraceSession::start();
        solve_hierarchical(&instance, pcfg(64), hcfg(8)).expect("hier solve");
        session.finish().to_chrome_json()
    };
    let (a, b) = (run(), run());
    assert!(a.contains("hier.summary"), "summary spans missing");
    assert!(
        a.contains("hier.steal.grant") && a.contains("hier.handoff"),
        "steal spans missing"
    );
    assert_eq!(a, b, "hierarchical trace streams diverged");
}

#[test]
fn chaotic_cluster_trace_stream_is_byte_identical() {
    let _g = gate();
    let instance = knapsack(28, 0.5, 7);
    // Size the fault window from the clean makespan so the sub-supervisor
    // crash lands mid-solve.
    let clean = solve_hierarchical(&instance, pcfg(64), hcfg(8)).expect("clean solve");
    let chaos = ChaosConfig {
        sub_crashes: 1,
        crashes: 2,
        horizon_ns: clean.stats.makespan_ns * 0.8,
        ..ChaosConfig::quiet(11)
    };
    let run = || {
        let session = TraceSession::start();
        let r = solve_hierarchical(
            &instance,
            ParallelConfig {
                chaos: Some(chaos.clone()),
                ..pcfg(64)
            },
            hcfg(8),
        )
        .expect("chaotic hier solve");
        assert!(r.stats.faults.sub_crashes > 0, "plan must land a sub-crash");
        (fingerprint(&r), session.finish().to_chrome_json())
    };
    let (a, b) = (run(), run());
    assert!(
        a.1.contains("fault.sub_crash") && a.1.contains("recovery.sub_respawn"),
        "sub-supervisor fault/recovery spans missing"
    );
    assert_eq!(
        a, b,
        "identical fault plans must give byte-identical hierarchical runs"
    );
}

#[test]
fn hierarchy_agrees_with_flat_and_host() {
    let _g = gate();
    let instances = [
        knapsack(24, 0.5, 3),
        random_mip(&RandomMipConfig {
            rows: 4,
            cols: 10,
            density: 0.6,
            integral_fraction: 1.0,
            seed: 5,
        }),
    ];
    for instance in &instances {
        let host = {
            let p = plan(
                Strategy::CpuOrchestrated,
                MipConfig::default(),
                CostModel::gpu_pcie(),
                1 << 30,
            );
            MipSolver::with_plan(instance.clone(), p)
                .solve()
                .expect("host solve")
        };
        let flat = solve_parallel(instance, pcfg(64)).expect("flat solve");
        let hier = solve_hierarchical(instance, pcfg(64), hcfg(8)).expect("hier solve");
        assert!(
            (hier.objective - host.objective).abs() < 1e-6,
            "{}: hierarchy {} vs host {}",
            instance.name,
            hier.objective,
            host.objective
        );
        assert!(
            (hier.objective - flat.objective).abs() < 1e-6,
            "{}: hierarchy {} vs flat cluster {}",
            instance.name,
            hier.objective,
            flat.objective
        );
    }
}
