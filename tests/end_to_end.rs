//! End-to-end integration: every execution path (host baseline, the four
//! device strategies, the discrete-event cluster, the threaded cluster)
//! must agree on the optimum of every catalog-suite instance.

use gmip::core::{plan, MipConfig, MipSolver, MipStatus, Strategy};
use gmip::gpu::CostModel;
use gmip::parallel::{solve_parallel, solve_threaded, ParallelConfig};
use gmip::problems::catalog::small_suite;

/// Reference optima from the host baseline.
fn reference(id: &str, instance: &gmip::problems::MipInstance) -> f64 {
    let mut s = MipSolver::host_baseline(instance.clone(), MipConfig::default());
    let r = s
        .solve()
        .unwrap_or_else(|e| panic!("{id}: host solve failed: {e}"));
    assert_eq!(r.status, MipStatus::Optimal, "{id}: host not optimal");
    assert!(
        instance.is_integer_feasible(&r.x, 1e-5),
        "{id}: host incumbent infeasible"
    );
    r.objective
}

#[test]
fn all_strategies_agree_across_suite() {
    for entry in small_suite() {
        let expected = reference(entry.id, &entry.instance);
        for strategy in [
            Strategy::GpuOnly,
            Strategy::CpuOrchestrated,
            Strategy::Hybrid,
            Strategy::BigMip { devices: 2 },
        ] {
            let p = plan(
                strategy,
                MipConfig::default(),
                CostModel::gpu_pcie(),
                1 << 30,
            );
            let mut s = MipSolver::with_plan(entry.instance.clone(), p);
            let r = s
                .solve()
                .unwrap_or_else(|e| panic!("{}/{}: {e}", entry.id, strategy.name()));
            assert_eq!(
                r.status,
                MipStatus::Optimal,
                "{}/{}",
                entry.id,
                strategy.name()
            );
            assert!(
                (r.objective - expected).abs() < 1e-5,
                "{}/{}: {} vs {}",
                entry.id,
                strategy.name(),
                r.objective,
                expected
            );
        }
    }
}

#[test]
fn clusters_agree_across_suite() {
    for entry in small_suite() {
        let expected = reference(entry.id, &entry.instance);
        let cfg = ParallelConfig {
            workers: 3,
            gpu_mem: 1 << 26,
            ..Default::default()
        };
        let des = solve_parallel(&entry.instance, cfg.clone())
            .unwrap_or_else(|e| panic!("{}: DES failed: {e}", entry.id));
        assert_eq!(des.status, MipStatus::Optimal, "{}: DES", entry.id);
        assert!(
            (des.objective - expected).abs() < 1e-5,
            "{}: DES {} vs {}",
            entry.id,
            des.objective,
            expected
        );
        let thr = solve_threaded(&entry.instance, &cfg)
            .unwrap_or_else(|e| panic!("{}: threaded failed: {e}", entry.id));
        assert_eq!(thr.status, MipStatus::Optimal, "{}: threaded", entry.id);
        assert!(
            (thr.objective - expected).abs() < 1e-5,
            "{}: threaded {} vs {}",
            entry.id,
            thr.objective,
            expected
        );
    }
}

/// Strategy-equivalence over a *seeded* instance set: the single-device
/// solver, the threaded cluster, and DES clusters of several widths (with
/// and without fault injection) must all agree with the host baseline on
/// every generated instance.
#[test]
fn seeded_instances_agree_across_device_threaded_and_cluster() {
    use gmip::parallel::ChaosConfig;
    use gmip::problems::generators::knapsack;
    for seed in [13u64, 29, 41] {
        let instance = knapsack(14, 0.5, seed);
        let id = format!("knapsack-14/{seed}");
        let expected = reference(&id, &instance);
        // Single simulated device.
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 30,
        );
        let mut s = MipSolver::with_plan(instance.clone(), p);
        let dev = s.solve().unwrap_or_else(|e| panic!("{id}: device: {e}"));
        assert!(
            (dev.objective - expected).abs() < 1e-5,
            "{id}: device {} vs {expected}",
            dev.objective
        );
        // Threaded + DES clusters of several widths.
        for workers in [2usize, 4] {
            let cfg = ParallelConfig {
                workers,
                gpu_mem: 1 << 26,
                ..Default::default()
            };
            let des = solve_parallel(&instance, cfg.clone())
                .unwrap_or_else(|e| panic!("{id}/cluster:{workers}: {e}"));
            assert_eq!(des.status, MipStatus::Optimal, "{id}/cluster:{workers}");
            assert!(
                (des.objective - expected).abs() < 1e-5,
                "{id}/cluster:{workers}: {} vs {expected}",
                des.objective
            );
            let thr = solve_threaded(&instance, &cfg)
                .unwrap_or_else(|e| panic!("{id}/threaded:{workers}: {e}"));
            assert!(
                (thr.objective - expected).abs() < 1e-5,
                "{id}/threaded:{workers}: {} vs {expected}",
                thr.objective
            );
        }
        // A faulty cluster still lands on the same optimum.
        let faulty = solve_parallel(
            &instance,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 26,
                chaos: Some(ChaosConfig {
                    drop_prob: 0.2,
                    delay_prob: 0.2,
                    delay_ns: 20_000.0,
                    ..ChaosConfig::quiet(seed)
                }),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{id}/faulty: {e}"));
        assert_eq!(faulty.status, MipStatus::Optimal, "{id}/faulty");
        assert!(
            (faulty.objective - expected).abs() < 1e-5,
            "{id}/faulty: {} vs {expected}",
            faulty.objective
        );
    }
}

/// Differential check for the batched-wave strategy: lockstep fused
/// evaluation over a shared device matrix must reproduce the host
/// baseline's optimal objective — with a feasible incumbent — on every
/// seeded instance, at several wave widths.
#[test]
fn batched_wave_matches_host_on_seeded_suite() {
    use gmip::core::{solve_batched_wave, BatchedWaveConfig};
    use gmip::gpu::Accel;
    use gmip::problems::generators::knapsack;
    for seed in [13u64, 29, 41] {
        let instance = knapsack(14, 0.5, seed);
        let id = format!("knapsack-14/{seed}");
        let expected = reference(&id, &instance);
        for lanes in [1usize, 2, 3, 5, 7] {
            let r = solve_batched_wave(
                &instance,
                &BatchedWaveConfig {
                    lanes,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap_or_else(|e| panic!("{id}/batched:{lanes}: {e}"));
            assert_eq!(r.status, MipStatus::Optimal, "{id}/batched:{lanes}");
            assert!(
                (r.objective - expected).abs() < 1e-5,
                "{id}/batched:{lanes}: {} vs {expected}",
                r.objective
            );
            assert!(
                instance.is_integer_feasible(&r.x, 1e-5),
                "{id}/batched:{lanes}: incumbent infeasible"
            );
        }
    }
}

/// The batched wave must also agree on the catalog suite, and its fused
/// launches must undercut the per-lane concurrent evaluator at the same
/// width on an instance big enough to branch.
#[test]
fn batched_wave_agrees_on_catalog_and_undercuts_per_lane() {
    use gmip::core::{solve_batched_wave, solve_concurrent, BatchedWaveConfig, ConcurrentConfig};
    use gmip::gpu::Accel;
    for entry in small_suite() {
        let expected = reference(entry.id, &entry.instance);
        let r = solve_batched_wave(
            &entry.instance,
            &BatchedWaveConfig {
                lanes: 4,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap_or_else(|e| panic!("{}/batched: {e}", entry.id));
        assert_eq!(r.status, MipStatus::Optimal, "{}/batched", entry.id);
        assert!(
            (r.objective - expected).abs() < 1e-5,
            "{}/batched: {} vs {}",
            entry.id,
            r.objective,
            expected
        );
    }
    let instance = gmip::problems::generators::knapsack(16, 0.5, 21);
    let lanes = 4;
    let per_lane = solve_concurrent(
        &instance,
        &ConcurrentConfig {
            lanes,
            ..Default::default()
        },
        Accel::gpu(1),
    )
    .expect("per-lane solve");
    let batched = solve_batched_wave(
        &instance,
        &BatchedWaveConfig {
            lanes,
            ..Default::default()
        },
        Accel::gpu(1),
    )
    .expect("batched solve");
    assert!(
        (batched.objective - per_lane.objective).abs() < 1e-5,
        "strategies disagree: {} vs {}",
        batched.objective,
        per_lane.objective
    );
    assert!(
        batched.device.kernel_launches < per_lane.device.kernel_launches,
        "fused launches ({}) must undercut per-lane ({})",
        batched.device.kernel_launches,
        per_lane.device.kernel_launches
    );
    assert!(
        batched.makespan_ns < per_lane.makespan_ns,
        "batched wave must be faster in simulated time: {} vs {}",
        batched.makespan_ns,
        per_lane.makespan_ns
    );
}

#[test]
fn mps_roundtrip_preserves_optimum() {
    use gmip::problems::mps::{read_mps, write_mps};
    for entry in small_suite() {
        let expected = reference(entry.id, &entry.instance);
        let text = write_mps(&entry.instance);
        let back = read_mps(&text).unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        let mut s = MipSolver::host_baseline(back, MipConfig::default());
        let r = s.solve().expect("solve roundtripped instance");
        assert!(
            (r.objective - expected).abs() < 1e-5,
            "{}: roundtrip changed optimum {} vs {}",
            entry.id,
            r.objective,
            expected
        );
    }
}

#[test]
fn solver_configs_agree_on_one_instance() {
    use gmip::core::{BranchRule, PolicyKind};
    let instance = gmip::problems::generators::knapsack(16, 0.5, 77);
    let expected = reference("config-sweep", &instance);
    for policy in [
        PolicyKind::BestFirst,
        PolicyKind::DepthFirst,
        PolicyKind::BreadthFirst,
        PolicyKind::ReuseAffinity,
    ] {
        for rule in [BranchRule::MostFractional, BranchRule::PseudoCost] {
            for cuts in [true, false] {
                for reuse in [true, false] {
                    let mut cfg = MipConfig::default();
                    cfg.policy = policy;
                    cfg.branching = rule;
                    cfg.cuts.enabled = cuts;
                    cfg.engine_reuse = reuse;
                    let mut s = MipSolver::host_baseline(instance.clone(), cfg);
                    let r = s.solve().expect("solve");
                    assert!(
                        (r.objective - expected).abs() < 1e-6,
                        "{policy:?}/{rule:?}/cuts={cuts}/reuse={reuse}: {} vs {expected}",
                        r.objective
                    );
                }
            }
        }
    }
}
