//! The bundled MPS assets load, validate, and solve to the same optima on
//! every execution path — the file-based interchange a downstream user
//! exercises first.

use gmip::core::{MipConfig, MipSolver, MipStatus};
use gmip::gpu::Accel;
use gmip::problems::mps::read_mps;

fn load(name: &str) -> gmip::problems::MipInstance {
    let path = format!("{}/assets/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let m = read_mps(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    m
}

#[test]
fn bundled_assets_solve_consistently() {
    for name in ["knapsack15.mps", "facility5x3.mps", "ucommit3x3.mps"] {
        let instance = load(name);
        assert!(instance.num_vars() > 0);
        let mut host = MipSolver::host_baseline(instance.clone(), MipConfig::default());
        let hr = host.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(hr.status, MipStatus::Optimal, "{name}");
        assert!(
            instance.is_integer_feasible(&hr.x, 1e-5),
            "{name}: incumbent infeasible"
        );
        let mut dev = MipSolver::on_accel(instance.clone(), MipConfig::default(), Accel::gpu(1));
        let dr = dev.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (hr.objective - dr.objective).abs() < 1e-5,
            "{name}: host {} vs device {}",
            hr.objective,
            dr.objective
        );
    }
}

#[test]
fn bundled_knapsack_known_optimum() {
    // The knapsack asset is deterministic (seed 1); pin its optimum so any
    // accidental regeneration or parser drift is caught.
    let instance = load("knapsack15.mps");
    let mut s = MipSolver::host_baseline(instance, MipConfig::default());
    let r = s.solve().expect("solve");
    use gmip::problems::generators::knapsack::{knapsack, knapsack_brute_force};
    let expected = knapsack_brute_force(&knapsack(15, 0.5, 1));
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "asset optimum {} vs generator brute force {}",
        r.objective,
        expected
    );
}
