//! The bundled MPS assets load, validate, and solve to the same optima on
//! every execution path — the file-based interchange a downstream user
//! exercises first.

use gmip::core::{MipConfig, MipSolver, MipStatus};
use gmip::gpu::Accel;
use gmip::problems::mps::{read_mps, write_mps};
use proptest::prelude::*;

fn load(name: &str) -> gmip::problems::MipInstance {
    let path = format!("{}/assets/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let m = read_mps(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    m
}

#[test]
fn bundled_assets_solve_consistently() {
    for name in ["knapsack15.mps", "facility5x3.mps", "ucommit3x3.mps"] {
        let instance = load(name);
        assert!(instance.num_vars() > 0);
        let mut host = MipSolver::host_baseline(instance.clone(), MipConfig::default());
        let hr = host.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(hr.status, MipStatus::Optimal, "{name}");
        assert!(
            instance.is_integer_feasible(&hr.x, 1e-5),
            "{name}: incumbent infeasible"
        );
        let mut dev = MipSolver::on_accel(instance.clone(), MipConfig::default(), Accel::gpu(1));
        let dr = dev.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (hr.objective - dr.objective).abs() < 1e-5,
            "{name}: host {} vs device {}",
            hr.objective,
            dr.objective
        );
    }
}

#[test]
fn bundled_knapsack_known_optimum() {
    // The knapsack asset is deterministic (seed 1); pin its optimum so any
    // accidental regeneration or parser drift is caught.
    let instance = load("knapsack15.mps");
    let mut s = MipSolver::host_baseline(instance, MipConfig::default());
    let r = s.solve().expect("solve");
    use gmip::problems::generators::knapsack::{knapsack, knapsack_brute_force};
    let expected = knapsack_brute_force(&knapsack(15, 0.5, 1));
    assert!(
        (r.objective - expected).abs() < 1e-6,
        "asset optimum {} vs generator brute force {}",
        r.objective,
        expected
    );
}

fn roundtrip_identity(m: &gmip::problems::MipInstance) {
    let text = write_mps(m);
    let back =
        read_mps(&text).unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", m.name));
    assert_eq!(*m, back, "{}: write->parse is not the identity", m.name);
}

#[test]
fn writer_parser_roundtrip_is_identity_on_catalog() {
    use gmip::problems::catalog::{figure1_knapsack, textbook_lp, textbook_mip};
    use gmip::problems::generators::{
        bin_packing, facility_location, fixed_charge_flow, generalized_assignment, knapsack,
        random_mip, set_cover, unit_commitment, RandomMipConfig,
    };
    let mut catalog = vec![
        figure1_knapsack(),
        textbook_lp(),
        textbook_mip(),
        knapsack(15, 0.5, 1),
        set_cover(8, 6, 0.4, 2),
        bin_packing(6, 1.0, 3),
        unit_commitment(3, 3, 4),
        generalized_assignment(3, 4, 5),
        facility_location(5, 3, 2.5, 6),
        fixed_charge_flow(5, 3, 4.0, 7),
    ];
    for seed in 0..4u64 {
        catalog.push(random_mip(&RandomMipConfig {
            rows: 6,
            cols: 9,
            seed,
            ..Default::default()
        }));
    }
    for m in &catalog {
        roundtrip_identity(m);
    }
}

#[test]
fn exotic_names_roundtrip_identity() {
    // Free-format MPS delimits fields by whitespace only, so any
    // non-whitespace bytes are legal names — including names longer than
    // the writer's 10-column padding, which must still be separated from
    // the following field.
    use gmip::problems::{Constraint, MipInstance, Objective, Sense, Variable};
    let mut m = MipInstance::new("exotic#names@µ", Objective::Maximize);
    m.add_var(Variable::binary("x#1@µ", 3.0));
    m.add_var(Variable::continuous("a[0].b", 0.0, 2.5, 1.0));
    m.add_var(Variable::integer(
        "a_very_long_variable_name_over_ten_columns",
        0.0,
        7.0,
        2.0,
    ));
    m.add_con(Constraint::new(
        "row/with:long_name_exceeding_padding",
        vec![(0, 1.0), (1, 0.5), (2, 1.25)],
        Sense::Le,
        4.0,
    ));
    m.add_con(Constraint::new(
        "c=2",
        vec![(0, 2.0), (2, 1.0)],
        Sense::Ge,
        1.0,
    ));
    roundtrip_identity(&m);
}

#[test]
fn free_row_objective_name_is_accepted() {
    // The objective row may carry any name; the parser keys on the N
    // sense, not on the literal "OBJ".
    let text = "\
NAME          freerow
ROWS
 N  COST
 L  CAP
COLUMNS
    X1        COST      3.0   CAP       1.0
    X2        COST      5.0   CAP       2.0
RHS
    RHS       CAP       2.0
BOUNDS
 UP BND       X1        1.0
 UP BND       X2        1.0
ENDATA
";
    let m = read_mps(text).expect("free-row objective must parse");
    assert_eq!(m.num_vars(), 2);
    assert_eq!(m.num_cons(), 1);
    assert_eq!(m.vars[0].obj, 3.0);
    assert_eq!(m.vars[1].obj, 5.0);
    assert_eq!(m.cons[0].rhs, 2.0);
}

#[test]
fn marker_lines_require_quoted_marker_keyword() {
    // A column literally named MARKER must not be mistaken for an
    // integrality marker, and a marker without INTORG/INTEND is an error.
    let ok = "\
NAME t
ROWS
 N  OBJ
 L  R1
COLUMNS
    MARKER    OBJ       1.0   R1        1.0
RHS
    RHS       R1        1.0
ENDATA
";
    let m = read_mps(ok).expect("column named MARKER must parse as data");
    assert_eq!(m.num_vars(), 1);
    assert_eq!(m.vars[0].name, "MARKER");

    let bad = "\
NAME t
ROWS
 N  OBJ
COLUMNS
    M1        'MARKER'  'WHATEVER'
ENDATA
";
    assert!(
        read_mps(bad).is_err(),
        "MARKER without INTORG/INTEND must be rejected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_mip_roundtrips_identically(
        rows in 1usize..8,
        cols in 2usize..10,
        density in 0.2f64..1.0,
        integral_fraction in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        use gmip::problems::generators::{random_mip, RandomMipConfig};
        let m = random_mip(&RandomMipConfig { rows, cols, density, integral_fraction, seed });
        let back = read_mps(&write_mps(&m)).expect("reparse");
        prop_assert_eq!(m, back);
    }
}
