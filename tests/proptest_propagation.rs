//! Soundness of the `gmip-prop` propagation layer against the `gmip-verify`
//! exact rational oracle.
//!
//! Propagation is only allowed to *shrink* a node's box around every
//! feasible integer point — it must never cut off the optimum and never
//! flag a feasible instance infeasible. The fix-and-propagate dive is only
//! allowed to propose points that are exactly feasible. These properties
//! are checked on randomized instances, plus a 200-seed deterministic sweep
//! of full propagation-enabled solves, every one compared to the exact
//! oracle's proven optimum.

use gmip::core::{MipConfig, MipSolver, MipStatus};
use gmip::problems::generators::{random_mip, RandomMipConfig};
use gmip::prop::Propagator;
use gmip::verify::{self, OracleStatus};
use proptest::prelude::*;

fn config(propagate: bool, heur_period: usize) -> MipConfig {
    let mut cfg = MipConfig::default();
    cfg.propagate = propagate;
    cfg.heuristics.fix_and_propagate_period = heur_period;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The propagated root box still contains the exact oracle's optimal
    /// point, and an instance flagged infeasible by propagation is exactly
    /// infeasible. Propagation is also idempotent: a second pass proves
    /// the fixpoint with zero further tightenings.
    #[test]
    fn propagated_bounds_are_sound_against_the_exact_oracle(
        rows in 2usize..6,
        cols in 4usize..11,
        density in 0.3f64..0.9,
        seed in 0u64..5000,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 1.0,
            seed,
        });
        let p = Propagator::new(&inst);
        let (mut lb, mut ub) = p.node_box(&[]);
        let out = p.propagate(&mut lb, &mut ub, 16);
        let oracle = verify::solve_oracle(&inst).expect("oracle");
        if out.infeasible {
            prop_assert_eq!(oracle.status, OracleStatus::Infeasible,
                "propagation flagged a feasible instance infeasible");
        } else if oracle.status == OracleStatus::Optimal {
            for (j, xj) in oracle.x.iter().enumerate() {
                let v = xj.approx();
                prop_assert!(
                    lb[j] - 1e-9 <= v && v <= ub[j] + 1e-9,
                    "x{j} = {v} of the exact optimum cut off by [{}, {}]",
                    lb[j], ub[j]
                );
            }
            // Idempotence: the fixpoint is a fixpoint.
            let (mut lb2, mut ub2) = (lb.clone(), ub.clone());
            let again = p.propagate(&mut lb2, &mut ub2, 16);
            prop_assert!(!again.infeasible);
            prop_assert_eq!(again.tightenings, 0, "fixpoint moved on re-propagation");
        }
    }

    /// Every incumbent a fix-and-propagate dive proposes re-checks feasible
    /// under exact rational arithmetic, and the propagation-enabled solve
    /// still lands the proven optimum.
    #[test]
    fn heuristic_incumbents_recheck_exactly_feasible(
        rows in 2usize..5,
        cols in 4usize..10,
        seed in 0u64..5000,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density: 0.6,
            integral_fraction: 1.0,
            seed,
        });
        let mut s = MipSolver::host_baseline(inst.clone(), config(true, 2));
        let r = s.solve().expect("solve");
        let oracle = verify::solve_oracle(&inst).expect("oracle");
        match oracle.status {
            OracleStatus::Optimal => {
                prop_assert_eq!(r.status, MipStatus::Optimal);
                let exact = oracle.objective.as_ref().expect("optimal").approx();
                prop_assert!((r.objective - exact).abs() < 1e-6,
                    "got {} oracle proved {exact}", r.objective);
                // Exact rational re-check of the served incumbent — dive
                // or branch-and-bound, it must be *exactly* feasible.
                let checked = verify::check_incumbent(&inst, &r.x, r.objective, 1e-5);
                prop_assert!(checked.is_ok(), "incumbent: {:?}", checked);
            }
            OracleStatus::Infeasible => {
                prop_assert_eq!(r.status, MipStatus::Infeasible);
            }
            _ => {}
        }
    }
}

/// The acceptance sweep: 200 deterministic randomized instances solved
/// with propagation *and* the fix-and-propagate dive enabled, every
/// objective held to the exact oracle's proven optimum. Zero
/// disagreements tolerated.
#[test]
fn two_hundred_propagation_enabled_solves_match_the_exact_oracle() {
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    for seed in 0..200u64 {
        let inst = random_mip(&RandomMipConfig {
            rows: 2 + (seed % 4) as usize,
            cols: 5 + (seed % 5) as usize,
            density: 0.4 + 0.1 * (seed % 5) as f64,
            integral_fraction: 1.0,
            seed: 10_000 + seed,
        });
        let mut s = MipSolver::host_baseline(inst.clone(), config(true, 3));
        let r = s.solve().expect("solve");
        let oracle = verify::solve_oracle(&inst).expect("oracle");
        match oracle.status {
            OracleStatus::Optimal => {
                optimal += 1;
                let exact = oracle.objective.as_ref().expect("optimal").approx();
                assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
                assert!(
                    (r.objective - exact).abs() < 1e-6,
                    "seed {seed}: propagation-enabled solve {} vs proven optimum {exact}",
                    r.objective
                );
                verify::check_incumbent(&inst, &r.x, r.objective, 1e-5)
                    .unwrap_or_else(|e| panic!("seed {seed}: incumbent re-check: {e}"));
            }
            OracleStatus::Infeasible => {
                infeasible += 1;
                assert_eq!(r.status, MipStatus::Infeasible, "seed {seed}");
            }
            other => panic!("seed {seed}: unexpected oracle status {other:?}"),
        }
    }
    // The sweep must actually exercise both outcomes (the generator always
    // admits x = 0, so "optimal" dominates — but assert it is not vacuous).
    assert!(
        optimal >= 150,
        "only {optimal} optimal instances in the sweep"
    );
    assert_eq!(optimal + infeasible, 200);
}
