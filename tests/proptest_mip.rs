//! Property-based tests of the full solver stack on randomly generated
//! MIPs: the branch-and-cut optimum must match exhaustive enumeration, LP
//! relaxation bounds must dominate, and host/device engines must agree.

use gmip::core::{MipConfig, MipSolver, MipStatus};
use gmip::gpu::Accel;
use gmip::problems::generators::{random_mip, RandomMipConfig};
use gmip::problems::MipInstance;
use proptest::prelude::*;

/// Exhaustive optimum over binary assignments (continuous vars solved as
/// all-binary instances here, so enumeration is exact).
fn brute_force_binary(m: &MipInstance) -> Option<f64> {
    let n = m.num_vars();
    assert!(n <= 16);
    let mut best: Option<f64> = None;
    for bits in 0u32..(1 << n) {
        let p: Vec<f64> = (0..n).map(|i| ((bits >> i) & 1) as f64).collect();
        if m.is_feasible(&p, 1e-9) {
            let v = m.objective_value(&p);
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Branch-and-cut equals brute force on feasible all-binary instances.
    #[test]
    fn solver_matches_enumeration(
        rows in 2usize..6,
        cols in 4usize..11,
        density in 0.3f64..0.9,
        seed in 0u64..5000,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 1.0,
            seed,
        });
        let expected = brute_force_binary(&inst).expect("x = 0 is always feasible");
        let mut s = MipSolver::host_baseline(inst.clone(), MipConfig::default());
        let r = s.solve().expect("solve");
        prop_assert_eq!(r.status, MipStatus::Optimal);
        prop_assert!((r.objective - expected).abs() < 1e-6,
            "got {} expected {}", r.objective, expected);
        prop_assert!(inst.is_integer_feasible(&r.x, 1e-5));
    }

    /// The LP relaxation bound dominates the MIP optimum, and rounding the
    /// relaxation never beats it.
    #[test]
    fn relaxation_dominates_optimum(
        rows in 2usize..6,
        cols in 4usize..10,
        seed in 0u64..5000,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density: 0.5,
            integral_fraction: 1.0,
            seed,
        });
        let lp = gmip::lp::solver::solve_relaxation_host(&inst, &[]).expect("relaxation");
        prop_assert_eq!(lp.status, gmip::lp::LpStatus::Optimal);
        let expected = brute_force_binary(&inst).expect("feasible");
        prop_assert!(lp.objective >= expected - 1e-6,
            "LP bound {} below MIP optimum {}", lp.objective, expected);
    }

    /// Host and simulated-device solvers take the same decisions and land
    /// on the same optimum, for mixed binary/continuous instances.
    #[test]
    fn host_and_device_agree(
        rows in 2usize..5,
        cols in 4usize..9,
        integral in 0.3f64..1.0,
        seed in 0u64..5000,
    ) {
        let inst = random_mip(&RandomMipConfig {
            rows,
            cols,
            density: 0.6,
            integral_fraction: integral,
            seed,
        });
        let mut host = MipSolver::host_baseline(inst.clone(), MipConfig::default());
        let hr = host.solve().expect("host");
        let mut dev = MipSolver::on_accel(inst, MipConfig::default(), Accel::gpu(1));
        let dr = dev.solve().expect("device");
        prop_assert_eq!(hr.status, dr.status);
        if hr.status == MipStatus::Optimal {
            prop_assert!((hr.objective - dr.objective).abs() < 1e-5,
                "host {} vs device {}", hr.objective, dr.objective);
        }
    }
}
