//! # gmip — GPU-based Mixed Integer Programming on parallel platforms
//!
//! A reproduction of *"Design Considerations for GPU-based Mixed Integer
//! Programming on Parallel Computing Platforms"* (Perumalla & Alam, ICPP
//! Workshops 2021) as a working system: a branch-and-cut MIP solver whose
//! LP relaxations execute on a **simulated GPU accelerator** with a
//! byte-accurate memory model and a calibrated kernel/transfer cost model,
//! orchestrated by the four parallel execution strategies the paper
//! analyzes, up to a discrete-event supervisor–worker cluster.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`linalg`] | `gmip-linalg` | dense/sparse kernels, LU, batched ops, eta files |
//! | [`gpu`] | `gmip-gpu` | the simulated accelerator (memory, transfers, streams, cost model) |
//! | [`problems`] | `gmip-problems` | instance model, generators, MPS I/O |
//! | [`lp`] | `gmip-lp` | revised simplex (primal + dual) over host or device engines |
//! | [`tree`] | `gmip-tree` | branch-and-bound tree, snapshots, selection policies |
//! | [`core`] | `gmip-core` | the branch-and-cut solver and the four strategies |
//! | [`parallel`] | `gmip-parallel` | supervisor–worker cluster (discrete-event + threaded) |
//! | [`prop`] | `gmip-prop` | batched domain propagation + fix-and-propagate heuristic |
//! | [`serve`] | `gmip-serve` | multi-tenant solve service: admission, sharding, solution pool |
//! | [`verify`] | `gmip-verify` | exact rational oracle, certificates, metamorphic fuzzing |
//! | [`trace`] | `gmip-trace` | logical-time spans, metrics registry, Perfetto export |
//!
//! ## Quickstart
//!
//! ```
//! use gmip::core::{MipConfig, MipSolver, MipStatus};
//! use gmip::problems::catalog::textbook_mip;
//!
//! let mut solver = MipSolver::host_baseline(textbook_mip(), MipConfig::default());
//! let result = solver.solve().unwrap();
//! assert_eq!(result.status, MipStatus::Optimal);
//! assert!((result.objective - 20.0).abs() < 1e-6);
//! ```
//!
//! To run on the simulated GPU platform instead, resolve a strategy plan:
//!
//! ```
//! use gmip::core::{plan, MipConfig, MipSolver, MipStatus, Strategy};
//! use gmip::gpu::CostModel;
//! use gmip::problems::catalog::textbook_mip;
//!
//! let p = plan(Strategy::CpuOrchestrated, MipConfig::default(),
//!              CostModel::gpu_pcie(), 1 << 30);
//! let mut solver = MipSolver::with_plan(textbook_mip(), p);
//! let result = solver.solve().unwrap();
//! assert_eq!(result.status, MipStatus::Optimal);
//! // The simulated device ledger is in the stats:
//! assert!(result.stats.device.kernel_launches > 0);
//! ```

#![warn(missing_docs)]

pub use gmip_core as core;
pub use gmip_gpu as gpu;
pub use gmip_linalg as linalg;
pub use gmip_lp as lp;
pub use gmip_parallel as parallel;
pub use gmip_problems as problems;
pub use gmip_prop as prop;
pub use gmip_serve as serve;
pub use gmip_trace as trace;
pub use gmip_tree as tree;
pub use gmip_verify as verify;
