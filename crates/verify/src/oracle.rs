//! The exact MIP oracle: branch-and-bound over the exact rational simplex.
//!
//! Every node LP is solved with zero rounding, branching bounds are exact
//! integers (`floor`/`ceil` of exact rationals), and incumbent pruning
//! compares exact objectives — so the returned optimum is the *true*
//! optimum of the instance, independent of every float code path in the
//! repo. Instances are oracle-sized (tens of variables); the full-tableau
//! exact simplex is deliberately simple rather than fast.

use crate::rat::Rat;
use crate::simplex::{solve_exact, ExactBound, ExactLp, ExactStatus};
use gmip_problems::{MipInstance, Objective};

/// Terminal status of an exact MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleStatus {
    /// Exact optimum found (and proven).
    Optimal,
    /// No integer-feasible point exists.
    Infeasible,
    /// The LP relaxation (and hence the MIP, if feasible) is unbounded.
    Unbounded,
}

/// The oracle's verdict on an instance.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// Terminal status.
    pub status: OracleStatus,
    /// Exact optimum in the source sense (None unless optimal).
    pub objective: Option<Rat>,
    /// An exact optimal point (structural variables).
    pub x: Vec<Rat>,
    /// Branch-and-bound nodes evaluated.
    pub nodes: usize,
}

/// Node budget backstop; oracle instances are small, so hitting this means
/// the caller fed something far outside the intended fuzz envelope.
const NODE_LIMIT: usize = 200_000;

/// Solves `m` exactly by rational branch-and-bound.
pub fn solve_oracle(m: &MipInstance) -> Result<OracleResult, String> {
    let integral = m.integral_indices();
    let maximize = m.objective == Objective::Maximize;
    // Internal sense is maximize: exact objectives are compared negated for
    // minimize sources (mirroring the float stack's `negated` lowering).
    let internal = |source: &Rat| -> Rat {
        if maximize {
            source.clone()
        } else {
            -source.clone()
        }
    };

    let mut stack: Vec<Vec<ExactBound<Rat>>> = vec![Vec::new()];
    let mut best: Option<(Rat, Vec<Rat>)> = None; // (internal objective, x)
    let mut nodes = 0usize;

    while let Some(bounds) = stack.pop() {
        nodes += 1;
        if nodes > NODE_LIMIT {
            return Err("oracle node budget exhausted".into());
        }
        let lp = ExactLp::<Rat>::from_instance(m, &bounds)?;
        let sol = solve_exact(&lp)?;
        match sol.status {
            ExactStatus::Infeasible => continue,
            ExactStatus::Unbounded => {
                // Root-level unboundedness is a terminal verdict; deeper
                // nodes cannot be unbounded if the root was bounded.
                if bounds.is_empty() {
                    return Ok(OracleResult {
                        status: OracleStatus::Unbounded,
                        objective: None,
                        x: Vec::new(),
                        nodes,
                    });
                }
                return Err("unbounded child of bounded root (oracle bug)".into());
            }
            ExactStatus::Optimal => {}
        }
        let obj_internal = internal(&sol.objective.clone().unwrap());
        // Exact bound pruning: the node bound must beat the incumbent.
        if let Some((inc, _)) = &best {
            if obj_internal <= *inc {
                continue;
            }
        }
        // Exact fractionality test on the integral block.
        let frac = integral.iter().copied().find(|&j| !sol.x[j].is_integer());
        match frac {
            None => {
                best = Some((obj_internal, sol.x));
            }
            Some(j) => {
                let cur_lb = lp.lb[j].clone();
                let cur_ub = lp.ub[j].clone();
                let floor = sol.x[j].floor();
                let ceil = sol.x[j].ceil();
                let mut down = bounds.clone();
                down.retain(|bc| bc.var != j);
                down.push(ExactBound {
                    var: j,
                    lb: cur_lb.clone(),
                    ub: Some(floor),
                });
                let mut up = bounds.clone();
                up.retain(|bc| bc.var != j);
                up.push(ExactBound {
                    var: j,
                    lb: Some(ceil),
                    ub: cur_ub.clone(),
                });
                stack.push(down);
                stack.push(up);
            }
        }
    }

    Ok(match best {
        Some((inc, x)) => OracleResult {
            status: OracleStatus::Optimal,
            objective: Some(if maximize { inc } else { -inc }),
            x,
            nodes,
        },
        None => OracleResult {
            status: OracleStatus::Infeasible,
            objective: None,
            x: Vec::new(),
            nodes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{
        figure1_knapsack, infeasible_instance, textbook_mip, unbounded_instance,
    };

    #[test]
    fn figure1_knapsack_exact_optimum_is_14() {
        let r = solve_oracle(&figure1_knapsack()).unwrap();
        assert_eq!(r.status, OracleStatus::Optimal);
        assert_eq!(r.objective.unwrap(), Rat::int(14));
    }

    #[test]
    fn textbook_mip_exact_optimum_is_20() {
        let r = solve_oracle(&textbook_mip()).unwrap();
        assert_eq!(r.status, OracleStatus::Optimal);
        assert_eq!(r.objective.unwrap(), Rat::int(20));
    }

    #[test]
    fn degenerate_statuses() {
        assert_eq!(
            solve_oracle(&infeasible_instance()).unwrap().status,
            OracleStatus::Infeasible
        );
        assert_eq!(
            solve_oracle(&unbounded_instance()).unwrap().status,
            OracleStatus::Unbounded
        );
    }

    #[test]
    fn agrees_with_float_solver_on_catalog_suite() {
        use gmip_core::{MipConfig, MipSolver, MipStatus};
        use gmip_problems::catalog::small_suite;
        for entry in small_suite() {
            let exact =
                solve_oracle(&entry.instance).unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            let mut s = MipSolver::host_baseline(entry.instance.clone(), MipConfig::default());
            let float = s.solve().unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            assert_eq!(exact.status, OracleStatus::Optimal, "{}", entry.id);
            assert_eq!(float.status, MipStatus::Optimal, "{}", entry.id);
            assert!(
                (exact.objective.clone().unwrap().approx() - float.objective).abs() < 1e-5,
                "{}: oracle {} vs float {}",
                entry.id,
                exact.objective.unwrap(),
                float.objective
            );
            // The oracle's point is exactly integer feasible.
            let xf: Vec<f64> = exact.x.iter().map(|v| v.approx()).collect();
            assert!(
                entry.instance.is_integer_feasible(&xf, 1e-9),
                "{}",
                entry.id
            );
        }
    }

    #[test]
    fn oracle_point_objective_matches_reported_optimum() {
        let m = figure1_knapsack();
        let r = solve_oracle(&m).unwrap();
        let mut obj = Rat::int(0);
        for (v, x) in m.vars.iter().zip(&r.x) {
            obj = obj + Rat::from_f64_exact(v.obj).unwrap() * x.clone();
        }
        assert_eq!(obj, r.objective.unwrap());
    }
}
