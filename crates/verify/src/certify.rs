//! Exact validation of float-engine certificates.
//!
//! The float stack emits [`gmip_lp::LpCertificate`]s (when
//! `MipConfig::collect_certificates` is on): for every evaluated node,
//! either the optimal basis's dual prices or a Farkas infeasibility
//! witness. This module re-checks that evidence in exact rational
//! arithmetic against an independently re-lowered copy of the node LP:
//!
//! * **Dual bound** — for any multiplier vector `y`, weak duality over the
//!   box `l ≤ x ≤ u` gives `z* ≤ yᵀb + Σⱼ max(dⱼlⱼ, dⱼuⱼ)` with
//!   `dⱼ = cⱼ − yᵀaⱼ`. At an optimal basis the bound is *tight*, so the
//!   claimed node objective must match the exactly-evaluated bound within
//!   the declared float tolerance — this certifies every pruning decision
//!   made from the node bound.
//! * **Farkas** — a witness `w` proves infeasibility iff
//!   `Σⱼ min(zⱼlⱼ, zⱼuⱼ) > wᵀb` with `zⱼ = wᵀaⱼ`: the smallest value
//!   `wᵀAx` can take over the box still misses `wᵀb`. This is checked as a
//!   strict exact inequality.
//! * **Incumbent** — a claimed integer-feasible point is re-evaluated
//!   exactly: integrality snap, bound and row feasibility, and the claimed
//!   objective, all in rationals.
//!
//! Reduced costs on infinite-bound columns are snapped to zero when below
//! the float dual tolerance (otherwise a `1e-12 × ∞` term would poison an
//! otherwise-valid certificate); a *large* wrong-signed entry still fails.

use crate::rat::Rat;
use gmip_linalg::Scalar;
use gmip_lp::{CertKind, LpCertificate, StandardLp};
use gmip_problems::MipInstance;

/// Wrong-sign snap threshold for reduced costs / Farkas coefficients on
/// infinite-bound columns (matches the float stack's dual tolerance).
const SNAP_TOL: f64 = 1e-6;

/// Outcome of checking a batch of certificates.
#[derive(Debug, Clone, Default)]
pub struct CertReport {
    /// Certificates examined.
    pub checked: usize,
    /// Dual-bound certificates among them.
    pub dual_bounds: usize,
    /// Farkas certificates among them.
    pub farkas: usize,
    /// Human-readable failure descriptions (empty = all valid).
    pub failures: Vec<String>,
}

impl CertReport {
    /// `true` when every certificate validated.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The exactly re-lowered node LP a certificate refers to: equality form
/// over `[structural + slack | cut slack]` columns (artificials excluded —
/// they are fixed to `[0, 0]` outside phase 1 and contribute nothing).
struct ExactNodeLp {
    /// Dense rows × cols.
    a: Vec<Vec<Rat>>,
    b: Vec<Rat>,
    /// Internal (maximize) objective.
    c: Vec<Rat>,
    lb: Vec<Option<Rat>>,
    ub: Vec<Option<Rat>>,
}

fn rat(v: f64) -> Result<Rat, String> {
    Rat::from_f64_exact(v).ok_or_else(|| format!("non-finite coefficient {v}"))
}

fn opt_bound(v: f64) -> Result<Option<Rat>, String> {
    if v.is_finite() {
        Ok(Some(rat(v)?))
    } else {
        Ok(None)
    }
}

fn exact_node_lp(m: &MipInstance, cert: &LpCertificate) -> Result<ExactNodeLp, String> {
    let std = StandardLp::from_instance(m, &cert.bounds);
    let m_core = std.m();
    let n_core = std.n();
    let n_cuts = cert.cuts.len();
    let rows = m_core + n_cuts;
    let cols = n_core + n_cuts;
    let mut a = vec![vec![Rat::int(0); cols]; rows];
    for (i, row) in a.iter_mut().enumerate().take(m_core) {
        for (j, cell) in row.iter_mut().enumerate().take(n_core) {
            *cell = rat(std.a.get(i, j))?;
        }
    }
    let mut b = Vec::with_capacity(rows);
    for &bi in &std.b {
        b.push(rat(bi)?);
    }
    let mut c = Vec::with_capacity(cols);
    for &cj in &std.c {
        c.push(rat(cj)?);
    }
    let mut lb = Vec::with_capacity(cols);
    let mut ub = Vec::with_capacity(cols);
    for j in 0..n_core {
        lb.push(opt_bound(std.lb[j])?);
        ub.push(opt_bound(std.ub[j])?);
    }
    for (k, (coeffs, rhs)) in cert.cuts.iter().enumerate() {
        for &(j, v) in coeffs {
            if j >= std.n_structural {
                return Err(format!("cut coefficient on non-structural column {j}"));
            }
            a[m_core + k][j] = rat(v)?;
        }
        a[m_core + k][n_core + k] = Rat::int(1);
        b.push(rat(*rhs)?);
        c.push(Rat::int(0));
        lb.push(Some(Rat::int(0)));
        ub.push(None);
    }
    Ok(ExactNodeLp { a, b, c, lb, ub })
}

/// `Σᵢ vᵢ · a[i][j]` exactly.
fn combine_column(a: &[Vec<Rat>], v: &[Rat], j: usize) -> Rat {
    let mut acc = Rat::int(0);
    for (row, vi) in a.iter().zip(v) {
        if !row[j].is_zero() && !vi.is_zero() {
            acc = acc + vi.clone() * row[j].clone();
        }
    }
    acc
}

/// `max(d·l, d·u)` over `[l, u]` with infinite sides; `None` = `+∞` (the
/// bound is vacuous). Tiny `d` on an infinite side snaps to zero.
fn box_max(d: &Rat, l: &Option<Rat>, u: &Option<Rat>) -> Option<Rat> {
    let zero = Rat::int(0);
    if *d == zero {
        return Some(zero);
    }
    if *d > zero {
        match u {
            Some(u) => Some(d.clone() * u.clone()),
            None if d.approx().abs() <= SNAP_TOL => Some(zero),
            None => None,
        }
    } else {
        match l {
            Some(l) => Some(d.clone() * l.clone()),
            None if d.approx().abs() <= SNAP_TOL => Some(zero),
            None => None,
        }
    }
}

/// `min(z·l, z·u)` over `[l, u]`; `None` = `−∞` (certificate broken).
fn box_min(z: &Rat, l: &Option<Rat>, u: &Option<Rat>) -> Option<Rat> {
    box_max(&-z.clone(), l, u).map(|v| -v)
}

/// Checks one certificate exactly; `Err` describes the failure.
pub fn check_certificate(m: &MipInstance, cert: &LpCertificate, tol: f64) -> Result<(), String> {
    let lp = exact_node_lp(m, cert)?;
    let rows = lp.b.len();
    let cols = lp.c.len();
    match &cert.kind {
        CertKind::DualBound { y, objective } => {
            if y.len() != rows {
                return Err(format!("dual vector length {} vs {rows} rows", y.len()));
            }
            let yr: Vec<Rat> = y.iter().map(|&v| rat(v)).collect::<Result<_, _>>()?;
            let mut bound = Rat::int(0);
            for (yi, bi) in yr.iter().zip(&lp.b) {
                bound = bound + yi.clone() * bi.clone();
            }
            for j in 0..cols {
                let d = lp.c[j].clone() - combine_column(&lp.a, &yr, j);
                match box_max(&d, &lp.lb[j], &lp.ub[j]) {
                    Some(t) => bound = bound + t,
                    None => {
                        return Err(format!(
                            "dual bound is +inf: column {j} has wrong-sign reduced cost {}",
                            d.approx()
                        ))
                    }
                }
            }
            let claimed = rat(*objective)?;
            let gap = (bound - claimed).approx();
            let scale = 1.0 + objective.abs();
            if gap < -tol * scale {
                return Err(format!(
                    "claimed objective {objective} exceeds the exact dual bound by {}",
                    -gap
                ));
            }
            if gap > tol.max(1e-9) * scale * 10.0 {
                return Err(format!(
                    "dual bound is loose by {gap} (claimed {objective}): \
                     the basis duals do not certify the claimed optimum"
                ));
            }
            Ok(())
        }
        CertKind::Farkas { w } => {
            if w.len() != rows {
                return Err(format!("Farkas vector length {} vs {rows} rows", w.len()));
            }
            let wr: Vec<Rat> = w.iter().map(|&v| rat(v)).collect::<Result<_, _>>()?;
            let mut wtb = Rat::int(0);
            for (wi, bi) in wr.iter().zip(&lp.b) {
                wtb = wtb + wi.clone() * bi.clone();
            }
            let mut lo = Rat::int(0);
            for j in 0..cols {
                let z = combine_column(&lp.a, &wr, j);
                match box_min(&z, &lp.lb[j], &lp.ub[j]) {
                    Some(t) => lo = lo + t,
                    None => {
                        return Err(format!(
                            "Farkas witness broken: column {j} sends the row combination \
                             to -inf (z = {})",
                            z.approx()
                        ))
                    }
                }
            }
            if lo > wtb {
                Ok(())
            } else {
                Err(format!(
                    "Farkas witness does not separate: box-min {} ≤ wᵀb {}",
                    lo.approx(),
                    wtb.approx()
                ))
            }
        }
    }
}

/// Checks every certificate of a solve; failures are collected, not fatal.
pub fn check_certificates(m: &MipInstance, certs: &[LpCertificate], tol: f64) -> CertReport {
    let mut report = CertReport::default();
    for (i, cert) in certs.iter().enumerate() {
        report.checked += 1;
        match cert.kind {
            CertKind::DualBound { .. } => report.dual_bounds += 1,
            CertKind::Farkas { .. } => report.farkas += 1,
        }
        if let Err(e) = check_certificate(m, cert, tol) {
            report.failures.push(format!("certificate {i}: {e}"));
        }
    }
    report
}

/// Exactly re-evaluates a claimed incumbent: integral variables must be
/// within `tol` of an integer, the snapped point must satisfy every bound
/// and row within `tol`, and its exact objective must match `objective`.
pub fn check_incumbent(m: &MipInstance, x: &[f64], objective: f64, tol: f64) -> Result<(), String> {
    if x.len() != m.num_vars() {
        return Err(format!(
            "incumbent length {} vs {} variables",
            x.len(),
            m.num_vars()
        ));
    }
    let integral = m.integral_indices();
    let mut xr: Vec<Rat> = Vec::with_capacity(x.len());
    for (j, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(format!("incumbent x[{j}] = {v}"));
        }
        if integral.contains(&j) {
            let snapped = v.round();
            if (v - snapped).abs() > tol {
                return Err(format!("x[{j}] = {v} is not integral within {tol}"));
            }
            xr.push(rat(snapped)?);
        } else {
            xr.push(rat(v)?);
        }
    }
    let tolr = rat(tol)?;
    for (j, (v, xj)) in m.vars.iter().zip(&xr).enumerate() {
        if let Some(l) = opt_bound(v.lb)? {
            if *xj < l.clone() - tolr.clone() {
                return Err(format!(
                    "x[{j}] = {} below lower bound {}",
                    xj.approx(),
                    v.lb
                ));
            }
        }
        if let Some(u) = opt_bound(v.ub)? {
            if *xj > u.clone() + tolr.clone() {
                return Err(format!(
                    "x[{j}] = {} above upper bound {}",
                    xj.approx(),
                    v.ub
                ));
            }
        }
    }
    for c in &m.cons {
        let mut lhs = Rat::int(0);
        for &(j, a) in &c.coeffs {
            lhs = lhs + rat(a)? * xr[j].clone();
        }
        let rhs = rat(c.rhs)?;
        let slack = tolr.clone() * (Rat::int(1) + rhs.clone().abs_val());
        let bad = match c.sense {
            gmip_problems::Sense::Le => lhs > rhs.clone() + slack,
            gmip_problems::Sense::Ge => lhs < rhs.clone() - slack,
            gmip_problems::Sense::Eq => {
                lhs.clone() > rhs.clone() + slack.clone() || lhs < rhs.clone() - slack
            }
        };
        if bad {
            return Err(format!(
                "row {} violated: lhs {} vs rhs {}",
                c.name,
                lhs.approx(),
                c.rhs
            ));
        }
    }
    let mut obj = Rat::int(0);
    for (v, xj) in m.vars.iter().zip(&xr) {
        obj = obj + rat(v.obj)? * xj.clone();
    }
    let claimed = rat(objective)?;
    if (obj.clone() - claimed).approx().abs() > tol * (1.0 + objective.abs()) {
        return Err(format!(
            "claimed objective {objective} vs exact re-evaluation {}",
            obj.approx()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_core::{MipConfig, MipSolver, MipStatus};
    use gmip_problems::catalog::{figure1_knapsack, infeasible_instance, textbook_mip};

    fn solve_with_certs(m: &MipInstance) -> (gmip_core::MipResult, Vec<LpCertificate>) {
        let cfg = MipConfig {
            collect_certificates: true,
            ..MipConfig::default()
        };
        let mut s = MipSolver::host_baseline(m.clone(), cfg);
        let r = s.solve().expect("solve");
        let certs = r.stats.certificates.clone();
        (r, certs)
    }

    #[test]
    fn optimal_solve_emits_valid_dual_bound_certificates() {
        for m in [figure1_knapsack(), textbook_mip()] {
            let (r, certs) = solve_with_certs(&m);
            assert_eq!(r.status, MipStatus::Optimal);
            assert!(!certs.is_empty(), "no certificates collected");
            let report = check_certificates(&m, &certs, 1e-6);
            assert!(report.ok(), "failures: {:?}", report.failures);
            assert!(report.dual_bounds > 0, "no dual-bound certificates");
        }
    }

    #[test]
    fn infeasible_root_emits_valid_farkas_certificate() {
        let m = infeasible_instance();
        let (r, certs) = solve_with_certs(&m);
        assert_eq!(r.status, MipStatus::Infeasible);
        let report = check_certificates(&m, &certs, 1e-6);
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert!(
            report.farkas > 0,
            "no Farkas certificate at infeasible root"
        );
    }

    #[test]
    fn branch_infeasible_nodes_emit_valid_farkas_certificates() {
        // A knapsack-style instance whose branching produces infeasible
        // children via the dual-ray detection path.
        let m = gmip_problems::generators::set_cover(6, 5, 0.5, 11);
        let (_, certs) = solve_with_certs(&m);
        let report = check_certificates(&m, &certs, 1e-6);
        assert!(report.ok(), "failures: {:?}", report.failures);
    }

    #[test]
    fn tampered_objective_is_rejected() {
        let m = figure1_knapsack();
        let (_, mut certs) = solve_with_certs(&m);
        let idx = certs
            .iter()
            .position(|c| matches!(c.kind, CertKind::DualBound { .. }))
            .expect("a dual-bound certificate");
        if let CertKind::DualBound { objective, .. } = &mut certs[idx].kind {
            *objective += 1.0;
        }
        let report = check_certificates(&m, &certs, 1e-6);
        assert!(!report.ok(), "tampered certificate passed validation");
    }

    #[test]
    fn incumbent_checks_exactly() {
        let m = figure1_knapsack();
        let (r, _) = solve_with_certs(&m);
        check_incumbent(&m, &r.x, r.objective, 1e-6).expect("true incumbent validates");
        // Off-by-one objective is caught.
        assert!(check_incumbent(&m, &r.x, r.objective + 1.0, 1e-6).is_err());
        // An infeasible point is caught.
        let bad = vec![1.0; m.num_vars()];
        assert!(check_incumbent(&m, &bad, m.objective_value(&bad), 1e-6).is_err());
    }
}
