//! Exact rational arithmetic: [`Rat`] over `i128` numerator/denominator
//! pairs that transparently promote to a vendored arbitrary-precision
//! integer ([`Big`]) on overflow. No rounding, no external dependencies.
//!
//! Every finite `f64` is a dyadic rational, so [`Rat::from_f64`] is exact:
//! results produced by the float engines can be lifted into this arithmetic
//! and re-checked with zero loss.

use gmip_linalg::Scalar;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

// ---------------------------------------------------------------------------
// Big: sign + base-2^32 magnitude, little-endian limbs.
// ---------------------------------------------------------------------------

/// Arbitrary-precision signed integer (vendored, minimal API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Big {
    /// True for strictly negative values; zero is always non-negative.
    neg: bool,
    /// Base-2^32 magnitude, little-endian, no trailing zero limbs.
    mag: Vec<u32>,
}

impl Big {
    fn zero() -> Self {
        Big {
            neg: false,
            mag: Vec::new(),
        }
    }

    fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    fn from_i128(v: i128) -> Self {
        let neg = v < 0;
        let mut m = v.unsigned_abs();
        let mut mag = Vec::new();
        while m != 0 {
            mag.push((m & 0xffff_ffff) as u32);
            m >>= 32;
        }
        Big {
            neg: neg && !mag.is_empty(),
            mag,
        }
    }

    fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 4 {
            return None;
        }
        let mut m: u128 = 0;
        for (i, &l) in self.mag.iter().enumerate() {
            m |= (l as u128) << (32 * i);
        }
        if self.neg {
            if m > (i128::MAX as u128) + 1 {
                None
            } else if m == (i128::MAX as u128) + 1 {
                Some(i128::MIN)
            } else {
                Some(-(m as i128))
            }
        } else if m > i128::MAX as u128 {
            None
        } else {
            Some(m as i128)
        }
    }

    fn trim(mag: &mut Vec<u32>) {
        while mag.last() == Some(&0) {
            mag.pop();
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry: u64 = 0;
        for i in 0..a.len().max(b.len()) {
            let s = carry + *a.get(i).unwrap_or(&0) as u64 + *b.get(i).unwrap_or(&0) as u64;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `a - b`, requires `a >= b`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for i in 0..a.len() {
            let d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        Self::trim(&mut out);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let t = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        Self::trim(&mut out);
        out
    }

    fn bit_len(mag: &[u32]) -> usize {
        match mag.last() {
            None => 0,
            Some(&top) => (mag.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    fn shl_mag(mag: &[u32], sh: usize) -> Vec<u32> {
        if mag.is_empty() {
            return Vec::new();
        }
        let limbs = sh / 32;
        let bits = sh % 32;
        let mut out = vec![0u32; limbs];
        if bits == 0 {
            out.extend_from_slice(mag);
        } else {
            let mut carry: u32 = 0;
            for &l in mag {
                out.push((l << bits) | carry);
                carry = (l >> (32 - bits)) & ((1u32 << bits) - 1);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::trim(&mut out);
        out
    }

    /// Right shift by `sh` bits.
    fn shr_mag(mag: &[u32], sh: usize) -> Vec<u32> {
        let limbs = sh / 32;
        let bits = sh % 32;
        if limbs >= mag.len() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(mag.len() - limbs);
        if bits == 0 {
            out.extend_from_slice(&mag[limbs..]);
        } else {
            for i in limbs..mag.len() {
                let lo = mag[i] >> bits;
                let hi = if i + 1 < mag.len() {
                    mag[i + 1] << (32 - bits)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        Self::trim(&mut out);
        out
    }

    /// In-place right shift by one bit.
    fn shr1_mag(mag: &mut Vec<u32>) {
        let mut carry = 0u32;
        for l in mag.iter_mut().rev() {
            let next = *l & 1;
            *l = (*l >> 1) | (carry << 31);
            carry = next;
        }
        Self::trim(mag);
    }

    fn trailing_zeros_mag(mag: &[u32]) -> usize {
        for (i, &l) in mag.iter().enumerate() {
            if l != 0 {
                return i * 32 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Binary long division of magnitudes: returns `(quotient, remainder)`.
    /// The divisor is aligned once and shifted right one bit per step, so
    /// the whole division is O(bits²/32) with no per-step allocation.
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero Big");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        let shift = Self::bit_len(a) - Self::bit_len(b);
        let mut rem = a.to_vec();
        let mut quo = vec![0u32; shift / 32 + 1];
        let mut d = Self::shl_mag(b, shift);
        for s in (0..=shift).rev() {
            if Self::cmp_mag(&rem, &d) != Ordering::Less {
                rem = Self::sub_mag(&rem, &d);
                quo[s / 32] |= 1u32 << (s % 32);
            }
            Self::shr1_mag(&mut d);
        }
        Self::trim(&mut quo);
        Self::trim(&mut rem);
        (quo, rem)
    }

    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.mag, &other.mag),
            (true, true) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }

    fn add(&self, other: &Self) -> Self {
        if self.neg == other.neg {
            Big {
                neg: self.neg,
                mag: Self::add_mag(&self.mag, &other.mag),
            }
        } else {
            match Self::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => Big::zero(),
                Ordering::Greater => Big {
                    neg: self.neg,
                    mag: Self::sub_mag(&self.mag, &other.mag),
                },
                Ordering::Less => Big {
                    neg: other.neg,
                    mag: Self::sub_mag(&other.mag, &self.mag),
                },
            }
        }
    }

    fn neg(&self) -> Self {
        Big {
            neg: !self.neg && !self.is_zero(),
            mag: self.mag.clone(),
        }
    }

    fn mul(&self, other: &Self) -> Self {
        let mag = Self::mul_mag(&self.mag, &other.mag);
        Big {
            neg: self.neg != other.neg && !mag.is_empty(),
            mag,
        }
    }

    /// Truncated quotient and remainder (remainder has the dividend's sign).
    fn divrem(&self, other: &Self) -> (Self, Self) {
        let (q, r) = Self::divrem_mag(&self.mag, &other.mag);
        (
            Big {
                neg: self.neg != other.neg && !q.is_empty(),
                mag: q,
            },
            Big {
                neg: self.neg && !r.is_empty(),
                mag: r,
            },
        )
    }

    /// Stein's binary GCD — subtract-and-shift only, no division. Euclid
    /// with long division is O(bits³) on the determinant-sized integers an
    /// exact simplex produces; this is O(bits²) with tiny constants, and
    /// reduction dominates every rational operation.
    fn gcd(a: &Self, b: &Self) -> Self {
        let mut x = a.mag.clone();
        let mut y = b.mag.clone();
        if x.is_empty() {
            return Big { neg: false, mag: y };
        }
        if y.is_empty() {
            return Big { neg: false, mag: x };
        }
        let tx = Self::trailing_zeros_mag(&x);
        let ty = Self::trailing_zeros_mag(&y);
        let common = tx.min(ty);
        x = Self::shr_mag(&x, tx);
        y = Self::shr_mag(&y, ty);
        loop {
            match Self::cmp_mag(&x, &y) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut x, &mut y),
                Ordering::Greater => {}
            }
            x = Self::sub_mag(&x, &y);
            let t = Self::trailing_zeros_mag(&x);
            x = Self::shr_mag(&x, t);
        }
        Big {
            neg: false,
            mag: Self::shl_mag(&x, common),
        }
    }

    /// `(m, e)` with value ≈ `m·2^e`; `m` is built from the top ~96 bits so
    /// huge magnitudes never saturate to ±∞ before the caller rescales.
    fn to_f64_exp(&self) -> (f64, i32) {
        let n = self.mag.len();
        if n == 0 {
            return (0.0, 0);
        }
        let take = n.min(3);
        let mut v = 0.0f64;
        for i in (n - take..n).rev() {
            v = v * 4294967296.0 + self.mag[i] as f64;
        }
        let e = 32 * (n - take) as i32;
        (if self.neg { -v } else { v }, e)
    }
}

// ---------------------------------------------------------------------------
// Int: i128 fast path, Big slow path.
// ---------------------------------------------------------------------------

/// Signed integer with an `i128` fast path and [`Big`] overflow fallback.
#[derive(Debug, Clone)]
pub enum Int {
    /// Fits in `i128`.
    Small(i128),
    /// Promoted arbitrary-precision value.
    Big(Big),
}

impl Int {
    fn zero() -> Self {
        Int::Small(0)
    }

    fn one() -> Self {
        Int::Small(1)
    }

    fn is_zero(&self) -> bool {
        match self {
            Int::Small(v) => *v == 0,
            Int::Big(b) => b.is_zero(),
        }
    }

    fn is_negative(&self) -> bool {
        match self {
            Int::Small(v) => *v < 0,
            Int::Big(b) => b.neg,
        }
    }

    fn to_big(&self) -> Big {
        match self {
            Int::Small(v) => Big::from_i128(*v),
            Int::Big(b) => b.clone(),
        }
    }

    /// Demotes a Big back to Small when it fits (keeps the fast path hot).
    fn normalize(self) -> Self {
        match self {
            Int::Big(b) => match b.to_i128() {
                Some(v) => Int::Small(v),
                None => Int::Big(b),
            },
            s => s,
        }
    }

    fn add(&self, other: &Self) -> Self {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let Some(v) = a.checked_add(*b) {
                return Int::Small(v);
            }
        }
        Int::Big(self.to_big().add(&other.to_big())).normalize()
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    fn neg(&self) -> Self {
        match self {
            Int::Small(v) => match v.checked_neg() {
                Some(n) => Int::Small(n),
                None => Int::Big(Big::from_i128(*v).neg()),
            },
            Int::Big(b) => Int::Big(b.neg()).normalize(),
        }
    }

    fn mul(&self, other: &Self) -> Self {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let Some(v) = a.checked_mul(*b) {
                return Int::Small(v);
            }
        }
        Int::Big(self.to_big().mul(&other.to_big())).normalize()
    }

    /// Truncated quotient and remainder.
    fn divrem(&self, other: &Self) -> (Self, Self) {
        assert!(!other.is_zero(), "integer division by zero");
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let (Some(q), Some(r)) = (a.checked_div(*b), a.checked_rem(*b)) {
                return (Int::Small(q), Int::Small(r));
            }
        }
        let (q, r) = self.to_big().divrem(&other.to_big());
        (Int::Big(q).normalize(), Int::Big(r).normalize())
    }

    fn gcd(a: &Self, b: &Self) -> Self {
        if let (Int::Small(x), Int::Small(y)) = (a, b) {
            let (mut x, mut y) = (x.unsigned_abs(), y.unsigned_abs());
            while y != 0 {
                let r = x % y;
                x = y;
                y = r;
            }
            // u128 gcd of two i128 magnitudes always fits back in i128
            // unless both inputs were i128::MIN; promote in that case.
            if x <= i128::MAX as u128 {
                return Int::Small(x as i128);
            }
        }
        Int::Big(Big::gcd(&a.to_big(), &b.to_big())).normalize()
    }

    fn cmp_int(&self, other: &Self) -> Ordering {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            return a.cmp(b);
        }
        self.to_big().cmp(&other.to_big())
    }

    fn shl(&self, sh: usize) -> Self {
        if let Int::Small(v) = self {
            if sh < 127 {
                if let Some(out) = v.checked_shl(sh as u32) {
                    if out >> sh == *v {
                        return Int::Small(out);
                    }
                }
            }
        }
        let b = self.to_big();
        Int::Big(Big {
            neg: b.neg,
            mag: Big::shl_mag(&b.mag, sh),
        })
        .normalize()
    }

    fn to_f64_exp(&self) -> (f64, i32) {
        match self {
            Int::Small(v) => (*v as f64, 0),
            Int::Big(b) => b.to_f64_exp(),
        }
    }

    /// Whether the value was promoted past `i128`.
    pub fn is_promoted(&self) -> bool {
        matches!(self, Int::Big(_))
    }
}

impl PartialEq for Int {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_int(other) == Ordering::Equal
    }
}
impl Eq for Int {}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Int::Small(v) => write!(f, "{v}"),
            Int::Big(b) => {
                // Decimal rendering by repeated division; Bigs are rare and
                // display is for diagnostics only.
                if b.is_zero() {
                    return write!(f, "0");
                }
                let mut digits = Vec::new();
                let ten = Big::from_i128(10);
                let mut cur = Big {
                    neg: false,
                    mag: b.mag.clone(),
                };
                while !cur.is_zero() {
                    let (q, r) = cur.divrem(&ten);
                    digits.push(char::from(b'0' + r.to_i128().unwrap_or(0) as u8));
                    cur = q;
                }
                if b.neg {
                    write!(f, "-")?;
                }
                for d in digits.iter().rev() {
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rat
// ---------------------------------------------------------------------------

/// An exact rational number `num/den` with `den > 0` and `gcd(num,den)=1`.
#[derive(Debug, Clone)]
pub struct Rat {
    num: Int,
    den: Int,
}

impl Rat {
    /// Constructs and normalizes `n/d` (`d != 0`).
    pub fn new(n: i128, d: i128) -> Self {
        assert!(d != 0, "zero denominator");
        Self::from_ints(Int::Small(n), Int::Small(d))
    }

    fn from_ints(num: Int, den: Int) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        let (num, den) = if den.is_negative() {
            (num.neg(), den.neg())
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Rat {
                num: Int::zero(),
                den: Int::one(),
            };
        }
        let g = Int::gcd(&num, &den);
        let (num, _) = num.divrem(&g);
        let (den, _) = den.divrem(&g);
        Rat { num, den }
    }

    /// The integer `v`.
    pub fn int(v: i128) -> Self {
        Rat {
            num: Int::Small(v),
            den: Int::one(),
        }
    }

    /// Exact conversion of a finite double (every finite `f64` is a dyadic
    /// rational `±m·2^e`). Returns `None` for NaN or ±∞.
    pub fn from_f64_exact(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rat::int(0));
        }
        let bits = v.to_bits();
        let sign = bits >> 63 != 0;
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, e) = if exp == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = Int::Small(if sign { -(m as i128) } else { m as i128 });
        Some(if e >= 0 {
            Rat::from_ints(m.shl(e as usize), Int::one())
        } else {
            Rat::from_ints(m, Int::one().shl((-e) as usize))
        })
    }

    /// Numerator (reduced form).
    pub fn numerator(&self) -> &Int {
        &self.num
    }

    /// Denominator (reduced form, positive).
    pub fn denominator(&self) -> &Int {
        &self.den
    }

    /// Exactly zero?
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Exactly an integer?
    pub fn is_integer(&self) -> bool {
        self.den == Int::one()
    }

    /// Strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Strictly positive?
    pub fn is_positive(&self) -> bool {
        !self.num.is_zero() && !self.num.is_negative()
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> Rat {
        let (q, r) = self.num.divrem(&self.den);
        if r.is_zero() || !self.num.is_negative() {
            Rat {
                num: q,
                den: Int::one(),
            }
        } else {
            Rat {
                num: q.sub(&Int::one()),
                den: Int::one(),
            }
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> Rat {
        self.neg_ref().floor().neg_ref()
    }

    fn neg_ref(&self) -> Rat {
        Rat {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// Nearest-double approximation. Mantissa and binary exponent are
    /// tracked separately so ratios of huge (or tiny) dyadics — e.g. the
    /// exact form of `1e-300` — don't collapse through an intermediate ∞.
    pub fn approx(&self) -> f64 {
        let (nm, ne) = self.num.to_f64_exp();
        let (dm, de) = self.den.to_f64_exp();
        (nm / dm) * 2f64.powi(ne - de)
    }

    /// Whether this value overflowed the `i128` fast path.
    pub fn is_promoted(&self) -> bool {
        self.num.is_promoted() || self.den.is_promoted()
    }
}

impl PartialEq for Rat {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rat {}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b,d > 0)  <=>  ad vs cb.
        self.num.mul(&other.den).cmp_int(&other.num.mul(&self.den))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Knuth 4.5.1: pre-divide by g = gcd(b, d) so the intermediates
        // stay near the result's true size, not the product of the inputs.
        let g = Int::gcd(&self.den, &rhs.den);
        let (db, _) = self.den.divrem(&g);
        let (dd, _) = rhs.den.divrem(&g);
        let num = self.num.mul(&dd).add(&rhs.num.mul(&db));
        let den = self.den.mul(&dd);
        Rat::from_ints(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-cancel before multiplying: both inputs are reduced, so
        // after dividing out gcd(a, d) and gcd(c, b) the product is
        // already in lowest terms — no gcd on the (larger) result needed.
        let g1 = Int::gcd(&self.num, &rhs.den);
        let g2 = Int::gcd(&rhs.num, &self.den);
        let (n1, _) = self.num.divrem(&g1);
        let (d2, _) = rhs.den.divrem(&g1);
        let (n2, _) = rhs.num.divrem(&g2);
        let (d1, _) = self.den.divrem(&g2);
        let num = n1.mul(&n2);
        if num.is_zero() {
            return Rat::int(0);
        }
        Rat {
            num,
            den: d1.mul(&d2),
        }
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(!rhs.is_zero(), "rational division by zero");
        let g1 = Int::gcd(&self.num, &rhs.num);
        let g2 = Int::gcd(&self.den, &rhs.den);
        let (n1, _) = self.num.divrem(&g1);
        let (nc, _) = rhs.num.divrem(&g1);
        let (d1, _) = self.den.divrem(&g2);
        let (dd, _) = rhs.den.divrem(&g2);
        let num = n1.mul(&dd);
        if num.is_zero() {
            return Rat::int(0);
        }
        let den = d1.mul(&nc);
        if den.is_negative() {
            Rat {
                num: num.neg(),
                den: den.neg(),
            }
        } else {
            Rat { num, den }
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Scalar for Rat {
    fn zero() -> Self {
        Rat::int(0)
    }
    fn one() -> Self {
        Rat::int(1)
    }
    fn from_f64(v: f64) -> Option<Self> {
        Rat::from_f64_exact(v)
    }
    fn to_f64(&self) -> f64 {
        self.approx()
    }
    fn is_zero_exact(&self) -> bool {
        self.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic_reduces() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a.clone() + b.clone(), Rat::new(1, 2));
        assert_eq!(a.clone() - b.clone(), Rat::new(1, 6));
        assert_eq!(a.clone() * b.clone(), Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
    }

    #[test]
    fn sign_normalization() {
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert!(Rat::new(-1, 2).is_negative());
        assert!(Rat::new(1, 2).is_positive());
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rat::new(1, 3) < Rat::new(34, 100));
        assert!(Rat::new(-1, 2) < Rat::int(0));
        assert_eq!(Rat::new(2, 4).cmp(&Rat::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), Rat::int(3));
        assert_eq!(Rat::new(7, 2).ceil(), Rat::int(4));
        assert_eq!(Rat::new(-7, 2).floor(), Rat::int(-4));
        assert_eq!(Rat::new(-7, 2).ceil(), Rat::int(-3));
        assert_eq!(Rat::int(5).floor(), Rat::int(5));
        assert_eq!(Rat::int(-5).ceil(), Rat::int(-5));
    }

    #[test]
    fn f64_conversion_is_exact() {
        for v in [0.0, 1.0, -1.0, 0.5, 0.1, -3.75, 1e-300, 123456789.0e10] {
            let r = Rat::from_f64_exact(v).unwrap();
            assert_eq!(r.approx(), v, "value {v}");
        }
        // 0.1 is NOT 1/10 in binary: the conversion must preserve the
        // double's true dyadic value, not the decimal literal.
        let tenth = Rat::from_f64_exact(0.1).unwrap();
        assert_ne!(tenth, Rat::new(1, 10));
        assert!(Rat::from_f64_exact(f64::NAN).is_none());
        assert!(Rat::from_f64_exact(f64::INFINITY).is_none());
    }

    #[test]
    fn overflow_promotes_to_big_and_back() {
        // (2^100)^2 overflows i128 → Big; dividing back demotes to Small.
        let huge = Rat::int(1i128 << 100);
        let sq = huge.clone() * huge.clone();
        assert!(sq.is_promoted());
        let back = sq.clone() / huge.clone();
        assert!(!back.is_promoted());
        assert_eq!(back, huge);
        // Exact arithmetic survives the round trip.
        let third = Rat::new(1, 3);
        let x = sq * third.clone();
        let y = x / Rat::int(1i128 << 100);
        assert_eq!(y, Rat::int(1i128 << 100) * third);
    }

    #[test]
    fn big_division_and_gcd() {
        let a = Big::from_i128(123_456_789_123_456_789);
        let b = Big::from_i128(987_654_321);
        let (q, r) = a.divrem(&b);
        let qa = q.to_i128().unwrap();
        let ra = r.to_i128().unwrap();
        assert_eq!(qa * 987_654_321 + ra, 123_456_789_123_456_789);
        assert!((0..987_654_321).contains(&ra));
        let g = Big::gcd(&Big::from_i128(48), &Big::from_i128(-18));
        assert_eq!(g.to_i128().unwrap(), 6);
    }

    #[test]
    fn display_renders_bigs_in_decimal() {
        let huge = Rat::int(i128::MAX) * Rat::int(10);
        assert!(huge.is_promoted());
        let s = format!("{huge}");
        assert!(s.ends_with('0'));
        assert_eq!(s.len(), format!("{}", i128::MAX).len() + 1);
        assert_eq!(format!("{}", Rat::new(-1, 2)), "-1/2");
        assert_eq!(format!("{}", Rat::int(7)), "7");
    }

    #[test]
    fn scalar_trait_round_trip() {
        use gmip_linalg::scalar::dot_generic;
        let a = vec![Rat::new(1, 2), Rat::new(1, 3)];
        let b = vec![Rat::int(2), Rat::int(3)];
        assert_eq!(dot_generic(&a, &b), Rat::int(2));
        assert!(<Rat as Scalar>::from_f64(f64::NAN).is_none());
        assert_eq!(<Rat as Scalar>::one().to_f64(), 1.0);
    }
}
