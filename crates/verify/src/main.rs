//! `gmip-verify` — exact-oracle verification and differential fuzzing.
//!
//! Usage:
//!   gmip-verify --fuzz <n> [--seed <s>] [--no-chaos] [--no-metamorphic]
//!               [--no-shrink] [--repro-dir <dir>] [--tol <t>]
//!   gmip-verify --oracle <file.mps>
//!
//! `--fuzz` runs the differential fuzz loop (all solve strategies against
//! the exact rational oracle); exit code 1 on any mismatch. `--oracle`
//! solves one MPS file exactly and prints the rational optimum.

use gmip_verify::{run_fuzz, solve_oracle, FuzzConfig, OracleStatus};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gmip-verify --fuzz <n> [--seed <s>] [--no-chaos] \
         [--no-metamorphic] [--no-shrink] [--repro-dir <dir>] [--tol <t>]\n\
         \x20      gmip-verify --oracle <file.mps>"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("gmip-verify: {flag} needs a value");
            usage();
        }
    }
}

fn oracle_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmip-verify: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let instance = match gmip_problems::mps::read_mps(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gmip-verify: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match solve_oracle(&instance) {
        Ok(r) => {
            match r.status {
                OracleStatus::Optimal => {
                    let obj = r.objective.expect("optimal has objective");
                    println!(
                        "{}: Optimal, exact objective {} (~{}), {} nodes",
                        instance.name,
                        obj,
                        obj.approx(),
                        r.nodes
                    );
                }
                OracleStatus::Infeasible => {
                    println!("{}: Infeasible ({} nodes)", instance.name, r.nodes)
                }
                OracleStatus::Unbounded => {
                    println!("{}: Unbounded ({} nodes)", instance.name, r.nodes)
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gmip-verify: oracle failed on {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut fuzz = false;
    let mut oracle: Option<String> = None;
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fuzz" => {
                fuzz = true;
                cfg.cases = parse(&mut args, "--fuzz");
            }
            "--seed" => cfg.seed = parse(&mut args, "--seed"),
            "--tol" => cfg.tol = parse(&mut args, "--tol"),
            "--no-chaos" => cfg.chaos = false,
            "--no-metamorphic" => cfg.metamorphic = false,
            "--no-shrink" => cfg.shrink = false,
            "--repro-dir" => {
                cfg.repro_dir = Some(PathBuf::from(parse::<String>(&mut args, "--repro-dir")))
            }
            "--oracle" => oracle = Some(parse(&mut args, "--oracle")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gmip-verify: unknown flag {other}");
                usage();
            }
        }
    }
    if let Some(path) = oracle {
        return oracle_file(&path);
    }
    if !fuzz {
        usage();
    }
    if cfg.repro_dir.is_none() {
        cfg.repro_dir = Some(PathBuf::from("target/gmip-verify-repros"));
    }
    println!(
        "gmip-verify: fuzzing {} cases (seed {}, chaos {}, metamorphic {})",
        cfg.cases, cfg.seed, cfg.chaos, cfg.metamorphic
    );
    match run_fuzz(&cfg) {
        Ok(out) => {
            println!(
                "gmip-verify: {} cases, {} strategy checks, {} certificates, \
                 {} metamorphic checks, {} mismatches",
                out.cases,
                out.checks,
                out.certificates,
                out.metamorphic_checks,
                out.mismatches.len()
            );
            if out.ok() {
                println!("gmip-verify: clean — every strategy agrees with the exact oracle");
                ExitCode::SUCCESS
            } else {
                for m in &out.mismatches {
                    eprintln!("MISMATCH {} [{}]: {}", m.case, m.strategy, m.detail);
                    if let Some(s) = &m.shrunk {
                        eprintln!("  shrunk to {} vars / {} cons", s.num_vars(), s.num_cons());
                    }
                    if let Some(p) = &m.repro {
                        eprintln!("  repro: {}", p.display());
                    }
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gmip-verify: fuzz run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
