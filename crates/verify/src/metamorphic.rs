//! Metamorphic instance transforms.
//!
//! Each transform rewrites an instance into an equivalent one whose
//! optimum is an affine image of the original's:
//! `opt' = scale · opt + offset` (statuses are preserved, `scale > 0`).
//! Solving both and mapping back is a correctness check that needs **no
//! ground truth** — a solver bug that breaks equivariance (ordering
//! sensitivity, scaling sensitivity, bound-handling bugs) is caught even
//! when the absolute optimum is unknown.
//!
//! Scales are powers of two so coefficient rewrites stay exactly
//! representable in `f64`; remaining rewrite rounding (e.g. `rhs − a` in
//! complementation) is covered by the declared float tolerance.

use gmip_problems::{Constraint, MipInstance, Sense, VarType, Variable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A transformed instance plus the affine map from the original optimum:
/// `expected_transformed_opt = scale · original_opt + offset`.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// Transform name (for diagnostics).
    pub name: &'static str,
    /// The rewritten instance.
    pub instance: MipInstance,
    /// Multiplicative part of the objective map (always > 0).
    pub scale: f64,
    /// Additive part of the objective map.
    pub offset: f64,
}

impl Transformed {
    /// Maps an optimum of the *transformed* instance back to the
    /// original's scale: `(opt' − offset) / scale`.
    pub fn map_back(&self, transformed_opt: f64) -> f64 {
        (transformed_opt - self.offset) / self.scale
    }
}

fn identity(name: &'static str, instance: MipInstance) -> Transformed {
    Transformed {
        name,
        instance,
        scale: 1.0,
        offset: 0.0,
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut ChaCha8Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        v.swap(i, j);
    }
}

/// Permutes constraint order.
pub fn row_permutation(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let mut t = m.clone();
    shuffle(&mut t.cons, rng);
    identity("row-permutation", t)
}

/// Permutes variable order (remapping every coefficient index).
pub fn col_permutation(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let n = m.num_vars();
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(&mut perm, rng);
    // perm[k] = old index placed at new position k; old -> new inverse map.
    let mut new_of_old = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        new_of_old[old] = new;
    }
    let mut t = MipInstance::new(m.name.clone(), m.objective);
    for &old in &perm {
        t.add_var(m.vars[old].clone());
    }
    for c in &m.cons {
        let coeffs = c.coeffs.iter().map(|&(j, v)| (new_of_old[j], v)).collect();
        t.add_con(Constraint::new(c.name.clone(), coeffs, c.sense, c.rhs));
    }
    identity("col-permutation", t)
}

/// Scales each constraint row by an independent positive power of two.
pub fn row_scaling(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let mut t = m.clone();
    for c in &mut t.cons {
        let s = [0.5, 2.0, 4.0, 0.25][rng.gen_range(0..4usize)];
        for (_, v) in &mut c.coeffs {
            *v *= s;
        }
        c.rhs *= s;
    }
    identity("row-scaling", t)
}

/// Scales the objective by a positive power of two: `opt' = s · opt`.
pub fn objective_scale(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let s = [2.0, 0.5, 4.0][rng.gen_range(0..3usize)];
    let mut t = m.clone();
    for v in &mut t.vars {
        v.obj *= s;
    }
    Transformed {
        name: "objective-scale",
        instance: t,
        scale: s,
        offset: 0.0,
    }
}

/// Shifts the objective by a constant via a variable fixed to 1:
/// `opt' = opt + k`.
pub fn objective_shift(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let k = rng.gen_range(1..8i64) as f64;
    let mut t = m.clone();
    t.add_var(Variable::continuous("shift1", 1.0, 1.0, k));
    Transformed {
        name: "objective-shift",
        instance: t,
        scale: 1.0,
        offset: k,
    }
}

/// Appends a redundant constraint: a relaxed duplicate of an existing row
/// (implied by the original, so the feasible set is unchanged).
pub fn redundant_constraint(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    if m.cons.is_empty() {
        return identity("redundant-constraint", m.clone());
    }
    let i = rng.gen_range(0..m.num_cons());
    let src = &m.cons[i];
    let (sense, rhs) = match src.sense {
        Sense::Le => (Sense::Le, src.rhs + 1.0),
        Sense::Ge => (Sense::Ge, src.rhs - 1.0),
        // An equality row implies both inequalities; keep the ≤ side.
        Sense::Eq => (Sense::Le, src.rhs + 1.0),
    };
    let mut t = m.clone();
    t.add_con(Constraint::new(
        format!("{}_red", src.name),
        src.coeffs.clone(),
        sense,
        rhs,
    ));
    identity("redundant-constraint", t)
}

/// Complements one binary variable `x → 1 − x'`: coefficient signs flip,
/// right-hand sides absorb the constant, `opt' = opt − c_j`.
pub fn complement_binary(m: &MipInstance, rng: &mut ChaCha8Rng) -> Transformed {
    let binaries: Vec<usize> = m
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Binary)
        .map(|(j, _)| j)
        .collect();
    if binaries.is_empty() {
        return identity("complement-binary", m.clone());
    }
    let j = binaries[rng.gen_range(0..binaries.len())];
    let cj = m.vars[j].obj;
    let mut t = m.clone();
    t.vars[j].obj = -cj;
    t.vars[j].name = format!("{}_c", m.vars[j].name);
    for c in &mut t.cons {
        if let Some(pos) = c.coeffs.iter().position(|&(k, _)| k == j) {
            let a = c.coeffs[pos].1;
            c.coeffs[pos].1 = -a;
            c.rhs -= a;
        }
    }
    Transformed {
        name: "complement-binary",
        instance: t,
        scale: 1.0,
        offset: -cj,
    }
}

/// The full transform suite for one instance, deterministically seeded.
pub fn transforms(m: &MipInstance, seed: u64) -> Vec<Transformed> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        row_permutation(m, &mut rng),
        col_permutation(m, &mut rng),
        row_scaling(m, &mut rng),
        objective_scale(m, &mut rng),
        objective_shift(m, &mut rng),
        redundant_constraint(m, &mut rng),
        complement_binary(m, &mut rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_core::{MipConfig, MipSolver, MipStatus};
    use gmip_problems::catalog::{figure1_knapsack, textbook_mip};

    fn optimum(m: &MipInstance) -> f64 {
        let mut s = MipSolver::host_baseline(m.clone(), MipConfig::default());
        let r = s.solve().expect("solve");
        assert_eq!(r.status, MipStatus::Optimal);
        r.objective
    }

    #[test]
    fn every_transform_preserves_the_mapped_back_optimum() {
        for m in [figure1_knapsack(), textbook_mip()] {
            let base = optimum(&m);
            for t in transforms(&m, 99) {
                t.instance
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: invalid instance: {e}", t.name));
                let got = optimum(&t.instance);
                let back = t.map_back(got);
                assert!(
                    (back - base).abs() < 1e-6,
                    "{}: mapped-back {} vs original {}",
                    t.name,
                    back,
                    base
                );
            }
        }
    }

    #[test]
    fn transforms_also_agree_with_the_exact_oracle() {
        let m = figure1_knapsack();
        let base = crate::solve_oracle(&m).unwrap().objective.unwrap().approx();
        for t in transforms(&m, 7) {
            let r = crate::solve_oracle(&t.instance).unwrap_or_else(|e| panic!("{}: {e}", t.name));
            let back = t.map_back(r.objective.unwrap().approx());
            assert!(
                (back - base).abs() < 1e-9,
                "{}: oracle mapped-back {} vs {}",
                t.name,
                back,
                base
            );
        }
    }

    #[test]
    fn complementation_flips_exactly_one_binary() {
        let m = figure1_knapsack();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = complement_binary(&m, &mut rng);
        assert_eq!(t.instance.num_vars(), m.num_vars());
        let flipped: Vec<_> = m
            .vars
            .iter()
            .zip(&t.instance.vars)
            .filter(|(a, b)| a.obj != b.obj)
            .collect();
        assert_eq!(flipped.len(), 1);
        assert_eq!(flipped[0].0.obj, -flipped[0].1.obj);
    }

    #[test]
    fn shift_adds_fixed_variable() {
        let m = textbook_mip();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = objective_shift(&m, &mut rng);
        let v = t.instance.vars.last().unwrap();
        assert_eq!((v.lb, v.ub), (1.0, 1.0));
        assert_eq!(t.offset, v.obj);
    }
}
