//! An exact bounded-variable simplex with Bland's rule.
//!
//! Generic over [`gmip_linalg::Scalar`]; instantiated with [`crate::Rat`]
//! it solves the same lowered problems as the float engines with **zero
//! rounding**, which makes it the independent correctness oracle the
//! differential fuzzer compares every strategy against. Bland's least-index
//! rule guarantees termination without any numerical tolerance, and the
//! full-tableau update — wasteful for production, fine for oracle-sized
//! instances — keeps every entry an explicit exact value.

use gmip_linalg::Scalar;
use gmip_problems::{MipInstance, Objective, Sense};

/// A bound: `None` encodes the corresponding infinity.
pub type Bound<S> = Option<S>;

/// Exact bound override for one structural variable (a branch decision).
#[derive(Debug, Clone)]
pub struct ExactBound<S> {
    /// Structural column index.
    pub var: usize,
    /// New lower bound.
    pub lb: Bound<S>,
    /// New upper bound.
    pub ub: Bound<S>,
}

/// A problem in equality standard form: maximize `cᵀx`, `Ax = b`,
/// `l ≤ x ≤ u` — the exact mirror of `gmip_lp::StandardLp`'s lowering
/// (slack per inequality row, `negated` flag for minimize sources).
#[derive(Debug, Clone)]
pub struct ExactLp<S> {
    /// Dense row-major constraint matrix (structural + slack columns).
    pub a: Vec<Vec<S>>,
    /// Right-hand side.
    pub b: Vec<S>,
    /// Objective (internal maximize sense).
    pub c: Vec<S>,
    /// Lower bounds (`None` = −∞).
    pub lb: Vec<Bound<S>>,
    /// Upper bounds (`None` = +∞).
    pub ub: Vec<Bound<S>>,
    /// Leading columns that are instance variables (the rest are slacks).
    pub n_structural: usize,
    /// True when the source minimized (objective was negated).
    pub negated: bool,
}

/// Terminal status of an exact solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactStatus {
    /// Optimal basic solution found.
    Optimal,
    /// The constraint system admits no point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// The result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactSolution<S> {
    /// Terminal status.
    pub status: ExactStatus,
    /// Exact objective in the **source** sense (None unless optimal).
    pub objective: Option<S>,
    /// Structural variable values (empty unless optimal).
    pub x: Vec<S>,
    /// Simplex pivots + bound flips spent across both phases.
    pub iterations: usize,
}

impl<S: Scalar> ExactLp<S> {
    /// Lowers an instance exactly, mirroring `StandardLp::from_instance`:
    /// `Le` rows gain a `+1` slack, `Ge` rows a `-1` slack, `Eq` rows
    /// none; minimize objectives are negated with `negated = true`.
    pub fn from_instance(m: &MipInstance, changes: &[ExactBound<S>]) -> Result<Self, String> {
        let conv = |v: f64| -> Result<S, String> {
            S::from_f64(v).ok_or_else(|| format!("non-finite coefficient {v}"))
        };
        let n0 = m.num_vars();
        let n_slacks = m.cons.iter().filter(|c| c.sense != Sense::Eq).count();
        let n = n0 + n_slacks;
        let negated = m.objective == Objective::Minimize;
        let mut c = Vec::with_capacity(n);
        for v in &m.vars {
            let cv = conv(v.obj)?;
            c.push(if negated { -cv } else { cv });
        }
        c.resize(n, S::zero());
        let mut lb: Vec<Bound<S>> = Vec::with_capacity(n);
        let mut ub: Vec<Bound<S>> = Vec::with_capacity(n);
        for v in &m.vars {
            lb.push(if v.lb.is_finite() {
                Some(conv(v.lb)?)
            } else {
                None
            });
            ub.push(if v.ub.is_finite() {
                Some(conv(v.ub)?)
            } else {
                None
            });
        }
        let mut a = vec![vec![S::zero(); n]; m.num_cons()];
        let mut b = Vec::with_capacity(m.num_cons());
        let mut slack = n0;
        for (i, con) in m.cons.iter().enumerate() {
            for &(j, v) in &con.coeffs {
                a[i][j] = conv(v)?;
            }
            b.push(conv(con.rhs)?);
            match con.sense {
                Sense::Le => {
                    a[i][slack] = S::one();
                    lb.push(Some(S::zero()));
                    ub.push(None);
                    slack += 1;
                }
                Sense::Ge => {
                    a[i][slack] = -S::one();
                    lb.push(Some(S::zero()));
                    ub.push(None);
                    slack += 1;
                }
                Sense::Eq => {}
            }
        }
        let mut lp = ExactLp {
            a,
            b,
            c,
            lb,
            ub,
            n_structural: n0,
            negated,
        };
        for bc in changes {
            if bc.var >= n0 {
                return Err(format!("bound change on non-structural column {}", bc.var));
            }
            lp.lb[bc.var] = bc.lb.clone();
            lp.ub[bc.var] = bc.ub.clone();
        }
        Ok(lp)
    }

    /// Exact objective of a structural point, in the source sense.
    pub fn source_objective(&self, x: &[S]) -> S {
        let mut obj = S::zero();
        for j in 0..self.n_structural {
            obj = obj + self.c[j].clone() * x[j].clone();
        }
        if self.negated {
            -obj
        } else {
            obj
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stat {
    Basic,
    Lower,
    Upper,
}

/// The exact simplex state: full tableau `B⁻¹A` plus `B⁻¹b`.
struct Tableau<S> {
    tab: Vec<Vec<S>>,
    rhs: Vec<S>,
    basis: Vec<usize>,
    status: Vec<Stat>,
    lb: Vec<Bound<S>>,
    ub: Vec<Bound<S>>,
}

impl<S: Scalar> Tableau<S> {
    fn ncols(&self) -> usize {
        self.status.len()
    }

    /// Value of nonbasic column `j` (its active bound).
    fn nb_value(&self, j: usize) -> S {
        match self.status[j] {
            Stat::Lower => self.lb[j].clone().expect("Lower status needs finite lb"),
            Stat::Upper => self.ub[j].clone().expect("Upper status needs finite ub"),
            Stat::Basic => unreachable!("nb_value of basic column"),
        }
    }

    /// Current basic values `x_B = B⁻¹b − Σ_nb (B⁻¹a_j)·x_j`.
    fn basic_values(&self) -> Vec<S> {
        let mut x = self.rhs.clone();
        for j in 0..self.ncols() {
            if self.status[j] == Stat::Basic {
                continue;
            }
            let xj = self.nb_value(j);
            if xj.is_zero_exact() {
                continue;
            }
            for i in 0..self.tab.len() {
                if !self.tab[i][j].is_zero_exact() {
                    x[i] = x[i].clone() - self.tab[i][j].clone() * xj.clone();
                }
            }
        }
        x
    }

    /// Full point in column order.
    fn point(&self) -> Vec<S> {
        let xb = self.basic_values();
        (0..self.ncols())
            .map(|j| match self.status[j] {
                Stat::Basic => {
                    let r = self.basis.iter().position(|&bj| bj == j).unwrap();
                    xb[r].clone()
                }
                _ => self.nb_value(j),
            })
            .collect()
    }

    fn pivot(&mut self, r: usize, q: usize) {
        let p = self.tab[r][q].clone();
        debug_assert!(!p.is_zero_exact());
        for v in self.tab[r].iter_mut() {
            *v = v.clone() / p.clone();
        }
        self.rhs[r] = self.rhs[r].clone() / p;
        for i in 0..self.tab.len() {
            if i == r {
                continue;
            }
            let f = self.tab[i][q].clone();
            if f.is_zero_exact() {
                continue;
            }
            for j in 0..self.ncols() {
                let delta = f.clone() * self.tab[r][j].clone();
                self.tab[i][j] = self.tab[i][j].clone() - delta;
            }
            self.rhs[i] = self.rhs[i].clone() - f * self.rhs[r].clone();
        }
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Backstop only — Bland's rule cannot cycle, so hitting this means a bug.
const MAX_ITERS: usize = 200_000;

/// One primal simplex phase under Bland's rule (maximize `c`).
/// `frozen` marks columns excluded from entering (fixed artificials).
fn primal_bland<S: Scalar>(
    t: &mut Tableau<S>,
    c: &[S],
    iters: &mut usize,
) -> Result<PhaseOutcome, String> {
    loop {
        if *iters > MAX_ITERS {
            return Err("exact simplex iteration backstop hit (bug: Bland cycled?)".into());
        }
        // Reduced costs d_j = c_j − c_Bᵀ (B⁻¹a_j); Bland: least eligible j.
        let cb: Vec<S> = t.basis.iter().map(|&j| c[j].clone()).collect();
        let mut entering: Option<(usize, bool)> = None; // (col, increasing)
        for j in 0..t.ncols() {
            if t.status[j] == Stat::Basic {
                continue;
            }
            // Fixed columns (l == u) can never improve; skip them.
            if let (Some(l), Some(u)) = (&t.lb[j], &t.ub[j]) {
                if l == u {
                    continue;
                }
            }
            let mut d = c[j].clone();
            for i in 0..t.tab.len() {
                if !cb[i].is_zero_exact() && !t.tab[i][j].is_zero_exact() {
                    d = d - cb[i].clone() * t.tab[i][j].clone();
                }
            }
            let up = t.status[j] == Stat::Lower;
            let eligible = if up { d > S::zero() } else { d < S::zero() };
            if eligible {
                entering = Some((j, up));
                break;
            }
        }
        let Some((q, increasing)) = entering else {
            return Ok(PhaseOutcome::Optimal);
        };
        *iters += 1;

        let xb = t.basic_values();
        let sigma = if increasing { S::one() } else { -S::one() };
        // Bound-flip limit for the entering variable itself.
        let flip: Option<S> = match (&t.lb[q], &t.ub[q]) {
            (Some(l), Some(u)) => Some(u.clone() - l.clone()),
            _ => None,
        };
        // Row ratio test: smallest step at which a basic variable hits a
        // bound; ties broken by least basic column index (Bland).
        let mut best: Option<(S, usize)> = None; // (t, row)
        for i in 0..t.tab.len() {
            let delta = sigma.clone() * t.tab[i][q].clone();
            if delta.is_zero_exact() {
                continue;
            }
            let limit = if delta > S::zero() {
                // x_B[i] decreases toward its lower bound.
                t.lb[t.basis[i]]
                    .as_ref()
                    .map(|l| (xb[i].clone() - l.clone()) / delta.clone())
            } else {
                // x_B[i] increases toward its upper bound.
                t.ub[t.basis[i]]
                    .as_ref()
                    .map(|u| (u.clone() - xb[i].clone()) / -delta.clone())
            };
            let Some(mut ratio) = limit else { continue };
            if ratio < S::zero() {
                ratio = S::zero(); // degenerate guard
            }
            let replace = match &best {
                None => true,
                Some((bt, bi)) => ratio < *bt || (ratio == *bt && t.basis[i] < t.basis[*bi]),
            };
            if replace {
                best = Some((ratio, i));
            }
        }

        let use_flip = match (&best, &flip) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((t, _)), Some(span)) => span <= t,
        };
        if use_flip {
            // Entering variable runs to its opposite bound: pure flip.
            t.status[q] = if increasing { Stat::Upper } else { Stat::Lower };
        } else if let Some((_, r)) = best {
            let delta_r = sigma.clone() * t.tab[r][q].clone();
            let leaving = t.basis[r];
            t.status[leaving] = if delta_r > S::zero() {
                Stat::Lower
            } else {
                Stat::Upper
            };
            t.status[q] = Stat::Basic;
            t.pivot(r, q);
            t.basis[r] = q;
        } else {
            return Ok(PhaseOutcome::Unbounded);
        }
    }
}

/// Solves an [`ExactLp`] by the two-phase exact simplex.
pub fn solve_exact<S: Scalar>(lp: &ExactLp<S>) -> Result<ExactSolution<S>, String> {
    let m = lp.b.len();
    let n = lp.c.len();

    // Initial nonbasic point: every column at a finite bound.
    let mut status = Vec::with_capacity(n + m);
    for j in 0..n {
        match (&lp.lb[j], &lp.ub[j]) {
            (Some(_), _) => status.push(Stat::Lower),
            (None, Some(_)) => status.push(Stat::Upper),
            (None, None) => return Err(format!("free column {j} unsupported")),
        }
    }

    // Residual decides per-row sign flips so artificial values start ≥ 0.
    let mut tab: Vec<Vec<S>> = lp.a.iter().map(|row| row.to_vec()).collect();
    let mut rhs = lp.b.clone();
    let mut resid = rhs.clone();
    for j in 0..n {
        let xj = match status[j] {
            Stat::Lower => lp.lb[j].clone().unwrap(),
            Stat::Upper => lp.ub[j].clone().unwrap(),
            Stat::Basic => unreachable!(),
        };
        if xj.is_zero_exact() {
            continue;
        }
        for i in 0..m {
            if !tab[i][j].is_zero_exact() {
                resid[i] = resid[i].clone() - tab[i][j].clone() * xj.clone();
            }
        }
    }
    for i in 0..m {
        if resid[i] < S::zero() {
            for v in tab[i].iter_mut() {
                *v = -v.clone();
            }
            rhs[i] = -rhs[i].clone();
        }
    }
    // Artificial identity block; artificials start basic.
    let mut lb = lp.lb.clone();
    let mut ub = lp.ub.clone();
    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        for (k, row) in tab.iter_mut().enumerate() {
            row.push(if k == i { S::one() } else { S::zero() });
        }
        lb.push(Some(S::zero()));
        ub.push(None);
        status.push(Stat::Basic);
        basis.push(n + i);
    }
    let mut t = Tableau {
        tab,
        rhs,
        basis,
        status,
        lb,
        ub,
    };

    // Phase 1: maximize −Σ artificials.
    let mut c1 = vec![S::zero(); n + m];
    for j in n..n + m {
        c1[j] = -S::one();
    }
    let mut iterations = 0usize;
    match primal_bland(&mut t, &c1, &mut iterations)? {
        PhaseOutcome::Unbounded => return Err("phase 1 unbounded (internal error)".into()),
        PhaseOutcome::Optimal => {}
    }
    let point = t.point();
    let mut infeas = S::zero();
    for j in n..n + m {
        infeas = infeas + point[j].clone();
    }
    if !infeas.is_zero_exact() {
        return Ok(ExactSolution {
            status: ExactStatus::Infeasible,
            objective: None,
            x: Vec::new(),
            iterations,
        });
    }

    // Fix artificials to zero; pivot basic ones out where a nonzero
    // non-artificial tableau entry exists (degenerate t = 0 pivots).
    for j in n..n + m {
        t.ub[j] = Some(S::zero());
    }
    for r in 0..m {
        if t.basis[r] < n {
            continue;
        }
        if let Some(q) =
            (0..n).find(|&j| t.status[j] != Stat::Basic && !t.tab[r][j].is_zero_exact())
        {
            let leaving = t.basis[r];
            t.status[leaving] = Stat::Lower;
            t.status[q] = Stat::Basic;
            t.pivot(r, q);
            t.basis[r] = q;
        }
        // else: redundant row — the artificial stays basic, pinned at 0 by
        // its [0,0] bounds in every later ratio test.
    }

    // Phase 2: the real objective.
    let mut c2 = lp.c.clone();
    c2.resize(n + m, S::zero());
    match primal_bland(&mut t, &c2, &mut iterations)? {
        PhaseOutcome::Unbounded => Ok(ExactSolution {
            status: ExactStatus::Unbounded,
            objective: None,
            x: Vec::new(),
            iterations,
        }),
        PhaseOutcome::Optimal => {
            let point = t.point();
            let x: Vec<S> = point[..lp.n_structural].to_vec();
            let mut obj = S::zero();
            for j in 0..n {
                if !lp.c[j].is_zero_exact() {
                    obj = obj + lp.c[j].clone() * point[j].clone();
                }
            }
            Ok(ExactSolution {
                status: ExactStatus::Optimal,
                objective: Some(if lp.negated { -obj } else { obj }),
                x,
                iterations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;
    use gmip_problems::catalog::{
        figure1_knapsack, infeasible_instance, textbook_lp, unbounded_instance,
    };

    fn solve_rat(m: &MipInstance) -> ExactSolution<Rat> {
        let lp = ExactLp::<Rat>::from_instance(m, &[]).unwrap();
        solve_exact(&lp).unwrap()
    }

    #[test]
    fn textbook_lp_exact_optimum_is_21() {
        let s = solve_rat(&textbook_lp());
        assert_eq!(s.status, ExactStatus::Optimal);
        assert_eq!(s.objective.unwrap(), Rat::int(21));
        assert_eq!(s.x[0], Rat::int(3));
        assert_eq!(s.x[1], Rat::new(3, 2));
    }

    #[test]
    fn infeasible_and_unbounded_detected_exactly() {
        assert_eq!(
            solve_rat(&infeasible_instance()).status,
            ExactStatus::Infeasible
        );
        assert_eq!(
            solve_rat(&unbounded_instance()).status,
            ExactStatus::Unbounded
        );
    }

    #[test]
    fn matches_float_relaxation_across_catalog() {
        use gmip_problems::catalog::small_suite;
        for entry in small_suite() {
            let exact = solve_rat(&entry.instance);
            let float = gmip_lp::solver::solve_relaxation_host(&entry.instance, &[])
                .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            assert_eq!(exact.status, ExactStatus::Optimal, "{}", entry.id);
            assert_eq!(float.status, gmip_lp::LpStatus::Optimal, "{}", entry.id);
            let diff = (exact.objective.unwrap().approx() - float.objective).abs();
            assert!(
                diff < 1e-6,
                "{}: exact {} vs float {}",
                entry.id,
                diff,
                float.objective
            );
        }
    }

    #[test]
    fn branch_bounds_are_exact() {
        // Figure-1 knapsack root relaxation is fractional; branching on the
        // fractional variable with exact integer bounds must reproduce the
        // float solver's child bounds.
        let m = figure1_knapsack();
        let root = solve_rat(&m);
        assert_eq!(root.status, ExactStatus::Optimal);
        let frac = root
            .x
            .iter()
            .position(|v| !v.is_integer())
            .expect("root must be fractional");
        let down = ExactBound {
            var: frac,
            lb: Some(Rat::int(0)),
            ub: Some(root.x[frac].floor()),
        };
        let lp = ExactLp::<Rat>::from_instance(&m, &[down]).unwrap();
        let child = solve_exact(&lp).unwrap();
        assert_eq!(child.status, ExactStatus::Optimal);
        assert!(child.objective.unwrap() <= root.objective.unwrap());
    }

    #[test]
    fn float_instantiation_of_the_same_generic_solver() {
        // The Scalar abstraction really is generic: f64 runs the identical
        // Bland tableau code (inexactly) and agrees on the textbook LP.
        let lp = ExactLp::<f64>::from_instance(&textbook_lp(), &[]).unwrap();
        let s = solve_exact(&lp).unwrap();
        assert_eq!(s.status, ExactStatus::Optimal);
        assert!((s.objective.unwrap() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn minimize_source_objective_sign() {
        use gmip_problems::generators::set_cover;
        let m = set_cover(6, 5, 0.5, 3);
        let s = solve_rat(&m);
        assert_eq!(s.status, ExactStatus::Optimal);
        // Covers minimize positive costs: source objective must be > 0.
        assert!(s.objective.unwrap().is_positive());
    }
}
