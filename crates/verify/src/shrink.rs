//! Minimal-counterexample shrinking for fuzz mismatches.
//!
//! Greedy delta-debugging over the instance structure: repeatedly try
//! dropping one constraint or one variable, keeping any candidate on which
//! the failure predicate still fires, until no single removal preserves
//! the failure. The result is written as a standalone `.mps` repro so the
//! bug can be replayed with `gmip-verify --oracle <file>` (or any MPS
//! consumer) without re-running the fuzzer.

use gmip_problems::{mps, Constraint, MipInstance};
use std::path::{Path, PathBuf};

/// Removes variable `j`, dropping its coefficients everywhere. Returns
/// `None` when the candidate would be degenerate (no variables) or invalid.
fn remove_var(m: &MipInstance, j: usize) -> Option<MipInstance> {
    if m.num_vars() <= 1 {
        return None;
    }
    let mut t = MipInstance::new(m.name.clone(), m.objective);
    for (k, v) in m.vars.iter().enumerate() {
        if k != j {
            t.add_var(v.clone());
        }
    }
    for c in &m.cons {
        let coeffs: Vec<(usize, f64)> = c
            .coeffs
            .iter()
            .filter(|&&(k, _)| k != j)
            .map(|&(k, v)| (if k > j { k - 1 } else { k }, v))
            .collect();
        if coeffs.is_empty() {
            // A row with no remaining support constrains nothing the
            // candidate can express; drop it.
            continue;
        }
        t.add_con(Constraint::new(c.name.clone(), coeffs, c.sense, c.rhs));
    }
    t.validate().ok()?;
    Some(t)
}

/// Removes constraint `i`.
fn remove_con(m: &MipInstance, i: usize) -> Option<MipInstance> {
    let mut t = m.clone();
    t.cons.remove(i);
    t.validate().ok()?;
    Some(t)
}

/// Greedily shrinks `instance` while `still_fails` keeps returning `true`.
/// The predicate is only trusted on valid instances; every candidate is
/// re-validated before probing. Terminates at a 1-variable floor.
pub fn shrink_instance(
    instance: &MipInstance,
    still_fails: &dyn Fn(&MipInstance) -> bool,
) -> MipInstance {
    let mut cur = instance.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.num_cons() {
            match remove_con(&cur, i) {
                Some(cand) if still_fails(&cand) => {
                    cur = cand;
                    progressed = true;
                }
                _ => i += 1,
            }
        }
        let mut j = 0;
        while j < cur.num_vars() {
            match remove_var(&cur, j) {
                Some(cand) if still_fails(&cand) => {
                    cur = cand;
                    progressed = true;
                }
                _ => j += 1,
            }
        }
        if !progressed {
            return cur;
        }
    }
}

/// Writes `instance` as an `.mps` repro file under `dir`; returns the path.
pub fn write_repro(dir: &Path, stem: &str, instance: &MipInstance) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.mps"));
    std::fs::write(&path, mps::write_mps(instance))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::figure1_knapsack;
    use gmip_problems::generators::knapsack;

    #[test]
    fn shrinks_to_single_variable_under_always_failing_predicate() {
        let m = knapsack(10, 0.5, 3);
        let shrunk = shrink_instance(&m, &|_| true);
        assert_eq!(shrunk.num_vars(), 1);
        assert!(shrunk.validate().is_ok());
    }

    #[test]
    fn preserves_structure_the_predicate_depends_on() {
        // Predicate: "still has at least 3 variables and a constraint" —
        // the shrinker must stop exactly at that boundary.
        let m = knapsack(10, 0.5, 3);
        let shrunk = shrink_instance(&m, &|c| c.num_vars() >= 3 && c.num_cons() >= 1);
        assert_eq!(shrunk.num_vars(), 3);
        assert_eq!(shrunk.num_cons(), 1);
    }

    #[test]
    fn repro_roundtrips_through_mps() {
        let dir = std::env::temp_dir().join("gmip-verify-shrink-test");
        let m = figure1_knapsack();
        let path = write_repro(&dir, "fig1", &m).expect("write repro");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = mps::read_mps(&text).expect("parse repro");
        assert_eq!(back.num_vars(), m.num_vars());
        assert_eq!(back.num_cons(), m.num_cons());
        std::fs::remove_dir_all(&dir).ok();
    }
}
