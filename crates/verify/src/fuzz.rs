//! The seeded differential fuzz driver behind `gmip-verify --fuzz <n>`.
//!
//! Every case samples an instance from the generator catalog (plus the
//! random-MIP generator), computes its ground truth with the exact
//! rational [`crate::oracle`], and then runs every solve strategy in the
//! repo — host baseline, simulated-device plan, DES cluster (clean and
//! under a chaos fault plan), threaded cluster, batched wave — checking
//! each result against the oracle: status, objective within the declared
//! float tolerance, exact incumbent re-evaluation, and (for the host
//! strategy) exact validation of the emitted LP certificates. Metamorphic
//! transforms of each instance ride along: their mapped-back optimum must
//! equal the oracle's.
//!
//! On mismatch the failing instance is shrunk to a minimal counterexample
//! (see [`crate::shrink`]) and written as an `.mps` repro file.

use crate::certify;
use crate::metamorphic::transforms;
use crate::oracle::{solve_oracle, OracleResult, OracleStatus};
use crate::shrink::{shrink_instance, write_repro};
use gmip_core::{
    plan, solve_batched_wave, BatchedWaveConfig, MipConfig, MipSolver, MipStatus, Strategy,
};
use gmip_gpu::{Accel, CostModel};
use gmip_parallel::{solve_parallel, solve_threaded, ChaosConfig, ParallelConfig};
use gmip_problems::generators::{
    bin_packing, generalized_assignment, knapsack, random_mip, set_cover, unit_commitment,
    RandomMipConfig,
};
use gmip_problems::{catalog, MipInstance};
use std::path::PathBuf;

/// Fuzz-run configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of instances to fuzz.
    pub cases: usize,
    /// Master seed; the whole run is deterministic given this.
    pub seed: u64,
    /// Run the built-in strategy set (host, device, clusters, batched).
    pub builtin_strategies: bool,
    /// Include a DES cluster run under a chaos fault plan.
    pub chaos: bool,
    /// Run the metamorphic transform suite through the host solver.
    pub metamorphic: bool,
    /// Shrink mismatches to minimal counterexamples.
    pub shrink: bool,
    /// Where to write `.mps` repro files (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
    /// Float tolerance for objective comparisons.
    pub tol: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            cases: 50,
            seed: 4,
            builtin_strategies: true,
            chaos: true,
            metamorphic: true,
            shrink: true,
            repro_dir: None,
            tol: 1e-5,
        }
    }
}

/// What one strategy reported for one instance.
#[derive(Debug, Clone)]
pub struct StrategyOutput {
    /// Terminal status.
    pub status: MipStatus,
    /// Claimed objective (source sense; NaN if none).
    pub objective: f64,
    /// Claimed incumbent (may be empty when the strategy doesn't report
    /// points).
    pub x: Vec<f64>,
}

/// A pluggable way to solve an instance (the fuzz driver's unit of test).
pub type StrategyRunner = Box<dyn Fn(&MipInstance) -> Result<StrategyOutput, String>>;

/// One detected disagreement with the oracle.
#[derive(Debug)]
pub struct Mismatch {
    /// Case identifier (`case-<n>/<instance name>`).
    pub case: String,
    /// Strategy (or check) that disagreed.
    pub strategy: String,
    /// What went wrong.
    pub detail: String,
    /// Minimal failing instance, when shrinking was enabled and succeeded.
    pub shrunk: Option<MipInstance>,
    /// Path of the written `.mps` repro, when a repro dir was configured.
    pub repro: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Instances fuzzed.
    pub cases: usize,
    /// Individual strategy/oracle comparisons performed.
    pub checks: usize,
    /// LP certificates validated exactly.
    pub certificates: usize,
    /// Metamorphic transform checks performed.
    pub metamorphic_checks: usize,
    /// All detected mismatches (empty = clean run).
    pub mismatches: Vec<Mismatch>,
}

impl FuzzOutcome {
    /// `true` when the run found no disagreement.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Splitmix-style per-case seed derivation (keeps cases independent).
fn derive(seed: u64, case: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples the fuzz corpus: small catalog instances and oracle-sized draws
/// from every generator family plus the random-MIP generator.
fn sample_instance(seed: u64, case: u64) -> MipInstance {
    let s = derive(seed, case, 1);
    match case % 8 {
        0 => catalog::figure1_knapsack(),
        1 => catalog::textbook_mip(),
        2 => knapsack(5 + (s % 4) as usize, 0.5, s),
        3 => set_cover(4 + (s % 3) as usize, 4, 0.6, s),
        4 => bin_packing(3, 1.0, s),
        5 => unit_commitment(2, 2 + (s % 2) as usize, s),
        6 => generalized_assignment(2, 2 + (s % 2) as usize, s),
        _ => random_mip(&RandomMipConfig {
            rows: 2 + (s % 3) as usize,
            cols: 3 + (s % 5) as usize,
            density: 0.6,
            integral_fraction: 0.75,
            seed: s,
        }),
    }
}

fn device_strategy(m: &MipInstance) -> Result<StrategyOutput, String> {
    let p = plan(
        Strategy::CpuOrchestrated,
        MipConfig::default(),
        CostModel::gpu_pcie(),
        1 << 30,
    );
    let mut s = MipSolver::with_plan(m.clone(), p);
    let r = s.solve().map_err(|e| e.to_string())?;
    Ok(StrategyOutput {
        status: r.status,
        objective: r.objective,
        x: r.x,
    })
}

fn cluster_strategy(m: &MipInstance, chaos: Option<ChaosConfig>) -> Result<StrategyOutput, String> {
    let cfg = ParallelConfig {
        workers: 3,
        gpu_mem: 1 << 26,
        chaos,
        ..Default::default()
    };
    let r = solve_parallel(m, cfg).map_err(|e| e.to_string())?;
    Ok(StrategyOutput {
        status: r.status,
        objective: r.objective,
        x: r.x,
    })
}

fn threaded_strategy(m: &MipInstance) -> Result<StrategyOutput, String> {
    let cfg = ParallelConfig {
        workers: 2,
        gpu_mem: 1 << 26,
        ..Default::default()
    };
    let r = solve_threaded(m, &cfg).map_err(|e| e.to_string())?;
    Ok(StrategyOutput {
        status: r.status,
        objective: r.objective,
        x: r.x,
    })
}

fn batched_strategy(m: &MipInstance) -> Result<StrategyOutput, String> {
    let r = solve_batched_wave(
        m,
        &BatchedWaveConfig {
            lanes: 3,
            ..Default::default()
        },
        Accel::gpu(1),
    )
    .map_err(|e| e.to_string())?;
    Ok(StrategyOutput {
        status: r.status,
        objective: r.objective,
        x: r.x,
    })
}

/// The built-in strategy set (the host baseline is run separately so its
/// certificates can be validated).
fn builtin_strategies(chaos: bool, seed: u64) -> Vec<(String, StrategyRunner)> {
    let mut v: Vec<(String, StrategyRunner)> = vec![
        ("device".into(), Box::new(device_strategy)),
        (
            "cluster".into(),
            Box::new(|m: &MipInstance| cluster_strategy(m, None)),
        ),
        ("threaded".into(), Box::new(threaded_strategy)),
        ("batched:3".into(), Box::new(batched_strategy)),
    ];
    if chaos {
        v.push((
            "cluster-chaos".into(),
            Box::new(move |m: &MipInstance| {
                cluster_strategy(
                    m,
                    Some(ChaosConfig {
                        drop_prob: 0.1,
                        delay_prob: 0.1,
                        delay_ns: 15_000.0,
                        ..ChaosConfig::quiet(seed)
                    }),
                )
            }),
        ));
    }
    v
}

/// Compares one strategy result against the oracle; `None` = agreement.
fn disagreement(
    m: &MipInstance,
    oracle: &OracleResult,
    out: &StrategyOutput,
    tol: f64,
) -> Option<String> {
    match oracle.status {
        OracleStatus::Optimal => {
            let exact = oracle.objective.clone().expect("optimal has objective");
            if out.status != MipStatus::Optimal {
                return Some(format!(
                    "oracle says Optimal({}), strategy says {:?}",
                    exact.approx(),
                    out.status
                ));
            }
            let want = exact.approx();
            if (out.objective - want).abs() > tol * (1.0 + want.abs()) {
                return Some(format!(
                    "objective {} vs exact optimum {}",
                    out.objective, want
                ));
            }
            if !out.x.is_empty() {
                if let Err(e) = certify::check_incumbent(m, &out.x, out.objective, tol) {
                    return Some(format!("incumbent rejected by exact check: {e}"));
                }
            }
            None
        }
        OracleStatus::Infeasible => (out.status != MipStatus::Infeasible)
            .then(|| format!("oracle says Infeasible, strategy says {:?}", out.status)),
        OracleStatus::Unbounded => (out.status != MipStatus::Unbounded)
            .then(|| format!("oracle says Unbounded, strategy says {:?}", out.status)),
    }
}

fn host_with_certificates(
    m: &MipInstance,
) -> Result<(StrategyOutput, Vec<gmip_lp::LpCertificate>), String> {
    let cfg = MipConfig {
        collect_certificates: true,
        ..MipConfig::default()
    };
    let mut s = MipSolver::host_baseline(m.clone(), cfg);
    let r = s.solve().map_err(|e| e.to_string())?;
    Ok((
        StrategyOutput {
            status: r.status,
            objective: r.objective,
            x: r.x,
        },
        r.stats.certificates,
    ))
}

/// Shrinks a failing instance against a reproduction predicate and writes
/// the `.mps` repro, filling the mismatch record in place.
fn shrink_and_write(
    cfg: &FuzzConfig,
    mm: &mut Mismatch,
    instance: &MipInstance,
    still_fails: &dyn Fn(&MipInstance) -> bool,
) {
    if !cfg.shrink {
        return;
    }
    let shrunk = shrink_instance(instance, still_fails);
    if let Some(dir) = &cfg.repro_dir {
        let stem = format!(
            "repro-{}-{}",
            mm.case.replace('/', "_"),
            mm.strategy.replace([':', '/'], "_")
        );
        mm.repro = write_repro(dir, &stem, &shrunk).ok();
    }
    mm.shrunk = Some(shrunk);
}

/// Runs the fuzz loop with the built-in strategy set.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, String> {
    run_fuzz_with(cfg, Vec::new())
}

/// [`run_fuzz`] with extra injected strategies (the hook the in-tree
/// fault-injection tests use to prove the harness catches a wrong solver).
pub fn run_fuzz_with(
    cfg: &FuzzConfig,
    extra: Vec<(String, StrategyRunner)>,
) -> Result<FuzzOutcome, String> {
    let mut strategies = if cfg.builtin_strategies {
        builtin_strategies(cfg.chaos, cfg.seed)
    } else {
        Vec::new()
    };
    strategies.extend(extra);
    let mut out = FuzzOutcome::default();

    for case in 0..cfg.cases {
        let instance = sample_instance(cfg.seed, case as u64);
        let case_id = format!("case-{case}/{}", instance.name);
        let oracle = solve_oracle(&instance).map_err(|e| format!("{case_id}: oracle: {e}"))?;

        // Host baseline + exact certificate validation.
        out.checks += 1;
        match host_with_certificates(&instance) {
            Ok((host_out, certs)) => {
                if let Some(detail) = disagreement(&instance, &oracle, &host_out, cfg.tol) {
                    let mut mm = Mismatch {
                        case: case_id.clone(),
                        strategy: "host".into(),
                        detail,
                        shrunk: None,
                        repro: None,
                    };
                    shrink_and_write(cfg, &mut mm, &instance, &|c| {
                        matches!(
                            (solve_oracle(c), host_with_certificates(c)),
                            (Ok(o), Ok((h, _))) if disagreement(c, &o, &h, cfg.tol).is_some()
                        )
                    });
                    out.mismatches.push(mm);
                }
                let report = certify::check_certificates(&instance, &certs, cfg.tol);
                out.certificates += report.checked;
                for f in report.failures {
                    out.mismatches.push(Mismatch {
                        case: case_id.clone(),
                        strategy: "host-certificates".into(),
                        detail: f,
                        shrunk: None,
                        repro: None,
                    });
                }
            }
            Err(e) => out.mismatches.push(Mismatch {
                case: case_id.clone(),
                strategy: "host".into(),
                detail: format!("solver error: {e}"),
                shrunk: None,
                repro: None,
            }),
        }

        // Every other strategy, differentially against the oracle.
        for (name, run) in &strategies {
            out.checks += 1;
            match run(&instance) {
                Ok(res) => {
                    if let Some(detail) = disagreement(&instance, &oracle, &res, cfg.tol) {
                        let mut mm = Mismatch {
                            case: case_id.clone(),
                            strategy: name.clone(),
                            detail,
                            shrunk: None,
                            repro: None,
                        };
                        shrink_and_write(cfg, &mut mm, &instance, &|c| {
                            matches!(
                                (solve_oracle(c), run(c)),
                                (Ok(o), Ok(r)) if disagreement(c, &o, &r, cfg.tol).is_some()
                            )
                        });
                        out.mismatches.push(mm);
                    }
                }
                Err(e) => out.mismatches.push(Mismatch {
                    case: case_id.clone(),
                    strategy: name.clone(),
                    detail: format!("solver error: {e}"),
                    shrunk: None,
                    repro: None,
                }),
            }
        }

        // Metamorphic equivalence through the host solver.
        if cfg.metamorphic && oracle.status == OracleStatus::Optimal {
            let base = oracle
                .objective
                .clone()
                .expect("optimal has objective")
                .approx();
            for t in transforms(&instance, derive(cfg.seed, case as u64, 2)) {
                out.metamorphic_checks += 1;
                let mut s = MipSolver::host_baseline(t.instance.clone(), MipConfig::default());
                match s.solve() {
                    Ok(r) if r.status == MipStatus::Optimal => {
                        let back = t.map_back(r.objective);
                        if (back - base).abs() > cfg.tol * (1.0 + base.abs()) {
                            out.mismatches.push(Mismatch {
                                case: case_id.clone(),
                                strategy: format!("metamorphic:{}", t.name),
                                detail: format!("mapped-back optimum {back} vs exact {base}"),
                                shrunk: None,
                                repro: None,
                            });
                        }
                    }
                    Ok(r) => out.mismatches.push(Mismatch {
                        case: case_id.clone(),
                        strategy: format!("metamorphic:{}", t.name),
                        detail: format!("transformed instance solved to {:?}", r.status),
                        shrunk: None,
                        repro: None,
                    }),
                    Err(e) => out.mismatches.push(Mismatch {
                        case: case_id.clone(),
                        strategy: format!("metamorphic:{}", t.name),
                        detail: format!("solver error on transform: {e}"),
                        shrunk: None,
                        repro: None,
                    }),
                }
            }
        }
        out.cases += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small clean sweep across all strategies: nothing may disagree with
    /// the exact oracle.
    #[test]
    fn short_fuzz_run_is_clean_across_all_strategies() {
        let cfg = FuzzConfig {
            cases: 8,
            seed: 4,
            ..FuzzConfig::default()
        };
        let out = run_fuzz(&cfg).expect("fuzz run");
        assert_eq!(out.cases, 8);
        assert!(out.certificates > 0, "no certificates were validated");
        assert!(out.metamorphic_checks > 0, "no metamorphic checks ran");
        assert!(
            out.ok(),
            "mismatches: {:?}",
            out.mismatches
                .iter()
                .map(|m| format!("{}/{}: {}", m.case, m.strategy, m.detail))
                .collect::<Vec<_>>()
        );
    }

    /// Acceptance criterion: a deliberately wrong strategy (off-by-one
    /// objective) is caught and shrunk to a tiny (≤ 6 variable) repro.
    #[test]
    fn injected_off_by_one_is_caught_and_shrunk() {
        let dir = std::env::temp_dir().join("gmip-verify-off-by-one");
        let cfg = FuzzConfig {
            cases: 3,
            seed: 4,
            builtin_strategies: false,
            chaos: false,
            metamorphic: false,
            shrink: true,
            repro_dir: Some(dir.clone()),
            tol: 1e-5,
        };
        let bad: StrategyRunner = Box::new(|m: &MipInstance| {
            let mut s = MipSolver::host_baseline(m.clone(), MipConfig::default());
            let r = s.solve().map_err(|e| e.to_string())?;
            Ok(StrategyOutput {
                status: r.status,
                // The bug under test: every optimum is reported one high,
                // and no incumbent is exposed that could contradict it.
                objective: r.objective + 1.0,
                x: Vec::new(),
            })
        });
        let out = run_fuzz_with(&cfg, vec![("off-by-one".into(), bad)]).expect("fuzz run");
        assert!(!out.ok(), "the injected bug went undetected");
        let mm = &out.mismatches[0];
        assert_eq!(mm.strategy, "off-by-one");
        let shrunk = mm.shrunk.as_ref().expect("mismatch was shrunk");
        assert!(
            shrunk.num_vars() <= 6,
            "repro has {} variables (> 6)",
            shrunk.num_vars()
        );
        let repro = mm.repro.as_ref().expect("repro file written");
        let text = std::fs::read_to_string(repro).expect("repro readable");
        let back = gmip_problems::mps::read_mps(&text).expect("repro parses");
        assert_eq!(back.num_vars(), shrunk.num_vars());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: fuzzing found bin-packing instances whose dense cut rows
    /// cycled the dual simplex to its iteration limit (it has no Bland
    /// fallback); `LpSolver::resolve` now falls back to a cold primal solve
    /// on a dual stall. Keep the exact seeds that exposed it.
    #[test]
    fn fuzzer_found_dual_cycling_cases_stay_fixed() {
        use gmip_problems::generators::bin_packing;
        for seed in [16041958120884749744u64, 16355444719202703788] {
            let m = bin_packing(3, 1.0, seed);
            let oracle = solve_oracle(&m).expect("oracle");
            let mut s = MipSolver::host_baseline(m.clone(), MipConfig::default());
            let r = s.solve().expect("host solve must not hit iteration limit");
            assert_eq!(r.status, MipStatus::Optimal);
            let exact = oracle.objective.expect("optimal").approx();
            assert!(
                (r.objective - exact).abs() < 1e-6,
                "{seed}: {} vs exact {exact}",
                r.objective
            );
        }
    }

    #[test]
    fn derive_is_deterministic_and_spread() {
        assert_eq!(derive(4, 0, 1), derive(4, 0, 1));
        assert_ne!(derive(4, 0, 1), derive(4, 1, 1));
        assert_ne!(derive(4, 0, 1), derive(5, 0, 1));
    }
}
