//! # gmip-verify
//!
//! The independent correctness oracle for the `gmip` reproduction. Every
//! other crate shares the `gmip-linalg` float substrate, so differential
//! tests between strategies can pass with a shared bug; this crate breaks
//! the dependency by re-deriving results in exact rational arithmetic:
//!
//! * [`rat`] — `Rat`, an exact rational over `i128` with a vendored
//!   arbitrary-precision fallback (no network, no external crates);
//! * [`simplex`] — an exact Bland's-rule bounded-variable simplex,
//!   generic over [`gmip_linalg::Scalar`];
//! * [`oracle`] — exact branch-and-bound: the true optimum of an instance;
//! * [`certify`] — exact validation of float-engine *certificates*:
//!   incumbent feasibility/objective, weak-duality LP bounds, and Farkas
//!   infeasibility witnesses;
//! * [`metamorphic`] — instance transforms (permutation, scaling, shift,
//!   redundant rows, complementation) whose mapped-back optimum must be
//!   unchanged;
//! * [`fuzz`] — the seeded differential fuzz driver behind
//!   `gmip-verify --fuzz <n>`, with shrinking to a minimal `.mps` repro.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify;
pub mod fuzz;
pub mod metamorphic;
pub mod oracle;
pub mod rat;
pub mod shrink;
pub mod simplex;

pub use certify::{check_certificates, check_incumbent, CertReport};
pub use fuzz::{
    run_fuzz, run_fuzz_with, FuzzConfig, FuzzOutcome, Mismatch, StrategyOutput, StrategyRunner,
};
pub use metamorphic::{transforms, Transformed};
pub use oracle::{solve_oracle, OracleResult, OracleStatus};
pub use rat::{Big, Int, Rat};
pub use shrink::{shrink_instance, write_repro};
pub use simplex::{solve_exact, ExactBound, ExactLp, ExactSolution, ExactStatus};
