//! # gmip-parallel
//!
//! Simulated-cluster parallel branch and bound: the UG-style
//! Supervisor–Worker coordination of the paper's Section 2.3, realized two
//! ways over the same message/worker substrate:
//!
//! * [`supervisor`] — a deterministic **discrete-event** cluster: worker
//!   devices charge simulated time, messages pay a [`comm::NetworkModel`],
//!   and the makespan is a logical clock (experiments E5/E6);
//! * [`threaded`] — the same coordination over real OS threads and
//!   crossbeam channels (true MIMD host parallelism, nondeterministic
//!   scheduling, deterministic answers);
//! * [`worker`] — a worker rank: one simulated device, matrix uploaded
//!   once, warm dual re-solves per assignment (Sections 5.1/5.3);
//! * [`comm`] — typed messages with byte-accurate transfer charging;
//! * [`lease`] — multi-job rank leasing: deterministic carving of the
//!   rank set into per-job shards for the serving front-end;
//! * [`checkpoint`] — distributed consistent snapshots and restart
//!   (Section 2.1's parallel-snapshot problem + UG's checkpointing);
//! * [`chaos`] — deterministic fault injection (seeded crash / drop /
//!   delay / straggler plans) driving the supervisor's recovery protocol:
//!   heartbeat detection, reassignment from the live checkpoint,
//!   exponential-backoff respawn, graceful degradation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod checkpoint;
pub mod comm;
pub mod hierarchy;
pub mod lease;
pub mod supervisor;
pub mod threaded;
pub mod worker;

pub use chaos::{ChaosConfig, FaultPlan, FaultStats};
pub use checkpoint::Checkpoint;
pub use comm::{
    Assignment, Delivery, IncumbentUpdate, LoadSummary, NetworkModel, NodeOutcome, NodeReport,
};
pub use hierarchy::{
    solve_hierarchical, HierResult, HierStats, HierSupervisor, HierarchyConfig, MAX_RANKS,
};
pub use lease::{RankLease, RankPool};
pub use supervisor::{
    solve_parallel, LoadBalance, ParPayload, ParallelConfig, ParallelResult, ParallelStats,
    Supervisor,
};
pub use threaded::{solve_threaded, ThreadedResult};
pub use worker::Worker;
