//! Hierarchical supervisor-of-supervisors tree parallelism.
//!
//! The flat [`crate::supervisor`] is a star: every rank exchanges every
//! node with one coordinator, so root-link traffic grows linearly with the
//! rank count — exactly the scalability wall Section 2.3 attributes to
//! centrally coordinated branch and bound on leadership machines. This
//! module adds the paper's remedy, a *two-tier hierarchy*: ranks are
//! grouped under sub-supervisors (`cluster:256x16` = 256 ranks in groups
//! of 16), and the root exchanges only three kinds of aggregated,
//! frontier-independent messages with the sub-supervisors:
//!
//! * periodic fixed-size [`LoadSummary`]s (one per group per interval);
//! * incumbent flow — a group pushes an [`IncumbentUpdate`] up, the root
//!   broadcasts the improved *value* (never the point) back down;
//! * the steal protocol — an idle group asks the root for work, the root
//!   picks a victim from its summary view with a *seeded* policy, and the
//!   victim ships frontier subtrees over.
//!
//! Everything runs on the same simulated-ns DES clock as the flat
//! cluster, so the whole schedule — including steals — is a pure function
//! of (instance, config, seeds) and reruns are byte-identical.
//!
//! **Fencing invariant.** A subtree leaving its group is moved to
//! `Evaluating` *before* the transfer is scheduled, and only re-enters an
//! active set at its `HEventKind::SubtreeArrive` event. While in
//! transit it is invisible to dispatch, stealing, and pruning on *both*
//! sides, so no node can be evaluated by two groups or dropped between
//! them, regardless of how steal timing interleaves with crashes — the
//! merge order at the root is canonical because every exchange is guarded
//! by its dispatch id and every migration by its transfer id.

use crate::chaos::FaultPlan;
use crate::checkpoint::Checkpoint;
use crate::comm::{
    subtree_bytes, Assignment, Delivery, IncumbentUpdate, LoadSummary, NetworkModel, NodeOutcome,
    NodeReport, INCUMBENT_BROADCAST_BYTES, STEAL_CONTROL_BYTES,
};
use crate::supervisor::{ParPayload, ParallelConfig, ParallelStats};
use crate::worker::Worker;
use gmip_core::MipStatus;
use gmip_lp::{BoundChange, LpResult};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::{names, Event as TraceSpan, Track};
use gmip_tree::{NodeId, NodeState, SearchTree};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Hard ceiling on the simulated rank count. The DES keeps O(ranks) state
/// per event round; widths beyond this are almost certainly a typo
/// (`cluster:1000000x8`) and would OOM the simulation, so strategy parsing
/// rejects them up front.
pub const MAX_RANKS: usize = 4096;

/// Topology and steal-policy knobs of the hierarchical cluster.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Ranks per sub-supervisor group (the last group may be narrower).
    pub fanout: usize,
    /// Seed of the root's steal-victim policy: identical seeds make
    /// identical steal decisions given identical summary views.
    pub steal_seed: u64,
    /// Sub-supervisor → root load-summary cadence, simulated ns.
    pub summary_every_ns: f64,
    /// Most subtrees one steal grant may ship.
    pub steal_max: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            fanout: 8,
            steal_seed: 0x5EED,
            summary_every_ns: 25_000.0,
            steal_max: 4,
        }
    }
}

/// Hierarchy-tier counters (the flat-tier counters live in
/// [`ParallelStats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierStats {
    /// Sub-supervisor groups.
    pub groups: usize,
    /// Configured group width.
    pub fanout: usize,
    /// Messages crossing the root ↔ sub-supervisor links. The hierarchy's
    /// whole point: this grows with the *group* count and the summary
    /// cadence, not with the node count × rank count of the flat star.
    pub root_messages: usize,
    /// Bytes crossing the root links.
    pub root_message_bytes: usize,
    /// Load summaries delivered to the root.
    pub summaries: usize,
    /// Incumbent value broadcasts fanned out by the root.
    pub incumbent_broadcasts: usize,
    /// Steal orders the root granted.
    pub steals: usize,
    /// Frontier subtrees shipped by those grants.
    pub stolen_subtrees: usize,
    /// Steal requests the root denied (no viable victim).
    pub steal_denied: usize,
    /// Subtrees that completed a migration (steal, spread handoff, or
    /// group reassignment) and re-entered an active set.
    pub transit_arrivals: usize,
    /// Determinism audit: how often the most-evaluated node was merged.
    /// Exactly 1 on a fault-free run — steals never duplicate work.
    pub max_evaluations_per_node: u32,
}

/// Result of a hierarchical solve: the flat result shape plus the
/// hierarchy-tier counters.
#[derive(Debug)]
pub struct HierResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Flat-tier statistics (makespan, nodes, messages, faults, tree).
    pub stats: ParallelStats,
    /// Hierarchy-tier statistics.
    pub hier: HierStats,
    /// Snapshots captured during the run (if configured).
    pub snapshots: Vec<Checkpoint>,
}

/// What a scheduled hierarchy DES event means when it fires. `entity` on
/// the event is a rank id for the rank-tier kinds and a group id for the
/// group-tier kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HEventKind {
    /// A worker's report reaches its sub-supervisor (and the merge).
    Deliver {
        /// Exchange id; stale deliveries are ignored.
        dispatch: u64,
    },
    /// The sub-supervisor gave up waiting for an ack on this exchange.
    AckTimeout {
        /// Exchange id it guards.
        dispatch: u64,
    },
    /// A planned fault kills the rank.
    RankCrash,
    /// Missing heartbeats reveal the dead rank to its sub-supervisor.
    RankDetect,
    /// The rank's replacement comes up.
    RankRespawn,
    /// A planned fault kills a whole sub-supervisor.
    SubCrash,
    /// Missing heartbeats reveal the dead sub-supervisor to the root.
    SubDetect,
    /// The sub-supervisor's replacement comes up (its group re-acquires
    /// work by stealing).
    SubRespawn,
    /// A group's summary timer fires (reschedules itself).
    SummaryDue,
    /// A group's load summary reaches the root.
    SummaryArrive {
        /// Open nodes the group reported.
        open: usize,
        /// Best open bound it reported.
        bound: f64,
    },
    /// A group's incumbent update reaches the root.
    IncumbentAtRoot {
        /// Key into the pending-update side table.
        xfer: u64,
    },
    /// The root's incumbent value broadcast reaches a group.
    IncumbentAtGroup {
        /// The broadcast internal-sense value.
        value: f64,
    },
    /// An idle group's steal request reaches the root.
    StealRequestAtRoot {
        /// The requesting group.
        thief: usize,
    },
    /// The root's denial reaches the requesting group.
    StealDenyAtGroup,
    /// The root's steal order reaches the victim group.
    StealOrderAtVictim {
        /// Where the victim must ship subtrees.
        thief: usize,
    },
    /// A migrating subtree batch arrives at its destination group.
    SubtreeArrive {
        /// Key into the in-transit side table.
        xfer: u64,
    },
}

#[derive(Debug, PartialEq)]
struct HEvent {
    time: f64,
    /// Global monotone tie-break, as in the flat supervisor: identical
    /// times resolve in push order, keeping the run deterministic.
    seq: u64,
    entity: usize,
    kind: HEventKind,
}

impl Eq for HEvent {}

impl PartialOrd for HEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.seq.cmp(&other.seq))
    }
}

/// One outstanding sub-supervisor → worker exchange.
#[derive(Debug)]
struct InFlight {
    dispatch: u64,
    node: NodeId,
    report: Option<NodeReport>,
}

/// Liveness bookkeeping for one rank (mirrors the flat supervisor's).
#[derive(Debug, Clone)]
struct RankState {
    alive: bool,
    retired: bool,
    respawn_pending: bool,
    respawns: usize,
    down_since: f64,
}

impl RankState {
    fn fresh() -> Self {
        Self {
            alive: true,
            retired: false,
            respawn_pending: false,
            respawns: 0,
            down_since: 0.0,
        }
    }
}

/// Liveness + protocol state of one sub-supervisor group.
#[derive(Debug, Clone)]
struct GroupState {
    /// The sub-supervisor process is up.
    alive: bool,
    respawn_pending: bool,
    respawns: usize,
    down_since: f64,
    /// Best incumbent *value* this group knows (internal maximize sense).
    /// Groups never hold the point — only the root does.
    incumbent: f64,
    /// A steal request or granted transfer is outstanding.
    steal_pending: bool,
    /// No new steal request before this time (set by a denial).
    steal_backoff_until: f64,
    /// Consecutive denials since the last granted steal; drives the
    /// exponential request backoff so an idle group doesn't spam the root
    /// for the whole tail of the solve.
    deny_streak: u32,
    /// The `(open, best_bound)` the group last shipped to the root.
    /// Summaries are delta-compressed: an unchanged load report is not
    /// resent, so a drained group goes silent after one final `open = 0`.
    last_summary: Option<(usize, f64)>,
}

impl GroupState {
    fn fresh() -> Self {
        Self {
            alive: true,
            respawn_pending: false,
            respawns: 0,
            down_since: 0.0,
            incumbent: f64::NEG_INFINITY,
            steal_pending: false,
            steal_backoff_until: 0.0,
            deny_streak: 0,
            last_summary: None,
        }
    }
}

/// SplitMix64: the root's stateless steal-victim hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The two-tier discrete-event supervisor.
#[derive(Debug)]
pub struct HierSupervisor {
    instance: MipInstance,
    cfg: ParallelConfig,
    hcfg: HierarchyConfig,
    groups: usize,
    tree: SearchTree<ParPayload>,
    workers: Vec<Worker>,
    ranks: Vec<RankState>,
    lost_busy_ns: Vec<f64>,
    in_flight: Vec<Option<InFlight>>,
    gstate: Vec<GroupState>,
    /// The root's (lagged) view of each group: last summarized
    /// (open, best bound).
    root_view: Vec<(usize, f64)>,
    events: BinaryHeap<Reverse<HEvent>>,
    next_seq: u64,
    next_dispatch: u64,
    next_xfer: u64,
    now: f64,
    /// The only place a feasible *point* lives above the workers.
    root_incumbent: Option<(f64, Vec<f64>)>,
    /// Migrating subtree batches: xfer id → (destination group, nodes).
    in_transit: BTreeMap<u64, (usize, Vec<NodeId>)>,
    /// Incumbent updates on the wire: xfer id → (from group, value, point).
    inc_updates: BTreeMap<u64, (usize, f64, Vec<f64>)>,
    /// Group → root incumbent updates not yet merged; termination must
    /// wait for them or the final objective could be stale.
    pending_root_updates: usize,
    steal_counter: u64,
    /// Determinism audit: merges per node id.
    eval_counts: Vec<u32>,
    stats: ParallelStats,
    hier: HierStats,
    snapshots: Vec<Checkpoint>,
    last_checkpoint: Option<Checkpoint>,
    plan: Option<FaultPlan>,
    /// Simulated time the root first held an incumbent (E12's
    /// time-to-first-incumbent; the `heur.first_incumbent_ns` gauge).
    first_incumbent_ns: Option<f64>,
}

impl HierSupervisor {
    /// Builds the hierarchy and schedules planned faults plus the first
    /// round of summary timers.
    pub fn new(
        instance: MipInstance,
        cfg: ParallelConfig,
        hcfg: HierarchyConfig,
    ) -> LpResult<Self> {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(hcfg.fanout >= 1, "need at least one rank per group");
        assert!(
            cfg.workers <= MAX_RANKS,
            "rank count {} exceeds MAX_RANKS {MAX_RANKS}",
            cfg.workers
        );
        let groups = cfg.workers.div_ceil(hcfg.fanout);
        let mut workers = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            workers.push(
                Worker::new_with_backend(
                    id,
                    &instance,
                    cfg.gpu_cost.clone(),
                    cfg.gpu_mem,
                    cfg.lp.clone(),
                    cfg.int_tol,
                    cfg.batched_lanes,
                    cfg.first_order_lanes,
                    cfg.backend,
                )?
                .with_propagation(cfg.propagate, cfg.heuristic_period),
            );
        }
        let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
        let plan = cfg
            .chaos
            .clone()
            .map(|chaos| FaultPlan::new(chaos, cfg.workers));
        let mut sup = Self {
            tree: SearchTree::with_root(ParPayload::default(), node_bytes),
            ranks: vec![RankState::fresh(); cfg.workers],
            lost_busy_ns: vec![0.0; cfg.workers],
            in_flight: (0..cfg.workers).map(|_| None).collect(),
            gstate: vec![GroupState::fresh(); groups],
            root_view: vec![(0, f64::NEG_INFINITY); groups],
            workers,
            groups,
            events: BinaryHeap::new(),
            next_seq: 0,
            next_dispatch: 0,
            next_xfer: 0,
            now: 0.0,
            root_incumbent: None,
            in_transit: BTreeMap::new(),
            inc_updates: BTreeMap::new(),
            pending_root_updates: 0,
            steal_counter: 0,
            eval_counts: Vec::new(),
            stats: ParallelStats::default(),
            hier: HierStats {
                groups,
                fanout: hcfg.fanout,
                ..HierStats::default()
            },
            snapshots: Vec::new(),
            last_checkpoint: None,
            plan,
            first_incumbent_ns: None,
            instance,
            cfg,
            hcfg,
        };
        if let Some(plan) = &sup.plan {
            let rank_crashes = plan.crash_schedule().to_vec();
            let sub_crashes = plan.sub_crash_schedule(groups);
            let chaos = plan.cfg().clone();
            for (time, worker) in rank_crashes {
                sup.push_event(time, worker, HEventKind::RankCrash);
            }
            for (time, group) in sub_crashes {
                sup.push_event(time, group, HEventKind::SubCrash);
            }
            if let Some(g) = chaos.kill_group {
                if g < groups {
                    for w in sup.ranks_of(g) {
                        sup.push_event(chaos.kill_group_at_ns, w, HEventKind::RankCrash);
                    }
                }
            }
        }
        for g in 0..groups {
            sup.push_event(sup.hcfg.summary_every_ns, g, HEventKind::SummaryDue);
        }
        // Warm-start entry point: a pooled solution seeds the root *and*
        // every group's pruning value, exactly like the flat cluster.
        if let Some(seed) = sup.cfg.seed_solution.clone() {
            let mut p = seed;
            for j in sup.instance.integral_indices() {
                if let Some(v) = p.get_mut(j) {
                    *v = v.round();
                }
            }
            if sup.instance.is_integer_feasible(&p, 1e-6) {
                let source = sup.instance.objective_value(&p);
                let internal = match sup.instance.objective {
                    Objective::Maximize => source,
                    Objective::Minimize => -source,
                };
                sup.root_incumbent = Some((internal, p));
                sup.first_incumbent_ns = Some(0.0);
                for g in &mut sup.gstate {
                    g.incumbent = internal;
                }
                sup.stats.metrics.incr(names::BB_WARM_SEEDS, 1.0);
            }
        }
        if sup.cfg.warm_start {
            if let Some(b) = sup.cfg.root_basis.clone() {
                let root = sup.tree.root();
                sup.tree.node_mut(root).data.warm_basis = Some(b);
            }
        }
        Ok(sup)
    }

    fn push_event(&mut self, time: f64, entity: usize, kind: HEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(HEvent {
            time,
            seq,
            entity,
            kind,
        }));
    }

    fn group_of(&self, rank: usize) -> usize {
        rank / self.hcfg.fanout
    }

    fn ranks_of(&self, group: usize) -> std::ops::Range<usize> {
        let lo = group * self.hcfg.fanout;
        lo..((group + 1) * self.hcfg.fanout).min(self.cfg.workers)
    }

    fn to_source(&self, internal: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => internal,
            Objective::Minimize => -internal,
        }
    }

    fn root_slow(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.cfg().root_slow_factor)
            .unwrap_or(1.0)
    }

    /// Charges one message on a root ↔ sub-supervisor link and returns its
    /// transfer time. The root link is a *reliable* control channel (it
    /// never consumes the per-message fate stream, keeping the worker-tier
    /// fates aligned with the flat cluster) but a chaos plan can straggle
    /// it via `root_slow_factor`.
    fn ship_root(&mut self, bytes: usize) -> f64 {
        self.hier.root_messages += 1;
        self.hier.root_message_bytes += bytes;
        self.stats.messages += 1;
        self.stats.message_bytes += bytes;
        self.cfg.network.transfer_ns(bytes) * self.root_slow()
    }

    /// Moves `nodes` (already `Evaluating`) onto the wire toward group
    /// `dest` over `hops` root-link messages, retagging their partition.
    fn ship_subtrees(&mut self, dest: usize, nodes: Vec<NodeId>, hops: usize) {
        debug_assert!(!nodes.is_empty());
        let mut bytes = 0usize;
        for &id in &nodes {
            self.tree.node_mut(id).data.partition = dest;
            bytes += subtree_bytes(&self.tree.node(id).data.bounds);
        }
        let mut transfer = 0.0;
        for _ in 0..hops {
            transfer += self.ship_root(bytes);
        }
        let xfer = self.next_xfer;
        self.next_xfer += 1;
        self.in_transit.insert(xfer, (dest, nodes));
        self.push_event(
            self.now + transfer,
            dest,
            HEventKind::SubtreeArrive { xfer },
        );
    }

    /// Dispatches work inside every group, then lets starved groups ask
    /// the root for steals. Returns how many evaluations started.
    fn dispatch(&mut self) -> LpResult<usize> {
        // Bucket the open frontier by owning group once per round; picks
        // below are content-ordered, so removal order cannot leak in.
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); self.groups];
        for &id in self.tree.active_ids() {
            buckets[self.tree.node(id).data.partition].push(id);
        }
        let mut inflight_per_group = vec![0usize; self.groups];
        for (w, f) in self.in_flight.iter().enumerate() {
            if f.is_some() {
                inflight_per_group[self.group_of(w)] += 1;
            }
        }
        let mut started = 0;
        for w in 0..self.workers.len() {
            let g = self.group_of(w);
            if !self.gstate[g].alive
                || !self.ranks[w].alive
                || self.in_flight[w].is_some()
                || self.workers[w].busy_until > self.now
            {
                continue;
            }
            let width = self.ranks_of(g).len();
            let ramping = self.cfg.ramp_up && (buckets[g].len() + inflight_per_group[g]) < width;
            let pick = if buckets[g].is_empty() {
                None
            } else if ramping {
                // Breadth-first widening inside the group.
                buckets[g]
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        self.tree
                            .node(a)
                            .depth
                            .cmp(&self.tree.node(b).depth)
                            .then(a.cmp(&b))
                    })
                    .map(|(i, _)| i)
            } else {
                // Best bound first.
                buckets[g]
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        self.tree
                            .node(b)
                            .bound
                            .partial_cmp(&self.tree.node(a).bound)
                            .expect("bounds are never NaN")
                            .then(a.cmp(&b))
                    })
                    .map(|(i, _)| i)
            };
            let Some(i) = pick else {
                continue;
            };
            let id = buckets[g].swap_remove(i);
            inflight_per_group[g] += 1;
            self.tree.begin_evaluation(id);
            let node = self.tree.node(id);
            let assignment = Assignment {
                node_id: id,
                bounds: node.data.bounds.clone(),
                warm_basis: if self.cfg.warm_start {
                    node.data.warm_basis.clone()
                } else {
                    None
                },
                incumbent: self.gstate[g].incumbent,
            };
            let dispatch = self.next_dispatch;
            self.next_dispatch += 1;
            let a_bytes = assignment.bytes();
            self.stats.messages += 1;
            self.stats.message_bytes += a_bytes;
            self.stats
                .metrics
                .incr(names::CLUSTER_NODES_DISPATCHED, 1.0);
            started += 1;
            let net: NetworkModel = self.cfg.network;
            let ack_ns = self
                .plan
                .as_ref()
                .map(|p| p.cfg().ack_timeout_ns)
                .unwrap_or(f64::INFINITY);
            // Sub-supervisor → worker leg (intra-group: the unmodified
            // network model, the unmodified fate stream).
            let Delivery::Delivered {
                transfer_ns: send_ns,
                injected_ns: send_delay,
            } = net.ship(a_bytes, self.plan.as_mut())
            else {
                self.stats.faults.drops += 1;
                let (t0, nid) = (self.now, id as u64);
                gmip_trace::record(|| {
                    TraceSpan::instant(Track::cluster_rank(0), "fault.drop", t0)
                        .arg("node", nid)
                        .arg("leg", "assignment")
                });
                self.in_flight[w] = Some(InFlight {
                    dispatch,
                    node: id,
                    report: None,
                });
                self.push_event(self.now + ack_ns, w, HEventKind::AckTimeout { dispatch });
                continue;
            };
            if send_delay > 0.0 {
                self.stats.faults.delays += 1;
            }
            let eval_start = self.now + send_ns;
            let slow = self
                .plan
                .as_ref()
                .map(|p| p.slowdown(w, eval_start))
                .unwrap_or(1.0);
            if slow > 1.0 {
                self.stats.faults.straggles += 1;
            }
            self.workers[w].slowdown = slow;
            let report = self.workers[w].evaluate(&assignment)?;
            let r_bytes = report.bytes();
            self.stats.messages += 1;
            self.stats.message_bytes += r_bytes;
            let rank = Track::cluster_rank((w + 1) as u32);
            let (t0, eval_ns, nid) = (self.now, report.eval_ns, id as u64);
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "recv", send_ns, t0)
                    .arg("node", nid)
                    .arg("bytes", a_bytes as u64)
                    .arg("delayed_ns", send_delay)
            });
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "eval", eval_ns, t0 + send_ns).arg("node", nid)
            });
            // Worker → sub-supervisor leg.
            match net.ship(r_bytes, self.plan.as_mut()) {
                Delivery::Delivered {
                    transfer_ns: reply_ns,
                    injected_ns: reply_delay,
                } => {
                    if reply_delay > 0.0 {
                        self.stats.faults.delays += 1;
                    }
                    let done = self.now + send_ns + report.eval_ns + reply_ns;
                    gmip_trace::record(|| {
                        TraceSpan::complete(rank, "send", reply_ns, t0 + send_ns + eval_ns)
                            .arg("node", nid)
                            .arg("bytes", r_bytes as u64)
                            .arg("delayed_ns", reply_delay)
                    });
                    self.workers[w].busy_until = done;
                    self.in_flight[w] = Some(InFlight {
                        dispatch,
                        node: id,
                        report: Some(report),
                    });
                    self.push_event(done, w, HEventKind::Deliver { dispatch });
                }
                Delivery::Dropped => {
                    self.stats.faults.drops += 1;
                    let busy = self.now + send_ns + report.eval_ns;
                    gmip_trace::record(|| {
                        TraceSpan::instant(rank, "fault.drop", t0 + send_ns + eval_ns)
                            .arg("node", nid)
                            .arg("leg", "report")
                    });
                    self.workers[w].busy_until = busy;
                    self.in_flight[w] = Some(InFlight {
                        dispatch,
                        node: id,
                        report: Some(report),
                    });
                    self.push_event(
                        (self.now + ack_ns).max(busy),
                        w,
                        HEventKind::AckTimeout { dispatch },
                    );
                }
            }
        }
        // A group whose frontier ran dry while it still has an idle rank
        // asks the root for work — unless a request or an inbound transfer
        // is already pending, or it is inside a denial backoff.
        if self.groups >= 2 {
            for g in 0..self.groups {
                let gs = &self.gstate[g];
                if !gs.alive
                    || gs.steal_pending
                    || self.now < gs.steal_backoff_until
                    || !buckets[g].is_empty()
                {
                    continue;
                }
                let idle = self.ranks_of(g).any(|w| {
                    self.ranks[w].alive
                        && self.in_flight[w].is_none()
                        && self.workers[w].busy_until <= self.now
                });
                if !idle || self.in_transit.values().any(|(d, _)| *d == g) {
                    continue;
                }
                self.gstate[g].steal_pending = true;
                let transfer = self.ship_root(STEAL_CONTROL_BYTES);
                let ts = self.now;
                gmip_trace::record(|| {
                    TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_STEAL_REQUEST, ts)
                        .arg("thief", g as u64)
                });
                self.push_event(
                    self.now + transfer,
                    0,
                    HEventKind::StealRequestAtRoot { thief: g },
                );
            }
        }
        Ok(started)
    }

    /// A group whose ranks are *all* permanently retired can never make
    /// progress again (sub-supervisor respawns are always granted, rank
    /// retirements are forever): routing work there would deadlock the
    /// solve, so every migration path checks this first.
    fn group_retired(&self, g: usize) -> bool {
        self.ranks_of(g).all(|w| self.ranks[w].retired)
    }

    /// Returns a lost in-flight subproblem to its group's open set.
    fn reassign(&mut self, node: NodeId) {
        if self.tree.reopen(node) {
            self.stats.faults.reassignments += 1;
            debug_assert!(
                self.last_checkpoint
                    .as_ref()
                    .is_none_or(|c| c.covers(&self.tree.node(node).data.bounds)),
                "recovery invariant: the last checkpoint must cover every lost subproblem"
            );
            let (ts, nid) = (self.now, node as u64);
            gmip_trace::record(|| {
                TraceSpan::instant(Track::cluster_rank(0), "recovery.reassign", ts).arg("node", nid)
            });
        }
    }

    fn on_deliver(&mut self, worker: usize, dispatch: u64) {
        let g = self.group_of(worker);
        if !self.ranks[worker].alive || !self.gstate[g].alive {
            return; // rank or its sub-supervisor died with the report in transit
        }
        if self.in_flight[worker]
            .as_ref()
            .is_none_or(|f| f.dispatch != dispatch)
        {
            return; // stale delivery of a written-off exchange
        }
        let inf = self.in_flight[worker].take().expect("checked above");
        let report = inf.report.expect("delivered exchanges carry a report");
        self.process(worker, report);
    }

    fn on_ack_timeout(&mut self, worker: usize, dispatch: u64) {
        if self.in_flight[worker]
            .as_ref()
            .is_none_or(|f| f.dispatch != dispatch)
        {
            return;
        }
        let inf = self.in_flight[worker].take().expect("checked above");
        self.reassign(inf.node);
    }

    fn on_rank_crash(&mut self, worker: usize) {
        if !self.ranks[worker].alive || self.ranks[worker].retired {
            return;
        }
        self.ranks[worker].alive = false;
        self.ranks[worker].down_since = self.now;
        self.stats.faults.crashes += 1;
        let ts = self.now;
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank((worker + 1) as u32), "fault.crash", ts)
        });
        let hb = self
            .plan
            .as_ref()
            .expect("crash events imply a plan")
            .cfg()
            .heartbeat_timeout_ns;
        self.push_event(self.now + hb, worker, HEventKind::RankDetect);
    }

    fn on_rank_detect(&mut self, worker: usize) {
        if let Some(inf) = self.in_flight[worker].take() {
            self.reassign(inf.node);
        }
        self.last_checkpoint = Some(self.snapshot());
        let max_respawns = self
            .plan
            .as_ref()
            .expect("detect events imply a plan")
            .cfg()
            .max_respawns;
        let backoff_base = self.plan.as_ref().expect("plan").cfg().respawn_backoff_ns;
        let others_alive = (0..self.ranks.len())
            .filter(|&o| o != worker)
            .any(|o| self.ranks[o].alive || self.ranks[o].respawn_pending);
        if self.ranks[worker].respawns < max_respawns || !others_alive {
            let exp = self.ranks[worker].respawns.min(20) as u32;
            let backoff = backoff_base * f64::from(1u32 << exp.min(20));
            self.ranks[worker].respawn_pending = true;
            self.push_event(self.now + backoff, worker, HEventKind::RankRespawn);
        } else {
            self.ranks[worker].retired = true;
            self.stats.faults.degraded_ranks += 1;
            let ts = self.now;
            gmip_trace::record(|| {
                TraceSpan::instant(
                    Track::cluster_rank((worker + 1) as u32),
                    "recovery.degrade",
                    ts,
                )
            });
            // If that retired the group's last rank, its frontier would
            // starve forever: ship it to groups that still have ranks.
            let g = self.group_of(worker);
            if self.ranks_of(g).all(|w| self.ranks[w].retired) {
                self.evacuate_group(g);
            }
        }
    }

    fn on_rank_respawn(&mut self, worker: usize) -> LpResult<()> {
        self.ranks[worker].respawn_pending = false;
        self.lost_busy_ns[worker] += self.workers[worker].busy_ns;
        let mut fresh = Worker::new_with_backend(
            worker,
            &self.instance,
            self.cfg.gpu_cost.clone(),
            self.cfg.gpu_mem,
            self.cfg.lp.clone(),
            self.cfg.int_tol,
            self.cfg.batched_lanes,
            self.cfg.first_order_lanes,
            self.cfg.backend,
        )?
        .with_propagation(self.cfg.propagate, self.cfg.heuristic_period);
        fresh.busy_until = self.now;
        self.workers[worker] = fresh;
        self.ranks[worker].alive = true;
        self.ranks[worker].respawns += 1;
        self.stats.faults.respawns += 1;
        let (t0, dur) = (
            self.ranks[worker].down_since,
            self.now - self.ranks[worker].down_since,
        );
        let lane = Track::cluster_rank((worker + 1) as u32);
        gmip_trace::record(|| TraceSpan::complete(lane, "down", dur, t0));
        let ts = self.now;
        gmip_trace::record(|| TraceSpan::instant(lane, "recovery.respawn", ts));
        Ok(())
    }

    /// Ships every open subproblem group `g` owns (plus any written-off
    /// in-flight work) round-robin to groups that can still make progress.
    /// Falls back to leaving the nodes in place when no such group exists —
    /// the pending respawn will revive `g` and its frontier with it.
    fn evacuate_group(&mut self, g: usize) {
        // Write off the group's outstanding exchanges first: the subtree
        // is the unit of recovery, the exchange results are gone.
        let mut lost: Vec<NodeId> = Vec::new();
        for w in self.ranks_of(g) {
            if let Some(inf) = self.in_flight[w].take() {
                lost.push(inf.node);
            }
        }
        let mut open: Vec<NodeId> = self
            .tree
            .active_ids()
            .iter()
            .copied()
            .filter(|&id| self.tree.node(id).data.partition == g)
            .collect();
        open.sort_unstable();
        // Active nodes enter transit through the same fence as steals.
        for &id in &open {
            self.tree.begin_evaluation(id);
        }
        lost.extend(open);
        lost.sort_unstable();
        if lost.is_empty() {
            return;
        }
        // Any group that still has a rank qualifies: a dead sub-supervisor
        // will be respawned (always granted), and the arrival path re-routes
        // if it is still down when the batch lands.
        let dests: Vec<usize> = (0..self.groups)
            .filter(|&o| o != g && !self.group_retired(o))
            .collect();
        if dests.is_empty() {
            // Nobody can adopt the work: reopen locally and wait for the
            // group's own recovery.
            for id in lost {
                self.reassign(id);
            }
            return;
        }
        self.stats.faults.group_reassigned_subtrees += lost.len();
        let (ts, n) = (self.now, lost.len() as u64);
        gmip_trace::record(|| {
            TraceSpan::instant(
                Track::cluster_rank(0),
                names::SPAN_RECOVERY_GROUP_REASSIGN,
                ts,
            )
            .arg("group", g as u64)
            .arg("subtrees", n)
        });
        let mut batches: Vec<Vec<NodeId>> = vec![Vec::new(); dests.len()];
        for (i, id) in lost.into_iter().enumerate() {
            batches[i % dests.len()].push(id);
        }
        for (dest, batch) in dests.into_iter().zip(batches) {
            if !batch.is_empty() {
                // One hop: the root already holds the covering checkpoint.
                self.ship_subtrees(dest, batch, 1);
            }
        }
    }

    fn on_sub_crash(&mut self, g: usize) {
        if !self.gstate[g].alive {
            return; // the planned crash hit an already-dead sub-supervisor
        }
        self.gstate[g].alive = false;
        self.gstate[g].down_since = self.now;
        self.stats.faults.sub_crashes += 1;
        let ts = self.now;
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_FAULT_SUB_CRASH, ts)
                .arg("group", g as u64)
        });
        let hb = self
            .plan
            .as_ref()
            .expect("sub-crash events imply a plan")
            .cfg()
            .heartbeat_timeout_ns;
        self.push_event(self.now + hb, g, HEventKind::SubDetect);
    }

    /// The root notices the dead sub-supervisor: every subtree the group
    /// owned — open or in flight under it — is shipped to survivors, and a
    /// replacement sub-supervisor is scheduled (always granted: a group is
    /// infrastructure, not a device, so it has no retirement path; it
    /// comes back empty and re-acquires work by stealing).
    fn on_sub_detect(&mut self, g: usize) {
        self.last_checkpoint = Some(self.snapshot());
        self.root_view[g] = (0, f64::NEG_INFINITY);
        self.gstate[g].steal_pending = false;
        self.evacuate_group(g);
        let backoff_base = self
            .plan
            .as_ref()
            .expect("sub-detect events imply a plan")
            .cfg()
            .respawn_backoff_ns;
        let exp = self.gstate[g].respawns.min(20) as u32;
        let backoff = backoff_base * f64::from(1u32 << exp.min(20));
        self.gstate[g].respawn_pending = true;
        self.push_event(self.now + backoff, g, HEventKind::SubRespawn);
    }

    fn on_sub_respawn(&mut self, g: usize) {
        self.gstate[g].respawn_pending = false;
        self.gstate[g].alive = true;
        self.gstate[g].respawns += 1;
        self.gstate[g].deny_streak = 0;
        // The replacement must re-announce its (empty) load: drop the
        // delta-compression memory so the next due tick ships a summary.
        self.gstate[g].last_summary = None;
        self.stats.faults.sub_respawns += 1;
        // The replacement knows nothing: it re-learns the incumbent from
        // the root's next broadcast — but the root can tell it the current
        // value right here, in the respawn handshake.
        if let Some((v, _)) = &self.root_incumbent {
            self.gstate[g].incumbent = *v;
        }
        let (t0, dur) = (
            self.gstate[g].down_since,
            self.now - self.gstate[g].down_since,
        );
        gmip_trace::record(|| {
            TraceSpan::complete(Track::cluster_rank(0), "sub.down", dur, t0).arg("group", g as u64)
        });
        let ts = self.now;
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_RECOVERY_SUB_RESPAWN, ts)
                .arg("group", g as u64)
        });
    }

    fn on_summary_due(&mut self, g: usize) {
        // The timer always re-arms, even through an outage — the group's
        // replacement resumes the cadence without root involvement.
        self.push_event(
            self.now + self.hcfg.summary_every_ns,
            g,
            HEventKind::SummaryDue,
        );
        if !self.gstate[g].alive {
            return;
        }
        let mut open = 0usize;
        let mut bound = f64::NEG_INFINITY;
        for &id in self.tree.active_ids() {
            let n = self.tree.node(id);
            if n.data.partition == g {
                open += 1;
                bound = bound.max(n.bound);
            }
        }
        // Delta compression: ship only when the load report changed since
        // the last one. Idle groups fall silent (the root's view of them is
        // already exact), so root traffic follows *activity*, not wall time.
        if self.gstate[g].last_summary == Some((open, bound)) {
            return;
        }
        self.gstate[g].last_summary = Some((open, bound));
        let summary = LoadSummary {
            group: g,
            open,
            best_bound: bound,
        };
        let transfer = self.ship_root(summary.bytes());
        self.push_event(
            self.now + transfer,
            g,
            HEventKind::SummaryArrive { open, bound },
        );
    }

    fn on_summary_arrive(&mut self, g: usize, open: usize, bound: f64) {
        self.hier.summaries += 1;
        self.root_view[g] = (open, bound);
        let (ts, o) = (self.now, open as u64);
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_SUMMARY, ts)
                .arg("group", g as u64)
                .arg("open", o)
        });
    }

    fn on_incumbent_at_root(&mut self, xfer: u64) {
        self.pending_root_updates -= 1;
        let Some((from, value, x)) = self.inc_updates.remove(&xfer) else {
            return;
        };
        let best = self.root_incumbent.as_ref().map(|(v, _)| *v);
        if best.is_none_or(|b| value > b) {
            self.root_incumbent = Some((value, x));
            self.first_incumbent_ns.get_or_insert(self.now);
            let (ts, obj) = (self.now, self.to_source(value));
            gmip_trace::record(|| {
                TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_INCUMBENT, ts)
                    .arg("objective", obj)
                    .arg("from", from as u64)
            });
            // Fan the improved *value* out to every other live group.
            for g in 0..self.groups {
                if g == from || !self.gstate[g].alive {
                    continue;
                }
                self.hier.incumbent_broadcasts += 1;
                let transfer = self.ship_root(INCUMBENT_BROADCAST_BYTES);
                self.push_event(
                    self.now + transfer,
                    g,
                    HEventKind::IncumbentAtGroup { value },
                );
            }
        }
    }

    fn on_incumbent_at_group(&mut self, g: usize, value: f64) {
        if !self.gstate[g].alive || value <= self.gstate[g].incumbent {
            return;
        }
        self.gstate[g].incumbent = value;
        // Group-scoped pruning: only the frontier this group owns — other
        // groups prune when their own broadcast arrives, so pruning power
        // honestly lags the root-link latency.
        let tol = self.cfg.prune_tol;
        self.tree
            .prune_dominated_where(value, tol, |n| n.data.partition == g);
    }

    /// The root arbitrates a steal: pick a victim from the summary view
    /// with the seeded policy, or deny.
    fn on_steal_request(&mut self, thief: usize) {
        let mut cands: Vec<usize> = (0..self.groups)
            .filter(|&g| {
                g != thief
                    && self.gstate[g].alive
                    && !self.group_retired(g)
                    && self.root_view[g].0 >= 2
            })
            .collect();
        cands.sort_by(|&a, &b| {
            self.root_view[b]
                .0
                .cmp(&self.root_view[a].0)
                .then(a.cmp(&b))
        });
        if cands.is_empty() || !self.gstate[thief].alive {
            let transfer = self.ship_root(STEAL_CONTROL_BYTES);
            self.push_event(self.now + transfer, thief, HEventKind::StealDenyAtGroup);
            return;
        }
        // Seeded choice among the top-2 most-loaded candidates: determinism
        // with a pinch of decorrelation so thieves don't all mob one victim.
        let pick =
            splitmix64(self.hcfg.steal_seed ^ self.steal_counter) as usize % cands.len().min(2);
        self.steal_counter += 1;
        let victim = cands[pick];
        let transfer = self.ship_root(STEAL_CONTROL_BYTES);
        let (ts, v) = (self.now, victim as u64);
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_STEAL_GRANT, ts)
                .arg("thief", thief as u64)
                .arg("victim", v)
        });
        self.push_event(
            self.now + transfer,
            victim,
            HEventKind::StealOrderAtVictim { thief },
        );
    }

    fn deny_steal(&mut self, thief: usize) {
        let transfer = self.ship_root(STEAL_CONTROL_BYTES);
        self.push_event(self.now + transfer, thief, HEventKind::StealDenyAtGroup);
    }

    fn on_steal_deny(&mut self, g: usize) {
        self.gstate[g].steal_pending = false;
        self.hier.steal_denied += 1;
        // Exponential backoff on consecutive denials (capped at 1024x the
        // summary period): a starved group probes the root a logarithmic
        // number of times per idle stretch instead of once per tick.
        let shift = self.gstate[g].deny_streak.min(10);
        self.gstate[g].steal_backoff_until =
            self.now + self.hcfg.summary_every_ns * (1u64 << shift) as f64;
        self.gstate[g].deny_streak = self.gstate[g].deny_streak.saturating_add(1);
        let ts = self.now;
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_STEAL_DENY, ts)
                .arg("thief", g as u64)
        });
    }

    /// The steal order lands on the victim: ship up to `steal_max`
    /// shallowest frontier subtrees to the thief (shallow nodes root the
    /// largest unexplored subtrees, the classic steal-half heuristic), or
    /// bounce a denial if the summary view was stale.
    fn on_steal_order(&mut self, victim: usize, thief: usize) {
        if !self.gstate[victim].alive {
            self.deny_steal(thief);
            return;
        }
        let mut owned: Vec<NodeId> = self
            .tree
            .active_ids()
            .iter()
            .copied()
            .filter(|&id| self.tree.node(id).data.partition == victim)
            .collect();
        if owned.len() < 2 {
            self.deny_steal(thief);
            return;
        }
        owned.sort_by(|&a, &b| {
            self.tree
                .node(a)
                .depth
                .cmp(&self.tree.node(b).depth)
                .then(a.cmp(&b))
        });
        let n = (owned.len() / 2).max(1).min(self.hcfg.steal_max);
        let batch: Vec<NodeId> = owned.into_iter().take(n).collect();
        for &id in &batch {
            self.tree.begin_evaluation(id); // the fence: out of the active set
        }
        self.hier.steals += 1;
        self.hier.stolen_subtrees += batch.len();
        let (ts, k) = (self.now, batch.len() as u64);
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank(0), names::SPAN_HIER_HANDOFF, ts)
                .arg("from", victim as u64)
                .arg("to", thief as u64)
                .arg("subtrees", k)
        });
        // Two hops: victim → root → thief.
        self.ship_subtrees(thief, batch, 2);
    }

    fn on_subtree_arrive(&mut self, g: usize, xfer: u64) {
        let Some((dest, nodes)) = self.in_transit.remove(&xfer) else {
            return;
        };
        debug_assert_eq!(dest, g);
        if !self.gstate[g].alive || self.group_retired(g) {
            // The destination died (or lost its last rank for good) while
            // the batch was on the wire: re-route to the first group that
            // can take it, or hold for the respawn.
            let alt = (0..self.groups)
                .find(|&o| o != g && self.gstate[o].alive && !self.group_retired(o))
                .or_else(|| (0..self.groups).find(|&o| o != g && !self.group_retired(o)));
            match alt {
                Some(o) => {
                    self.ship_subtrees(o, nodes, 1);
                }
                None => {
                    // Whole hierarchy dark: park the batch until the
                    // respawn backoff has revived someone.
                    let xfer2 = self.next_xfer;
                    self.next_xfer += 1;
                    self.in_transit.insert(xfer2, (g, nodes));
                    self.push_event(
                        self.now + self.hcfg.summary_every_ns,
                        g,
                        HEventKind::SubtreeArrive { xfer: xfer2 },
                    );
                }
            }
            return;
        }
        self.gstate[g].steal_pending = false;
        self.gstate[g].deny_streak = 0; // fed: probe eagerly again next time
        self.hier.transit_arrivals += nodes.len();
        for id in nodes {
            debug_assert_eq!(self.tree.node(id).data.partition, g);
            self.tree.reopen(id);
        }
    }

    /// Processes one merged report (counted toward the determinism audit).
    fn process(&mut self, worker: usize, report: NodeReport) {
        self.stats.nodes += 1;
        self.stats.lp_iterations += report.lp_iterations;
        let id = report.node_id;
        if id >= self.eval_counts.len() {
            self.eval_counts.resize(id + 1, 0);
        }
        self.eval_counts[id] += 1;
        let g = self.group_of(worker);
        // A fix-and-propagate candidate rides along with any outcome and
        // enters the group's incumbent path (scoped prune now, root push for
        // the cluster-wide broadcast) before the node itself is settled.
        if let Some((internal, x)) = report.heur {
            if internal > self.gstate[g].incumbent {
                self.gstate[g].incumbent = internal;
                let mut p = x;
                for j in self.instance.integral_indices() {
                    p[j] = p[j].round();
                }
                let tol = self.cfg.prune_tol;
                self.tree
                    .prune_dominated_where(internal, tol, |n| n.data.partition == g);
                let upd = IncumbentUpdate {
                    value: internal,
                    x: p.clone(),
                };
                let transfer = self.ship_root(upd.bytes());
                let xfer = self.next_xfer;
                self.next_xfer += 1;
                self.inc_updates.insert(xfer, (g, internal, p));
                self.pending_root_updates += 1;
                self.push_event(self.now + transfer, 0, HEventKind::IncumbentAtRoot { xfer });
            }
        }
        match report.outcome {
            NodeOutcome::Infeasible => {
                self.tree
                    .settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
            }
            NodeOutcome::Pruned { bound } => {
                self.tree.settle(id, NodeState::Pruned, bound);
            }
            NodeOutcome::IntegerFeasible { internal, x } => {
                self.tree.settle(id, NodeState::Feasible, internal);
                if internal > self.gstate[g].incumbent {
                    self.gstate[g].incumbent = internal;
                    let mut p = x;
                    for j in self.instance.integral_indices() {
                        p[j] = p[j].round();
                    }
                    // Scoped prune now; the rest of the cluster prunes when
                    // the root's broadcast reaches it.
                    let tol = self.cfg.prune_tol;
                    self.tree
                        .prune_dominated_where(internal, tol, |n| n.data.partition == g);
                    // Push the update (value + point) to the root.
                    let upd = IncumbentUpdate {
                        value: internal,
                        x: p.clone(),
                    };
                    let transfer = self.ship_root(upd.bytes());
                    let xfer = self.next_xfer;
                    self.next_xfer += 1;
                    self.inc_updates.insert(xfer, (g, internal, p));
                    self.pending_root_updates += 1;
                    self.push_event(self.now + transfer, 0, HEventKind::IncumbentAtRoot { xfer });
                }
            }
            NodeOutcome::Branch {
                bound,
                var,
                value,
                basis,
            } => {
                if id == self.tree.root() && self.stats.root_basis.is_none() {
                    self.stats.root_basis = basis.clone();
                }
                if bound <= self.gstate[g].incumbent + self.cfg.prune_tol {
                    self.tree.settle(id, NodeState::Pruned, bound);
                    return;
                }
                let parent = self.tree.node(id);
                let parent_partition = parent.data.partition;
                let parent_depth = parent.depth;
                let bounds = parent.data.bounds.clone();
                let (mut lo, mut hi) = (self.instance.vars[var].lb, self.instance.vars[var].ub);
                for bc in &bounds {
                    if bc.var == var {
                        lo = bc.lb;
                        hi = bc.ub;
                    }
                }
                let name = self.instance.vars[var].name.clone();
                let mk = |up: bool, part: usize| {
                    let mut child_bounds = bounds.clone();
                    let label = if up {
                        child_bounds.push(BoundChange {
                            var,
                            lb: value.ceil(),
                            ub: hi,
                        });
                        format!("{name} ≥ {}", value.ceil())
                    } else {
                        child_bounds.push(BoundChange {
                            var,
                            lb: lo,
                            ub: value.floor(),
                        });
                        format!("{name} ≤ {}", value.floor())
                    };
                    (
                        label,
                        ParPayload {
                            bounds: child_bounds,
                            warm_basis: basis.clone(),
                            partition: part,
                        },
                    )
                };
                // Spread subtrees over *groups* by binary fan-out near the
                // root, then inherit: once the frontier is wide enough every
                // group owns a subtree and intra-group dispatch takes over.
                // A permanently retired group must never be a target — fall
                // back to the parent's group, or to any group that still
                // has ranks (last-rank immunity guarantees one exists).
                let route = |p: usize| {
                    if !self.group_retired(p) {
                        p
                    } else if !self.group_retired(parent_partition) {
                        parent_partition
                    } else {
                        (0..self.groups)
                            .find(|&o| !self.group_retired(o))
                            .expect("last-rank immunity: some group has a rank")
                    }
                };
                let spread = parent_depth < 63 && (1usize << (parent_depth + 1)) <= self.groups * 2;
                let children = if spread {
                    let (d, u) = (
                        route((parent_partition * 2) % self.groups),
                        route((parent_partition * 2 + 1) % self.groups),
                    );
                    vec![mk(false, d), mk(true, u)]
                } else {
                    let p = route(parent_partition);
                    vec![mk(false, p), mk(true, p)]
                };
                let ids = self.tree.branch(id, bound, children);
                // A child spread to a *different* group physically travels
                // there: through the same in-transit fence as a steal, over
                // two root-link hops. Same-group children are live at once.
                for cid in ids {
                    let dest = self.tree.node(cid).data.partition;
                    if dest != g {
                        self.tree.begin_evaluation(cid);
                        self.ship_subtrees(dest, vec![cid], 2);
                    }
                }
            }
        }
    }

    /// The cluster-wide consistent snapshot, materialized the hierarchical
    /// way: one part per group (the subproblems it owns, open or in
    /// flight) merged with the root's incumbent part.
    pub fn snapshot(&self) -> Checkpoint {
        let mut parts: Vec<Checkpoint> = (0..self.groups)
            .map(|g| {
                let frontier: Vec<Vec<BoundChange>> = self
                    .tree
                    .iter()
                    .filter(|n| n.state.is_open() && n.data.partition == g)
                    .map(|n| n.data.bounds.clone())
                    .collect();
                Checkpoint::new(frontier, None)
            })
            .collect();
        parts.push(Checkpoint::new(Vec::new(), self.root_incumbent.clone()));
        Checkpoint::merge(parts)
    }

    /// Runs to completion (or node limit); consumes the supervisor.
    pub fn run(mut self) -> LpResult<HierResult> {
        let mut last_checkpoint_at = 0usize;
        let status = loop {
            if self.stats.nodes >= self.cfg.node_limit {
                break MipStatus::NodeLimit;
            }
            self.dispatch()?;
            // Done only when nothing is open, in flight, in transit, *or*
            // still climbing to the root — terminating before the last
            // incumbent update lands would report a stale objective.
            if !self.tree.has_active()
                && self.in_flight.iter().all(Option::is_none)
                && self.in_transit.is_empty()
                && self.pending_root_updates == 0
            {
                break if self.root_incumbent.is_some() {
                    MipStatus::Optimal
                } else {
                    MipStatus::Infeasible
                };
            }
            let Some(Reverse(ev)) = self.events.pop() else {
                break if self.root_incumbent.is_some() {
                    MipStatus::Optimal
                } else {
                    MipStatus::Infeasible
                };
            };
            self.now = self.now.max(ev.time);
            let nodes_before = self.stats.nodes;
            match ev.kind {
                HEventKind::Deliver { dispatch } => self.on_deliver(ev.entity, dispatch),
                HEventKind::AckTimeout { dispatch } => self.on_ack_timeout(ev.entity, dispatch),
                HEventKind::RankCrash => self.on_rank_crash(ev.entity),
                HEventKind::RankDetect => self.on_rank_detect(ev.entity),
                HEventKind::RankRespawn => self.on_rank_respawn(ev.entity)?,
                HEventKind::SubCrash => self.on_sub_crash(ev.entity),
                HEventKind::SubDetect => self.on_sub_detect(ev.entity),
                HEventKind::SubRespawn => self.on_sub_respawn(ev.entity),
                HEventKind::SummaryDue => self.on_summary_due(ev.entity),
                HEventKind::SummaryArrive { open, bound } => {
                    self.on_summary_arrive(ev.entity, open, bound)
                }
                HEventKind::IncumbentAtRoot { xfer } => self.on_incumbent_at_root(xfer),
                HEventKind::IncumbentAtGroup { value } => {
                    self.on_incumbent_at_group(ev.entity, value)
                }
                HEventKind::StealRequestAtRoot { thief } => self.on_steal_request(thief),
                HEventKind::StealDenyAtGroup => self.on_steal_deny(ev.entity),
                HEventKind::StealOrderAtVictim { thief } => self.on_steal_order(ev.entity, thief),
                HEventKind::SubtreeArrive { xfer } => self.on_subtree_arrive(ev.entity, xfer),
            }
            if self.stats.nodes > nodes_before {
                if let Some(every) = self.cfg.checkpoint_every {
                    if self.stats.nodes >= last_checkpoint_at + every {
                        last_checkpoint_at = self.stats.nodes;
                        let snap = self.snapshot();
                        let (t0, dur) = (self.now, 2_000.0 + snap.bytes() as f64);
                        let (ck_bytes, frontier) =
                            (snap.bytes() as u64, snap.frontier.len() as u64);
                        gmip_trace::record(|| {
                            TraceSpan::complete(Track::cluster_rank(0), "checkpoint", dur, t0)
                                .arg("bytes", ck_bytes)
                                .arg("frontier", frontier)
                        });
                        self.now += dur;
                        self.last_checkpoint = Some(snap.clone());
                        self.snapshots.push(snap);
                        self.stats.checkpoints += 1;
                    }
                }
            }
        };
        self.stats.makespan_ns = self.now;
        self.stats.worker_busy_ns = self
            .workers
            .iter()
            .zip(&self.lost_busy_ns)
            .map(|(w, lost)| w.busy_ns + lost)
            .collect();
        if self.now > 0.0 {
            let busy_sum: f64 = self.stats.worker_busy_ns.iter().sum();
            self.stats.idle_fraction = 1.0 - busy_sum / (self.now * self.workers.len() as f64);
        }
        self.stats.tree = self.tree.stats().clone();
        self.hier.max_evaluations_per_node = self.eval_counts.iter().copied().max().unwrap_or(0);
        let (msgs, bytes, ckpts) = (
            self.stats.messages,
            self.stats.message_bytes,
            self.stats.checkpoints,
        );
        self.stats
            .metrics
            .incr(names::CLUSTER_MESSAGES, msgs as f64);
        self.stats.metrics.incr(names::CLUSTER_BYTES, bytes as f64);
        self.stats
            .metrics
            .incr(names::CLUSTER_CHECKPOINTS, ckpts as f64);
        {
            let h = self.hier.clone();
            let m = &mut self.stats.metrics;
            m.set_gauge(names::HIER_GROUPS, h.groups as f64);
            m.incr(names::HIER_ROOT_MESSAGES, h.root_messages as f64);
            m.incr(names::HIER_ROOT_BYTES, h.root_message_bytes as f64);
            m.incr(names::HIER_SUMMARIES, h.summaries as f64);
            m.incr(
                names::HIER_INCUMBENT_BROADCASTS,
                h.incumbent_broadcasts as f64,
            );
            m.incr(names::HIER_STEALS, h.steals as f64);
            m.incr(names::HIER_STEAL_SUBTREES, h.stolen_subtrees as f64);
            m.incr(names::HIER_STEAL_DENIED, h.steal_denied as f64);
            m.incr(names::HIER_TRANSIT_ARRIVALS, h.transit_arrivals as f64);
        }
        if self.plan.is_some() {
            let f = self.stats.faults;
            let m = &mut self.stats.metrics;
            m.incr(names::FAULT_CRASHES, f.crashes as f64);
            m.incr(names::FAULT_DROPS, f.drops as f64);
            m.incr(names::FAULT_DELAYS, f.delays as f64);
            m.incr(names::FAULT_STRAGGLES, f.straggles as f64);
            m.incr(names::RECOVERY_REASSIGNMENTS, f.reassignments as f64);
            m.incr(names::RECOVERY_RESPAWNS, f.respawns as f64);
            m.incr(names::RECOVERY_DEGRADED_RANKS, f.degraded_ranks as f64);
            m.incr(names::FAULT_SUB_CRASHES, f.sub_crashes as f64);
            m.incr(names::RECOVERY_SUB_RESPAWNS, f.sub_respawns as f64);
            m.incr(
                names::RECOVERY_GROUP_REASSIGNED,
                f.group_reassigned_subtrees as f64,
            );
        }
        for w in &self.workers {
            self.stats.metrics.merge(&w.metrics());
        }
        if let Some(t) = self.first_incumbent_ns {
            self.stats
                .metrics
                .set_gauge(names::HEUR_FIRST_INCUMBENT_NS, t);
        }
        let (objective, x) = match &self.root_incumbent {
            Some((v, p)) => (self.to_source(*v), p.clone()),
            None => (f64::NAN, Vec::new()),
        };
        Ok(HierResult {
            status,
            objective,
            x,
            stats: self.stats,
            hier: self.hier,
            snapshots: self.snapshots,
        })
    }
}

/// Convenience: solve an instance on a simulated hierarchical cluster.
pub fn solve_hierarchical(
    instance: &MipInstance,
    cfg: ParallelConfig,
    hcfg: HierarchyConfig,
) -> LpResult<HierResult> {
    HierSupervisor::new(instance.clone(), cfg, hcfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::supervisor::solve_parallel;
    use gmip_problems::catalog::{infeasible_instance, textbook_mip};
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    fn cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            gpu_mem: 1 << 24,
            ..Default::default()
        }
    }

    fn hcfg(fanout: usize) -> HierarchyConfig {
        HierarchyConfig {
            fanout,
            ..Default::default()
        }
    }

    #[test]
    fn hierarchical_matches_brute_force() {
        for seed in 0..3 {
            let m = knapsack(12, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_hierarchical(&m, cfg(8), hcfg(2)).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert_eq!(r.hier.groups, 4);
            assert_eq!(
                r.hier.max_evaluations_per_node, 1,
                "a fault-free run must merge every node exactly once"
            );
            assert!(r.stats.tree.reopened as usize >= r.hier.transit_arrivals);
        }
    }

    #[test]
    fn propagating_hierarchy_matches_brute_force() {
        for seed in 0..2 {
            let m = knapsack(12, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_hierarchical(
                &m,
                ParallelConfig {
                    propagate: true,
                    heuristic_period: 2,
                    ..cfg(4)
                },
                hcfg(2),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert!(r.stats.metrics.counter(names::PROP_NODES) > 0.0);
            assert!(r.stats.metrics.gauge(names::HEUR_FIRST_INCUMBENT_NS) > 0.0);
        }
    }

    #[test]
    fn textbook_mip_hierarchical() {
        let r = solve_hierarchical(&textbook_mip(), cfg(4), hcfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.hier.root_messages > 0);
        assert!(r.hier.summaries > 0, "summary cadence must tick");
        assert_eq!(r.stats.faults, crate::chaos::FaultStats::default());
    }

    #[test]
    fn infeasible_detected_hierarchically() {
        let r = solve_hierarchical(&infeasible_instance(), cfg(4), hcfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.objective.is_nan());
    }

    #[test]
    fn fanout_edges_solve() {
        let m = knapsack(12, 0.5, 4);
        let expected = knapsack_brute_force(&m);
        // fanout 1: every rank its own group; fanout >= workers: one group.
        for fanout in [1, 4, 16] {
            let r = solve_hierarchical(&m, cfg(4), hcfg(fanout)).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "fanout {fanout}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "fanout {fanout}: {} vs {expected}",
                r.objective
            );
            assert_eq!(r.hier.groups, 4usize.div_ceil(fanout));
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let m = knapsack(16, 0.5, 9);
        let run = || solve_hierarchical(&m, cfg(16), hcfg(4)).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.stats.makespan_ns.to_bits(), b.stats.makespan_ns.to_bits());
        assert_eq!(a.stats.nodes, b.stats.nodes);
        assert_eq!(a.stats.messages, b.stats.messages);
        assert_eq!(a.hier, b.hier);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    #[test]
    fn steals_happen_and_conserve_work() {
        // Few groups, one subtree spread: stealing is the only way idle
        // groups acquire work once their spread share prunes out.
        let m = knapsack(18, 0.5, 3);
        let expected = knapsack_brute_force(&m);
        let r = solve_hierarchical(&m, cfg(8), hcfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(
            r.hier.steals + r.hier.steal_denied > 0,
            "an 18-var tree over 4 groups must exercise the steal protocol: {:?}",
            r.hier
        );
        assert_eq!(r.hier.max_evaluations_per_node, 1);
        assert!(r.stats.tree.reopened as usize == r.hier.transit_arrivals);
    }

    #[test]
    fn hierarchy_matches_flat_cluster() {
        let m = knapsack(14, 0.5, 7);
        let flat = solve_parallel(&m, cfg(8)).unwrap();
        let hier = solve_hierarchical(&m, cfg(8), hcfg(4)).unwrap();
        assert_eq!(hier.status, flat.status);
        assert!((hier.objective - flat.objective).abs() < 1e-6);
    }

    #[test]
    fn matches_optimum_under_sub_supervisor_crash() {
        let m = knapsack(16, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        let clean = solve_hierarchical(&m, cfg(8), hcfg(2)).unwrap();
        let r = solve_hierarchical(
            &m,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    sub_crashes: 2,
                    horizon_ns: clean.stats.makespan_ns * 0.8,
                    ..ChaosConfig::quiet(11)
                }),
                ..cfg(8)
            },
            hcfg(2),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(
            r.stats.faults.sub_crashes > 0,
            "no sub-crash landed: {:?}",
            r.stats.faults
        );
        assert_eq!(r.stats.faults.sub_respawns, r.stats.faults.sub_crashes);
        assert!(r.stats.makespan_ns >= clean.stats.makespan_ns);
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(24, 0.5, 1);
        let r = solve_hierarchical(
            &m,
            ParallelConfig {
                node_limit: 5,
                ..cfg(4)
            },
            hcfg(2),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.stats.nodes <= 6);
    }

    #[test]
    fn snapshots_taken_when_configured() {
        let m = knapsack(16, 0.5, 2);
        let r = solve_hierarchical(
            &m,
            ParallelConfig {
                checkpoint_every: Some(3),
                ..cfg(4)
            },
            hcfg(2),
        )
        .unwrap();
        assert!(r.stats.checkpoints > 0);
        assert_eq!(r.snapshots.len(), r.stats.checkpoints);
    }

    #[test]
    fn root_link_straggle_costs_time_but_not_correctness() {
        let m = knapsack(14, 0.5, 2);
        let expected = knapsack_brute_force(&m);
        let clean = solve_hierarchical(&m, cfg(8), hcfg(2)).unwrap();
        let slow = solve_hierarchical(
            &m,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    root_slow_factor: 50.0,
                    ..ChaosConfig::quiet(1)
                }),
                ..cfg(8)
            },
            hcfg(2),
        )
        .unwrap();
        assert_eq!(slow.status, MipStatus::Optimal);
        assert!((slow.objective - expected).abs() < 1e-6);
        assert!(
            slow.stats.makespan_ns > clean.stats.makespan_ns,
            "a 50x root-link straggle must show up in the makespan: {} vs {}",
            slow.stats.makespan_ns,
            clean.stats.makespan_ns
        );
    }
}
