//! A worker rank: one accelerator, one engine, evaluating assigned nodes.
//!
//! Each worker is the paper's Strategy-2 unit: its LP matrix is uploaded to
//! its device **once** at initialization; every assignment then reuses the
//! device-resident matrix with a warm dual re-solve (Sections 5.1/5.3). The
//! worker reports the evaluation outcome and how much simulated device time
//! it consumed, which the discrete-event supervisor uses to schedule.

use crate::comm::{Assignment, NodeOutcome, NodeReport};
use gmip_gpu::{Accel, CostModel, DeviceConfig};
use gmip_lp::{DeviceEngine, LpConfig, LpResult, LpSolver, LpStatus, StandardLp};
use gmip_problems::{MipInstance, Objective};

/// A worker rank in the simulated cluster.
#[derive(Debug)]
pub struct Worker {
    /// Rank id (0-based).
    pub id: usize,
    accel: Accel,
    lp: LpSolver<DeviceEngine>,
    instance: MipInstance,
    int_tol: f64,
    /// Completion time of this worker's last assignment (DES bookkeeping).
    pub busy_until: f64,
    /// Accumulated busy simulated time.
    pub busy_ns: f64,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Evaluation slowdown factor (1.0 = healthy). Set by the fault
    /// injector while this rank sits in a straggler window: the reported
    /// `eval_ns` is multiplied by this, modeling a thermally-throttled or
    /// contended device.
    pub slowdown: f64,
}

impl Worker {
    /// Creates a worker with its own simulated device and uploads the
    /// instance's LP matrix to it.
    pub fn new(
        id: usize,
        instance: &MipInstance,
        gpu_cost: CostModel,
        gpu_mem: usize,
        lp_cfg: LpConfig,
        int_tol: f64,
    ) -> LpResult<Self> {
        // Each rank's device gets its own trace track group, so a Perfetto
        // view shows one GPU timeline per worker.
        let accel = Accel::gpu_with(DeviceConfig {
            cost: gpu_cost,
            mem_capacity: gpu_mem,
            streams: 1,
        })
        .with_trace_group(gmip_trace::TrackGroup::Gpu(id as u16));
        let std = StandardLp::from_instance(instance, &[]);
        let factory_accel = accel.clone();
        let lp = LpSolver::try_new(std, lp_cfg, |a| DeviceEngine::new(factory_accel, a))?;
        Ok(Self {
            id,
            accel,
            lp,
            instance: instance.clone(),
            int_tol,
            busy_until: 0.0,
            busy_ns: 0.0,
            nodes: 0,
            slowdown: 1.0,
        })
    }

    /// The worker's device (stats queries).
    pub fn accel(&self) -> &Accel {
        &self.accel
    }

    /// Combined `gpu.*` + `lp.*` metrics of this rank.
    pub fn metrics(&self) -> gmip_trace::MetricsRegistry {
        let mut m = self.accel.metrics();
        m.merge(self.lp.metrics());
        m
    }

    fn internal(&self, source: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => source,
            Objective::Minimize => -source,
        }
    }

    /// Evaluates an assignment, returning the report. The simulated device
    /// time consumed is measured as the device-frontier delta.
    pub fn evaluate(&mut self, a: &Assignment) -> LpResult<NodeReport> {
        let t0 = self.accel.elapsed_ns();
        self.lp.apply_node_bounds(&a.bounds)?;
        let sol = match a.warm_basis.clone() {
            Some(b) => {
                self.lp.set_warm_basis(b)?;
                self.lp.resolve()?
            }
            None => self.lp.solve()?,
        };
        self.nodes += 1;
        let outcome = match sol.status {
            LpStatus::Infeasible => NodeOutcome::Infeasible,
            LpStatus::Unbounded => {
                return Err(gmip_lp::LpError::Shape(
                    "worker LP unbounded under branch bounds".into(),
                ))
            }
            LpStatus::Optimal => {
                let internal = self.internal(sol.objective);
                if internal <= a.incumbent + 1e-9 {
                    NodeOutcome::Pruned { bound: internal }
                } else {
                    // Fractionality check.
                    let frac: Vec<usize> = self
                        .instance
                        .integral_indices()
                        .into_iter()
                        .filter(|&j| (sol.x[j] - sol.x[j].round()).abs() > self.int_tol)
                        .collect();
                    if frac.is_empty() {
                        NodeOutcome::IntegerFeasible {
                            internal,
                            x: sol.x.clone(),
                        }
                    } else {
                        // Most-fractional branching variable.
                        let var = frac
                            .into_iter()
                            .max_by(|&x1, &x2| {
                                let f1 = (sol.x[x1] - sol.x[x1].round()).abs();
                                let f2 = (sol.x[x2] - sol.x[x2].round()).abs();
                                f1.partial_cmp(&f2)
                                    .expect("fractionality is never NaN")
                                    .then(x2.cmp(&x1))
                            })
                            .expect("non-empty");
                        NodeOutcome::Branch {
                            bound: internal,
                            var,
                            value: sol.x[var],
                            basis: self.lp.basis().cloned(),
                        }
                    }
                }
            }
        };
        let eval_ns = (self.accel.elapsed_ns() - t0) * self.slowdown.max(1.0);
        self.busy_ns += eval_ns;
        Ok(NodeReport {
            node_id: a.node_id,
            outcome,
            eval_ns,
            lp_iterations: sol.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_lp::BoundChange;
    use gmip_problems::catalog::textbook_mip;

    fn mk_worker() -> Worker {
        Worker::new(
            0,
            &textbook_mip(),
            CostModel::gpu_pcie(),
            1 << 24,
            LpConfig::standard(),
            1e-6,
        )
        .unwrap()
    }

    #[test]
    fn root_evaluation_branches() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 0,
                bounds: vec![],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        match report.outcome {
            NodeOutcome::Branch { bound, var, .. } => {
                assert!((bound - 21.0).abs() < 1e-6);
                assert_eq!(var, 1); // y = 1.5 fractional
            }
            other => panic!("expected branch, got {other:?}"),
        }
        assert!(report.eval_ns > 0.0);
        assert_eq!(w.nodes, 1);
    }

    #[test]
    fn incumbent_prunes_on_worker() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 0,
                bounds: vec![],
                warm_basis: None,
                incumbent: 25.0, // better than the LP bound 21
            })
            .unwrap();
        assert!(matches!(report.outcome, NodeOutcome::Pruned { .. }));
    }

    #[test]
    fn fixed_bounds_give_integer_feasible() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 3,
                bounds: vec![
                    BoundChange {
                        var: 0,
                        lb: 4.0,
                        ub: 4.0,
                    },
                    BoundChange {
                        var: 1,
                        lb: 0.0,
                        ub: 0.0,
                    },
                ],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        match report.outcome {
            NodeOutcome::IntegerFeasible { internal, ref x } => {
                assert!((internal - 20.0).abs() < 1e-6);
                assert!((x[0] - 4.0).abs() < 1e-6);
            }
            other => panic!("expected integer feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_bounds_detected() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 9,
                bounds: vec![BoundChange {
                    var: 0,
                    lb: 5.0,
                    ub: 10.0,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        assert!(matches!(report.outcome, NodeOutcome::Infeasible));
    }

    #[test]
    fn straggler_slowdown_scales_eval_time() {
        let assignment = Assignment {
            node_id: 0,
            bounds: vec![],
            warm_basis: None,
            incumbent: f64::NEG_INFINITY,
        };
        let mut healthy = mk_worker();
        let fast = healthy.evaluate(&assignment).unwrap().eval_ns;
        let mut straggler = mk_worker();
        straggler.slowdown = 4.0;
        let slow = straggler.evaluate(&assignment).unwrap().eval_ns;
        assert!((slow - 4.0 * fast).abs() < 1e-6, "{slow} vs 4×{fast}");
        assert!((straggler.busy_ns - 4.0 * healthy.busy_ns).abs() < 1e-6);
    }

    #[test]
    fn matrix_uploaded_once_across_assignments() {
        let mut w = mk_worker();
        for ub in [4, 3, 2] {
            w.evaluate(&Assignment {
                node_id: ub,
                bounds: vec![BoundChange {
                    var: 0,
                    lb: 0.0,
                    ub: ub as f64,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        }
        // Matrix (the largest object) went up once; subsequent traffic is
        // small vectors. 3 extra full-matrix uploads would at least double
        // the total.
        let bytes = w.accel().stats().h2d_bytes;
        let matrix = (2 * 8 * 8) as u64; // extended 2x(4+... rough floor
        assert!(
            bytes < 40 * matrix,
            "H2D bytes {bytes} look like re-uploads"
        );
    }
}
