//! A worker rank: one accelerator, one engine, evaluating assigned nodes.
//!
//! Each worker is the paper's Strategy-2 unit: its LP matrix is uploaded to
//! its device **once** at initialization; every assignment then reuses the
//! device-resident matrix with a warm dual re-solve (Sections 5.1/5.3). The
//! worker reports the evaluation outcome and how much simulated device time
//! it consumed, which the discrete-event supervisor uses to schedule.

use crate::comm::{Assignment, NodeOutcome, NodeReport};
use gmip_gpu::{Accel, CostModel, DeviceConfig};
use gmip_lp::wave::BatchedWaveEngine;
use gmip_lp::{
    wave_width, DeviceEngine, FirstOrderWaveEngine, FoOutcome, HostEngine, LpConfig, LpResult,
    LpSolution, LpSolver, LpStatus, PdhgConfig, RecordingEngine, StandardLp,
};
use gmip_problems::{MipInstance, Objective};
use gmip_prop::Propagator;
use gmip_trace::names;

/// The worker's LP execution backend.
#[derive(Debug)]
enum LpBackend {
    /// One device kernel launch per simplex operation (the Strategy-2
    /// baseline).
    PerKernel(Box<LpSolver<DeviceEngine>>),
    /// The batched wave evaluator: the node LP runs on the host reference
    /// engine while journaling its device kernels, then the journal replays
    /// through fused batched launches on this rank's device, with a
    /// device-resident warm-basis pool (Sections 4.3, 5.5 opt-in).
    Wave {
        lp: Box<LpSolver<RecordingEngine>>,
        wave: Box<BatchedWaveEngine>,
        slot: usize,
    },
    /// The first-order (restarted PDHG) evaluator: the node LP iterates as
    /// fused SpMV/axpy launches against this rank's device-resident CSR
    /// matrix, states a safe dual bound (early incumbent prunes without
    /// solving to optimality), and converged lanes are finished by exact
    /// host simplex before the outcome is reported.
    FirstOrder {
        std: Box<StandardLp>,
        fo: Box<FirstOrderWaveEngine>,
        cleanup: Box<LpSolver<HostEngine>>,
        slot: usize,
    },
}

/// A worker rank in the simulated cluster.
#[derive(Debug)]
pub struct Worker {
    /// Rank id (0-based).
    pub id: usize,
    accel: Accel,
    backend: LpBackend,
    instance: MipInstance,
    int_tol: f64,
    /// Completion time of this worker's last assignment (DES bookkeeping).
    pub busy_until: f64,
    /// Accumulated busy simulated time.
    pub busy_ns: f64,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Evaluation slowdown factor (1.0 = healthy). Set by the fault
    /// injector while this rank sits in a straggler window: the reported
    /// `eval_ns` is multiplied by this, modeling a thermally-throttled or
    /// contended device.
    pub slowdown: f64,
    /// Domain propagation + fix-and-propagate support; `None` when both are
    /// off (the default).
    propagator: Option<Propagator>,
    /// Propagate every assignment's box before its LP when set.
    propagate: bool,
    /// Run the fix-and-propagate dive on every this-many-th branched node
    /// (`0` = off).
    heuristic_period: usize,
    /// Propagation round cap per node.
    prop_rounds: usize,
    /// `prop.*` / `heur.*` counters of this rank.
    prop_metrics: gmip_trace::MetricsRegistry,
}

impl Worker {
    /// Creates a worker with its own simulated device and uploads the
    /// instance's LP matrix to it.
    pub fn new(
        id: usize,
        instance: &MipInstance,
        gpu_cost: CostModel,
        gpu_mem: usize,
        lp_cfg: LpConfig,
        int_tol: f64,
    ) -> LpResult<Self> {
        Self::new_with_lanes(id, instance, gpu_cost, gpu_mem, lp_cfg, int_tol, None)
    }

    /// Like [`Worker::new`], but `batched_lanes: Some(n)` switches this
    /// rank's LP backend to the batched wave evaluator with up to `n` lane
    /// reservations (clamped by device memory next to the shared matrix).
    pub fn new_with_lanes(
        id: usize,
        instance: &MipInstance,
        gpu_cost: CostModel,
        gpu_mem: usize,
        lp_cfg: LpConfig,
        int_tol: f64,
        batched_lanes: Option<usize>,
    ) -> LpResult<Self> {
        Self::new_with_backend(
            id,
            instance,
            gpu_cost,
            gpu_mem,
            lp_cfg,
            int_tol,
            batched_lanes,
            None,
            gmip_gpu::BackendKind::Sim,
        )
    }

    /// Like [`Worker::new_with_lanes`], but `first_order_lanes: Some(n)`
    /// switches this rank to the restarted-PDHG evaluator with up to `n`
    /// lane reservations (takes precedence over `batched_lanes`), and
    /// `exec_backend` selects who executes the rank's fused lane
    /// dispatches (simulated charges are identical either way).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_backend(
        id: usize,
        instance: &MipInstance,
        gpu_cost: CostModel,
        gpu_mem: usize,
        lp_cfg: LpConfig,
        int_tol: f64,
        batched_lanes: Option<usize>,
        first_order_lanes: Option<usize>,
        exec_backend: gmip_gpu::BackendKind,
    ) -> LpResult<Self> {
        // Each rank's device gets its own trace track group, so a Perfetto
        // view shows one GPU timeline per worker.
        let accel = Accel::gpu_with(DeviceConfig {
            cost: gpu_cost,
            mem_capacity: gpu_mem,
            streams: 1,
        })
        .with_trace_group(gmip_trace::TrackGroup::Gpu(id as u16))
        .with_backend(exec_backend);
        let std = StandardLp::from_instance(instance, &[]);
        if let Some(lanes) = first_order_lanes {
            let csr_bytes = gmip_linalg::CsrMatrix::from_dense(&std.a).size_bytes();
            let width = wave_width(
                lanes,
                gpu_mem,
                csr_bytes,
                FirstOrderWaveEngine::per_lane_bytes(std.m(), std.n()),
            );
            let fo = FirstOrderWaveEngine::new(accel.clone(), &std, width, PdhgConfig::default())?;
            let cleanup = LpSolver::new(std.clone(), lp_cfg, |a| HostEngine::new(a.clone()));
            return Ok(Self {
                id,
                accel,
                backend: LpBackend::FirstOrder {
                    std: Box::new(std),
                    fo: Box::new(fo),
                    cleanup: Box::new(cleanup),
                    slot: 0,
                },
                instance: instance.clone(),
                int_tol,
                busy_until: 0.0,
                busy_ns: 0.0,
                nodes: 0,
                slowdown: 1.0,
                propagator: None,
                propagate: false,
                heuristic_period: 0,
                prop_rounds: 8,
                prop_metrics: gmip_trace::MetricsRegistry::default(),
            });
        }
        let backend = match batched_lanes {
            None => {
                let factory_accel = accel.clone();
                LpBackend::PerKernel(Box::new(LpSolver::try_new(std, lp_cfg, |a| {
                    DeviceEngine::new(factory_accel, a)
                })?))
            }
            Some(lanes) => {
                let mut ext = None;
                let lp = LpSolver::new(std, lp_cfg, |a| {
                    ext = Some(a.clone());
                    RecordingEngine::new(a.clone())
                });
                let ext = ext.expect("engine factory runs during solver construction");
                let width = wave_width(
                    lanes,
                    gpu_mem,
                    ext.size_bytes(),
                    BatchedWaveEngine::per_lane_bytes(ext.rows(), ext.cols()),
                );
                let wave = BatchedWaveEngine::new(accel.clone(), &ext, width, 1 << 18)?;
                LpBackend::Wave {
                    lp: Box::new(lp),
                    wave: Box::new(wave),
                    slot: 0,
                }
            }
        };
        Ok(Self {
            id,
            accel,
            backend,
            instance: instance.clone(),
            int_tol,
            busy_until: 0.0,
            busy_ns: 0.0,
            nodes: 0,
            slowdown: 1.0,
            propagator: None,
            propagate: false,
            heuristic_period: 0,
            prop_rounds: 8,
            prop_metrics: gmip_trace::MetricsRegistry::default(),
        })
    }

    /// Enables domain propagation and/or the fix-and-propagate dive on this
    /// rank (both off by default). `heuristic_period = 0` disables the dive.
    pub fn with_propagation(mut self, propagate: bool, heuristic_period: usize) -> Self {
        self.propagate = propagate;
        self.heuristic_period = heuristic_period;
        self.propagator =
            (propagate || heuristic_period > 0).then(|| Propagator::new(&self.instance));
        self
    }

    /// The worker's device (stats queries).
    pub fn accel(&self) -> &Accel {
        &self.accel
    }

    /// Combined `gpu.*` + `lp.*` (and, on the wave backend, `wave.*` /
    /// `batch.*`) metrics of this rank.
    pub fn metrics(&self) -> gmip_trace::MetricsRegistry {
        let mut m = self.accel.metrics();
        match &self.backend {
            LpBackend::PerKernel(lp) => m.merge(lp.metrics()),
            LpBackend::Wave { lp, wave, .. } => {
                m.merge(lp.metrics());
                m.merge(wave.metrics());
            }
            LpBackend::FirstOrder { fo, cleanup, .. } => {
                m.merge(fo.metrics());
                m.merge(cleanup.metrics());
            }
        }
        m.merge(&self.prop_metrics);
        m
    }

    /// Runs one node LP on whichever backend the rank was built with.
    fn solve_assignment(
        &mut self,
        a: &Assignment,
    ) -> LpResult<(LpSolution, Option<gmip_lp::Basis>)> {
        match &mut self.backend {
            LpBackend::PerKernel(lp) => {
                lp.apply_node_bounds(&a.bounds)?;
                let sol = match a.warm_basis.clone() {
                    Some(b) => {
                        lp.set_warm_basis(b)?;
                        lp.resolve()?
                    }
                    None => lp.solve()?,
                };
                Ok((sol, lp.basis().cloned()))
            }
            LpBackend::Wave { lp, wave, slot } => {
                lp.apply_node_bounds(&a.bounds)?;
                let sol = match a.warm_basis.clone() {
                    Some(b) => {
                        // Pool the basis under the node id: a reassigned or
                        // re-dispatched node hits instead of re-uploading.
                        wave.touch_basis(a.node_id as u64, 8 * (b.m() + b.n()))?;
                        lp.set_warm_basis(b)?;
                        lp.resolve()?
                    }
                    None => lp.solve()?,
                };
                // Replay the journaled kernels through fused batched
                // launches; successive assignments rotate the lane state.
                let ops = lp.engine_mut().take_ops();
                wave.load_lane(*slot, ops);
                while wave.any_busy() {
                    wave.superstep();
                }
                *slot = (*slot + 1) % wave.width();
                Ok((sol, lp.basis().cloned()))
            }
            LpBackend::FirstOrder {
                std,
                fo,
                cleanup,
                slot,
            } => {
                let mut lb = std.lb.clone();
                let mut ub = std.ub.clone();
                for bc in &a.bounds {
                    lb[bc.var] = bc.lb;
                    ub[bc.var] = bc.ub;
                }
                // The lane prunes itself the moment its safe bound drops
                // to the incumbent — matching the report-side prune rule.
                fo.set_cutoff(a.incumbent);
                fo.load_lane(*slot, a.node_id as u64, &lb, &ub, None)?;
                fo.run_to_retire();
                let r = fo.take_lane(*slot)?;
                *slot = (*slot + 1) % fo.width();
                let to_source = |internal: f64| match self.instance.objective {
                    Objective::Maximize => internal,
                    Objective::Minimize => -internal,
                };
                match r.outcome {
                    FoOutcome::Infeasible => Ok((
                        LpSolution {
                            status: LpStatus::Infeasible,
                            objective: 0.0,
                            x: Vec::new(),
                            iterations: r.iterations,
                        },
                        None,
                    )),
                    // The safe bound is at or below the incumbent cutoff:
                    // report it as the node's (dominated) objective bound;
                    // the prune rule in `evaluate` retires it without ever
                    // reading `x`.
                    FoOutcome::BoundPruned => Ok((
                        LpSolution {
                            status: LpStatus::Optimal,
                            objective: to_source(r.safe_bound),
                            x: Vec::new(),
                            iterations: r.iterations,
                        },
                        None,
                    )),
                    FoOutcome::Converged | FoOutcome::IterLimit => {
                        // Exact host cleanup before the outcome is acted on.
                        cleanup.apply_node_bounds(&a.bounds)?;
                        let sol = cleanup.solve()?;
                        fo.note_cleanup(sol.iterations);
                        Ok((sol, None))
                    }
                }
            }
        }
    }

    fn internal(&self, source: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => source,
            Objective::Minimize => -source,
        }
    }

    /// Evaluates an assignment, returning the report. The simulated device
    /// time consumed is measured as the device-frontier delta.
    pub fn evaluate(&mut self, a: &Assignment) -> LpResult<NodeReport> {
        let t0 = self.accel.elapsed_ns();
        // Domain propagation before any LP work: infeasible boxes settle
        // with `prop.*` kernel charges only, feasible ones tighten.
        let mut tightened: Option<Assignment> = None;
        if self.propagate {
            let p = self.propagator.as_ref().expect("propagator built");
            // A one-lane wave through the rank's executing backend — the
            // charges are identical to the host propagate + charge_wave
            // pair this replaced.
            let mut boxes = vec![p.node_box(&a.bounds)];
            let out = p.propagate_wave(&self.accel, &mut boxes, self.prop_rounds)[0];
            let (lb, ub) = boxes.pop().expect("one lane in, one box out");
            self.prop_metrics.incr(names::PROP_NODES, 1.0);
            self.prop_metrics
                .incr(names::PROP_ROUNDS, out.rounds as f64);
            self.prop_metrics
                .incr(names::PROP_TIGHTENINGS, out.tightenings as f64);
            if out.infeasible {
                self.prop_metrics.incr(names::PROP_INFEASIBLE, 1.0);
                self.nodes += 1;
                let eval_ns = (self.accel.elapsed_ns() - t0) * self.slowdown.max(1.0);
                self.busy_ns += eval_ns;
                return Ok(NodeReport {
                    node_id: a.node_id,
                    outcome: NodeOutcome::Infeasible,
                    eval_ns,
                    lp_iterations: 0,
                    heur: None,
                });
            }
            tightened = Some(Assignment {
                bounds: p.bound_changes(&lb, &ub),
                ..a.clone()
            });
        }
        let a = tightened.as_ref().unwrap_or(a);
        let (sol, basis) = self.solve_assignment(a)?;
        self.nodes += 1;
        let outcome = match sol.status {
            LpStatus::Infeasible => NodeOutcome::Infeasible,
            LpStatus::Unbounded => {
                return Err(gmip_lp::LpError::Shape(
                    "worker LP unbounded under branch bounds".into(),
                ))
            }
            LpStatus::Optimal => {
                let internal = self.internal(sol.objective);
                if internal <= a.incumbent + 1e-9 {
                    NodeOutcome::Pruned { bound: internal }
                } else {
                    // Fractionality check.
                    let frac: Vec<usize> = self
                        .instance
                        .integral_indices()
                        .into_iter()
                        .filter(|&j| (sol.x[j] - sol.x[j].round()).abs() > self.int_tol)
                        .collect();
                    if frac.is_empty() {
                        NodeOutcome::IntegerFeasible {
                            internal,
                            x: sol.x.clone(),
                        }
                    } else {
                        // Most-fractional branching variable.
                        let var = frac
                            .into_iter()
                            .max_by(|&x1, &x2| {
                                let f1 = (sol.x[x1] - sol.x[x1].round()).abs();
                                let f2 = (sol.x[x2] - sol.x[x2].round()).abs();
                                f1.partial_cmp(&f2)
                                    .expect("fractionality is never NaN")
                                    .then(x2.cmp(&x1))
                            })
                            .expect("non-empty");
                        NodeOutcome::Branch {
                            bound: internal,
                            var,
                            value: sol.x[var],
                            basis,
                        }
                    }
                }
            }
        };
        // Fix-and-propagate dive on branched nodes, every
        // `heuristic_period`-th evaluation: the candidate rides along in
        // the report and feeds the supervisor's incumbent-broadcast path.
        let mut heur: Option<(f64, Vec<f64>)> = None;
        if self.heuristic_period > 0
            && self.nodes.is_multiple_of(self.heuristic_period)
            && matches!(outcome, NodeOutcome::Branch { .. })
        {
            let p = self.propagator.as_ref().expect("propagator built");
            let (lb, ub) = p.node_box(&a.bounds);
            let seeds = [gmip_prop::DiveSeed {
                x0: &sol.x,
                lb0: &lb,
                ub0: &ub,
            }];
            let out = p
                .dive_wave(&self.accel, &seeds, self.int_tol, self.prop_rounds)
                .pop()
                .expect("one seed in, one dive out");
            gmip_prop::charge_wave(&self.accel, p.nnz(), p.num_vars(), &[out.rounds.max(1)]);
            self.prop_metrics.incr(names::HEUR_ATTEMPTS, 1.0);
            self.prop_metrics
                .incr(names::HEUR_REPAIRS, out.repairs as f64);
            if out.aborted {
                self.prop_metrics.incr(names::HEUR_ABORTS, 1.0);
            }
            if let Some((obj, pt)) = out.candidate {
                let internal = self.internal(obj);
                if internal > a.incumbent + 1e-9 {
                    self.prop_metrics.incr(names::HEUR_INCUMBENTS, 1.0);
                    heur = Some((internal, pt));
                }
            }
        }
        let eval_ns = (self.accel.elapsed_ns() - t0) * self.slowdown.max(1.0);
        self.busy_ns += eval_ns;
        Ok(NodeReport {
            node_id: a.node_id,
            outcome,
            eval_ns,
            lp_iterations: sol.iterations,
            heur,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_lp::BoundChange;
    use gmip_problems::catalog::textbook_mip;

    fn mk_worker() -> Worker {
        Worker::new(
            0,
            &textbook_mip(),
            CostModel::gpu_pcie(),
            1 << 24,
            LpConfig::standard(),
            1e-6,
        )
        .unwrap()
    }

    #[test]
    fn root_evaluation_branches() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 0,
                bounds: vec![],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        match report.outcome {
            NodeOutcome::Branch { bound, var, .. } => {
                assert!((bound - 21.0).abs() < 1e-6);
                assert_eq!(var, 1); // y = 1.5 fractional
            }
            other => panic!("expected branch, got {other:?}"),
        }
        assert!(report.eval_ns > 0.0);
        assert_eq!(w.nodes, 1);
    }

    #[test]
    fn incumbent_prunes_on_worker() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 0,
                bounds: vec![],
                warm_basis: None,
                incumbent: 25.0, // better than the LP bound 21
            })
            .unwrap();
        assert!(matches!(report.outcome, NodeOutcome::Pruned { .. }));
    }

    #[test]
    fn fixed_bounds_give_integer_feasible() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 3,
                bounds: vec![
                    BoundChange {
                        var: 0,
                        lb: 4.0,
                        ub: 4.0,
                    },
                    BoundChange {
                        var: 1,
                        lb: 0.0,
                        ub: 0.0,
                    },
                ],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        match report.outcome {
            NodeOutcome::IntegerFeasible { internal, ref x } => {
                assert!((internal - 20.0).abs() < 1e-6);
                assert!((x[0] - 4.0).abs() < 1e-6);
            }
            other => panic!("expected integer feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_bounds_detected() {
        let mut w = mk_worker();
        let report = w
            .evaluate(&Assignment {
                node_id: 9,
                bounds: vec![BoundChange {
                    var: 0,
                    lb: 5.0,
                    ub: 10.0,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        assert!(matches!(report.outcome, NodeOutcome::Infeasible));
    }

    #[test]
    fn straggler_slowdown_scales_eval_time() {
        let assignment = Assignment {
            node_id: 0,
            bounds: vec![],
            warm_basis: None,
            incumbent: f64::NEG_INFINITY,
        };
        let mut healthy = mk_worker();
        let fast = healthy.evaluate(&assignment).unwrap().eval_ns;
        let mut straggler = mk_worker();
        straggler.slowdown = 4.0;
        let slow = straggler.evaluate(&assignment).unwrap().eval_ns;
        assert!((slow - 4.0 * fast).abs() < 1e-6, "{slow} vs 4×{fast}");
        assert!((straggler.busy_ns - 4.0 * healthy.busy_ns).abs() < 1e-6);
    }

    #[test]
    fn wave_backend_matches_per_kernel_with_fewer_launches() {
        let mk = |lanes: Option<usize>| {
            Worker::new_with_lanes(
                0,
                &textbook_mip(),
                CostModel::gpu_pcie(),
                1 << 24,
                LpConfig::standard(),
                1e-6,
                lanes,
            )
            .unwrap()
        };
        let assignments = [
            Assignment {
                node_id: 0,
                bounds: vec![],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            },
            Assignment {
                node_id: 1,
                bounds: vec![BoundChange {
                    var: 1,
                    lb: 0.0,
                    ub: 1.0,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            },
        ];
        let mut per_kernel = mk(None);
        let mut wave = mk(Some(2));
        for a in &assignments {
            let rk = per_kernel.evaluate(a).unwrap();
            let rw = wave.evaluate(a).unwrap();
            // Same pivot path, same outcome.
            match (&rk.outcome, &rw.outcome) {
                (
                    NodeOutcome::Branch {
                        bound: bk, var: vk, ..
                    },
                    NodeOutcome::Branch {
                        bound: bw, var: vw, ..
                    },
                ) => {
                    assert!((bk - bw).abs() < 1e-9);
                    assert_eq!(vk, vw);
                }
                (k, w) => assert_eq!(
                    std::mem::discriminant(k),
                    std::mem::discriminant(w),
                    "{k:?} vs {w:?}"
                ),
            }
            assert_eq!(rk.lp_iterations, rw.lp_iterations);
        }
        assert!(
            wave.accel().stats().kernel_launches < per_kernel.accel().stats().kernel_launches,
            "{} vs {}",
            wave.accel().stats().kernel_launches,
            per_kernel.accel().stats().kernel_launches
        );
        assert!(wave.metrics().counter("wave.fused_launches") > 0.0);
    }

    #[test]
    fn first_order_backend_matches_per_kernel_outcomes() {
        let mk_fo = || {
            Worker::new_with_backend(
                0,
                &textbook_mip(),
                CostModel::gpu_pcie(),
                1 << 24,
                LpConfig::standard(),
                1e-6,
                None,
                Some(2),
                gmip_gpu::BackendKind::Sim,
            )
            .unwrap()
        };
        // Root relaxation: exact cleanup makes the branch decision match
        // the per-kernel simplex worker exactly.
        let root = Assignment {
            node_id: 0,
            bounds: vec![],
            warm_basis: None,
            incumbent: f64::NEG_INFINITY,
        };
        let mut fo = mk_fo();
        let r = fo.evaluate(&root).unwrap();
        match r.outcome {
            NodeOutcome::Branch { bound, var, .. } => {
                assert!((bound - 21.0).abs() < 1e-6);
                assert_eq!(var, 1);
            }
            other => panic!("expected branch, got {other:?}"),
        }
        // A dominating incumbent: the lane retires on its safe bound
        // after a handful of PDHG iterations, never reaching optimality.
        let mut fo = mk_fo();
        let r = fo
            .evaluate(&Assignment {
                node_id: 1,
                bounds: vec![],
                warm_basis: None,
                incumbent: 25.0,
            })
            .unwrap();
        assert!(matches!(r.outcome, NodeOutcome::Pruned { .. }));
        assert!(
            fo.metrics().counter("fo.bound_pruned") >= 1.0,
            "prune must come from the safe-bound path"
        );
        // Infeasible branch bounds are caught at lane load.
        let mut fo = mk_fo();
        let r = fo
            .evaluate(&Assignment {
                node_id: 2,
                bounds: vec![BoundChange {
                    var: 0,
                    lb: 5.0,
                    ub: 10.0,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        assert!(matches!(r.outcome, NodeOutcome::Infeasible));
    }

    #[test]
    fn matrix_uploaded_once_across_assignments() {
        let mut w = mk_worker();
        for ub in [4, 3, 2] {
            w.evaluate(&Assignment {
                node_id: ub,
                bounds: vec![BoundChange {
                    var: 0,
                    lb: 0.0,
                    ub: ub as f64,
                }],
                warm_basis: None,
                incumbent: f64::NEG_INFINITY,
            })
            .unwrap();
        }
        // Matrix (the largest object) went up once; subsequent traffic is
        // small vectors. 3 extra full-matrix uploads would at least double
        // the total.
        let bytes = w.accel().stats().h2d_bytes;
        let matrix = (2 * 8 * 8) as u64; // extended 2x(4+... rough floor
        assert!(
            bytes < 40 * matrix,
            "H2D bytes {bytes} look like re-uploads"
        );
    }
}
