//! Message types and the interconnect cost model of the simulated cluster.
//!
//! The paper's Strategy 2 relies on "native and portable message passing
//! interface-based parallel branch-and-cut orchestration across nodes"
//! (Section 3). The discrete-event cluster charges every message a
//! latency + size/bandwidth cost, and counts messages/bytes so experiment
//! E6 can report communication overhead alongside speedup.

use crate::chaos::FaultPlan;
use gmip_lp::{Basis, BoundChange, VarStatus};

/// Point-to-point network cost model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Per-message latency, ns.
    pub latency_ns: f64,
    /// Link bandwidth, bytes per ns.
    pub bw_bytes_per_ns: f64,
}

impl NetworkModel {
    /// An InfiniBand-class HPC interconnect (~1.5 µs latency, ~12 GB/s
    /// effective).
    pub fn infiniband() -> Self {
        Self {
            latency_ns: 1_500.0,
            bw_bytes_per_ns: 12.0,
        }
    }

    /// A slower Ethernet-class network.
    pub fn ethernet() -> Self {
        Self {
            latency_ns: 30_000.0,
            bw_bytes_per_ns: 1.2,
        }
    }

    /// Transfer time for a message of `bytes`.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        self.latency_ns + bytes as f64 / self.bw_bytes_per_ns
    }

    /// Ships a message of `bytes` across the link, consulting an optional
    /// fault plan for its fate. Without a plan (or when the plan rolls
    /// clean) this reduces to [`Self::transfer_ns`].
    pub fn ship(&self, bytes: usize, plan: Option<&mut FaultPlan>) -> Delivery {
        let fate = match plan {
            Some(p) => p.sample_fate(),
            None => crate::chaos::MessageFate::clean(),
        };
        if fate.dropped {
            return Delivery::Dropped;
        }
        Delivery::Delivered {
            transfer_ns: self.transfer_ns(bytes) + fate.extra_ns,
            injected_ns: fate.extra_ns,
        }
    }
}

/// The outcome of shipping one message over a (possibly faulty) link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The message arrives after `transfer_ns` (which already includes any
    /// injected delay, reported separately in `injected_ns`).
    Delivered {
        /// Total time on the wire, ns.
        transfer_ns: f64,
        /// Injected extra latency included above, ns (0 when clean).
        injected_ns: f64,
    },
    /// The message is silently lost; the receiver never sees it.
    Dropped,
}

/// A work assignment shipped supervisor → worker: the subproblem's bound
/// changes plus an optional warm-start basis (Section 5.3's reuse payload).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Tree node id (supervisor-side bookkeeping).
    pub node_id: usize,
    /// Cumulative bound changes defining the subproblem.
    pub bounds: Vec<BoundChange>,
    /// Parent basis for the warm start.
    pub warm_basis: Option<Basis>,
    /// Incumbent value at send time (internal maximize sense), for
    /// worker-side pruning.
    pub incumbent: f64,
}

impl Assignment {
    /// Serialized size estimate used for transfer charging.
    pub fn bytes(&self) -> usize {
        let bounds = self.bounds.len() * 24; // (usize, f64, f64)
        let basis = self
            .warm_basis
            .as_ref()
            .map(|b| b.cols.len() * 8 + b.status.len())
            .unwrap_or(0);
        16 + bounds + basis
    }
}

/// Outcome of one node evaluation, shipped worker → supervisor.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The evaluated node.
    pub node_id: usize,
    /// What happened.
    pub outcome: NodeOutcome,
    /// Simulated device time the evaluation took on the worker, ns.
    pub eval_ns: f64,
    /// LP iterations spent.
    pub lp_iterations: usize,
    /// An early incumbent candidate from the worker-side fix-and-propagate
    /// dive: `(internal objective, point)`, already re-checked feasible on
    /// the instance. Rides along with the node outcome and feeds the
    /// supervisor's normal incumbent-broadcast path.
    pub heur: Option<(f64, Vec<f64>)>,
}

/// Evaluation outcome variants.
#[derive(Debug, Clone)]
pub enum NodeOutcome {
    /// Relaxation infeasible.
    Infeasible,
    /// Integer feasible with the given internal objective and point.
    IntegerFeasible {
        /// Internal (maximize-sense) objective.
        internal: f64,
        /// The feasible point (structural variables).
        x: Vec<f64>,
    },
    /// Bound dominated by the incumbent the worker knew.
    Pruned {
        /// The node's relaxation bound.
        bound: f64,
    },
    /// Fractional: branch into two children.
    Branch {
        /// Relaxation bound (internal sense).
        bound: f64,
        /// Branching variable.
        var: usize,
        /// Its fractional value.
        value: f64,
        /// Post-solve basis for children warm starts.
        basis: Option<Basis>,
    },
}

impl NodeReport {
    /// Serialized size estimate.
    pub fn bytes(&self) -> usize {
        let payload = match &self.outcome {
            NodeOutcome::Infeasible => 0,
            NodeOutcome::IntegerFeasible { x, .. } => 8 + x.len() * 8,
            NodeOutcome::Pruned { .. } => 8,
            NodeOutcome::Branch { basis, .. } => {
                24 + basis
                    .as_ref()
                    .map(|b| b.cols.len() * 8 + b.status.len())
                    .unwrap_or(0)
            }
        };
        let heur = self
            .heur
            .as_ref()
            .map(|(_, x)| 8 + x.len() * 8)
            .unwrap_or(0);
        32 + payload + heur
    }
}

/// A periodic sub-supervisor → root load summary: the only per-group state
/// the hierarchical root sees. Its size is *independent of the frontier* —
/// that is the whole point of the hierarchy: root-link traffic aggregates a
/// group's backlog into one fixed-size record instead of per-node reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSummary {
    /// The reporting group.
    pub group: usize,
    /// Open (dispatchable) subproblems the group owns at send time.
    pub open: usize,
    /// Best (largest, internal sense) bound among them; `-inf` when idle.
    pub best_bound: f64,
}

impl LoadSummary {
    /// Serialized size estimate: `(usize, usize, f64)`.
    pub fn bytes(&self) -> usize {
        24
    }
}

/// An incumbent a group pushes up to the root: value plus the point (the
/// root keeps the best point; groups only ever need the value to prune).
#[derive(Debug, Clone, PartialEq)]
pub struct IncumbentUpdate {
    /// Internal (maximize-sense) objective.
    pub value: f64,
    /// The feasible point.
    pub x: Vec<f64>,
}

impl IncumbentUpdate {
    /// Serialized size estimate.
    pub fn bytes(&self) -> usize {
        16 + self.x.len() * 8
    }
}

/// Root → group incumbent broadcast size: the aggregated bound *value*
/// only, never the point — root-link bytes stay O(1) per improvement.
pub const INCUMBENT_BROADCAST_BYTES: usize = 16;

/// Steal-protocol control messages (request, deny, root → victim order)
/// are fixed-size headers: `(thief, victim, fence)`.
pub const STEAL_CONTROL_BYTES: usize = 24;

/// Serialized size of one frontier subtree root crossing the root link
/// during a steal grant or a group reassignment: the node's cumulative
/// bound changes plus a header (no warm basis — a stolen subtree cold
/// starts on its new group, like a post-crash reassignment).
pub fn subtree_bytes(bounds: &[BoundChange]) -> usize {
    16 + bounds.len() * 24
}

/// Compact basis size helper (used when sizing checkpoint payloads).
pub fn basis_bytes(b: &Basis) -> usize {
    b.cols.len() * 8
        + b.status
            .iter()
            .map(|s| match s {
                VarStatus::Basic(_) => 9,
                _ => 1,
            })
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_cost_scales() {
        let net = NetworkModel::infiniband();
        let small = net.transfer_ns(8);
        let big = net.transfer_ns(8 << 20);
        assert!(big > small);
        assert!(small >= net.latency_ns);
        assert!(NetworkModel::ethernet().transfer_ns(1 << 20) > net.transfer_ns(1 << 20));
    }

    #[test]
    fn ship_without_plan_is_clean() {
        let net = NetworkModel::infiniband();
        assert_eq!(
            net.ship(64, None),
            Delivery::Delivered {
                transfer_ns: net.transfer_ns(64),
                injected_ns: 0.0
            }
        );
    }

    #[test]
    fn ship_with_always_drop_plan_loses_the_message() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let net = NetworkModel::infiniband();
        let mut plan = FaultPlan::new(
            ChaosConfig {
                drop_prob: 1.0,
                ..ChaosConfig::quiet(1)
            },
            1,
        );
        assert_eq!(net.ship(64, Some(&mut plan)), Delivery::Dropped);
    }

    #[test]
    fn assignment_bytes_count_payload() {
        let a = Assignment {
            node_id: 1,
            bounds: vec![
                BoundChange {
                    var: 0,
                    lb: 0.0,
                    ub: 1.0
                };
                3
            ],
            warm_basis: Some(Basis::with_basic_cols(vec![0, 1], 4)),
            incumbent: f64::NEG_INFINITY,
        };
        assert_eq!(a.bytes(), 16 + 3 * 24 + (2 * 8 + 4));
        let bare = Assignment {
            node_id: 1,
            bounds: vec![],
            warm_basis: None,
            incumbent: 0.0,
        };
        assert_eq!(bare.bytes(), 16);
    }

    #[test]
    fn report_bytes_by_outcome() {
        let inf = NodeReport {
            node_id: 0,
            outcome: NodeOutcome::Infeasible,
            eval_ns: 1.0,
            lp_iterations: 1,
            heur: None,
        };
        assert_eq!(inf.bytes(), 32);
        let feas = NodeReport {
            node_id: 0,
            outcome: NodeOutcome::IntegerFeasible {
                internal: 5.0,
                x: vec![1.0; 4],
            },
            eval_ns: 1.0,
            lp_iterations: 1,
            heur: None,
        };
        assert_eq!(feas.bytes(), 32 + 8 + 32);
        // A ridden-along heuristic candidate pays for its point.
        let with_heur = NodeReport {
            heur: Some((4.0, vec![1.0; 4])),
            ..inf.clone()
        };
        assert_eq!(with_heur.bytes(), 32 + 8 + 32);
    }

    #[test]
    fn hierarchy_control_messages_are_frontier_independent() {
        let small = LoadSummary {
            group: 0,
            open: 2,
            best_bound: 1.0,
        };
        let huge = LoadSummary {
            group: 3,
            open: 1 << 20,
            best_bound: 9.0,
        };
        // A summary costs the same no matter how deep the backlog is.
        assert_eq!(small.bytes(), huge.bytes());
        let upd = IncumbentUpdate {
            value: 5.0,
            x: vec![1.0; 10],
        };
        assert_eq!(upd.bytes(), 16 + 80);
        // Broadcasts strip the point.
        assert!(INCUMBENT_BROADCAST_BYTES < upd.bytes());
        let bc = BoundChange {
            var: 0,
            lb: 0.0,
            ub: 1.0,
        };
        assert_eq!(subtree_bytes(&[bc; 3]), 16 + 72);
        assert_eq!(subtree_bytes(&[]), 16);
    }

    #[test]
    fn basis_bytes_counts_statuses() {
        let b = Basis::with_basic_cols(vec![0], 3);
        // 1 basic col (8) + statuses: one Basic (9) + two nonbasic (1 each).
        assert_eq!(basis_bytes(&b), 8 + 9 + 2);
    }
}
