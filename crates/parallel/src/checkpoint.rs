//! Consistent checkpoints of a parallel search (Sections 2.1, 2.3).
//!
//! A [`Checkpoint`] is the *distributed consistent snapshot* of the paper:
//! the set of open subproblems — including those being evaluated on workers
//! and those whose reports are in transit — plus the incumbent. Solving
//! only the checkpointed subproblems preserves the optimum, which is
//! exactly the UG framework's "check-pointing and restarting mechanism".

use gmip_lp::BoundChange;

/// A restartable snapshot of outstanding work.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Open subproblems, each as its cumulative bound changes from the root.
    pub frontier: Vec<Vec<BoundChange>>,
    /// Incumbent at capture time: (internal maximize objective, point).
    pub incumbent: Option<(f64, Vec<f64>)>,
}

impl Checkpoint {
    /// Creates a checkpoint.
    pub fn new(frontier: Vec<Vec<BoundChange>>, incumbent: Option<(f64, Vec<f64>)>) -> Self {
        Self {
            frontier,
            incumbent,
        }
    }

    /// Number of outstanding subproblems.
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether no work remains (search was complete at capture).
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Merges per-group checkpoints into one cluster-wide snapshot: the
    /// frontier is the union of the parts' frontiers and the incumbent is
    /// the best (largest internal objective) any part carries. This is how
    /// the hierarchical supervisor materializes a consistent global
    /// checkpoint from sub-supervisor snapshots without shipping trees —
    /// each group contributes only the subproblems it owns.
    pub fn merge(parts: impl IntoIterator<Item = Checkpoint>) -> Checkpoint {
        let mut frontier = Vec::new();
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        for part in parts {
            frontier.extend(part.frontier);
            if let Some((v, x)) = part.incumbent {
                if incumbent.as_ref().is_none_or(|(best, _)| v > *best) {
                    incumbent = Some((v, x));
                }
            }
        }
        Checkpoint::new(frontier, incumbent)
    }

    /// Whether the subproblem described by `bounds` lies inside the region
    /// this checkpoint covers: some frontier entry is an *ancestor prefix*
    /// of `bounds` (bound changes accumulate root-to-leaf, so a node's
    /// ancestors are exactly the prefixes of its change list). This is the
    /// recovery invariant: every subproblem lost to a fault after the
    /// checkpoint descends from a node the checkpoint holds, so restarting
    /// from it can never lose the optimum.
    pub fn covers(&self, bounds: &[BoundChange]) -> bool {
        self.frontier.iter().any(|f| {
            bounds.len() >= f.len()
                && f.iter()
                    .zip(bounds)
                    .all(|(a, b)| a.var == b.var && a.lb == b.lb && a.ub == b.ub)
        })
    }

    /// Serialized-size estimate (what a restart file would occupy / what a
    /// checkpoint broadcast would cost on the wire).
    pub fn bytes(&self) -> usize {
        let frontier: usize = self.frontier.iter().map(|b| 8 + b.len() * 24).sum();
        let inc = self
            .incumbent
            .as_ref()
            .map(|(_, x)| 8 + x.len() * 8)
            .unwrap_or(0);
        16 + frontier + inc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{solve_parallel, ParallelConfig, Supervisor};
    use gmip_core::MipStatus;
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    #[test]
    fn bytes_accounting() {
        let c = Checkpoint::new(
            vec![
                vec![
                    BoundChange {
                        var: 0,
                        lb: 0.0,
                        ub: 1.0
                    };
                    2
                ];
                3
            ],
            Some((5.0, vec![1.0; 4])),
        );
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.bytes(), 16 + 3 * (8 + 48) + (8 + 32));
    }

    #[test]
    fn covers_is_ancestor_prefix_inclusion() {
        let bc = |var: usize, lb: f64, ub: f64| BoundChange { var, lb, ub };
        let c = Checkpoint::new(
            vec![
                vec![bc(0, 1.0, 2.0)],
                vec![bc(1, 0.0, 0.0), bc(2, 3.0, 5.0)],
            ],
            None,
        );
        // Exact frontier entries are covered.
        assert!(c.covers(&[bc(0, 1.0, 2.0)]));
        // Descendants (frontier entry is a strict prefix) are covered.
        assert!(c.covers(&[bc(0, 1.0, 2.0), bc(4, 0.0, 1.0)]));
        assert!(c.covers(&[bc(1, 0.0, 0.0), bc(2, 3.0, 5.0), bc(0, 0.0, 0.0)]));
        // Siblings and mismatched prefixes are not.
        assert!(!c.covers(&[bc(0, 0.0, 0.0)]));
        assert!(!c.covers(&[bc(1, 0.0, 0.0)]), "partial prefix only");
        assert!(!c.covers(&[]), "the root precedes every checkpoint");
        // An empty frontier entry (the root) covers everything.
        assert!(Checkpoint::new(vec![vec![]], None).covers(&[bc(9, 0.0, 1.0)]));
    }

    #[test]
    fn merge_unions_frontiers_and_keeps_best_incumbent() {
        let bc = |var: usize| BoundChange {
            var,
            lb: 0.0,
            ub: 1.0,
        };
        let a = Checkpoint::new(vec![vec![bc(0)]], Some((3.0, vec![1.0])));
        let b = Checkpoint::new(vec![vec![bc(1)], vec![bc(2)]], Some((7.0, vec![2.0])));
        let c = Checkpoint::new(vec![], None);
        let merged = Checkpoint::merge([a, b, c]);
        assert_eq!(merged.len(), 3);
        assert!(merged.covers(&[bc(1), bc(9)]));
        let (v, x) = merged.incumbent.expect("best part incumbent survives");
        assert_eq!(v, 7.0);
        assert_eq!(x, vec![2.0]);
        assert!(Checkpoint::merge(std::iter::empty()).is_empty());
    }

    /// The paper's restart property: resuming from a mid-search snapshot
    /// reaches the same optimum.
    #[test]
    fn restart_from_snapshot_preserves_optimum() {
        let m = knapsack(16, 0.5, 11);
        let expected = knapsack_brute_force(&m);
        // Run with a tight node limit to stop mid-search, snapshotting.
        let cfg = ParallelConfig {
            workers: 2,
            gpu_mem: 1 << 24,
            node_limit: 6,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let partial = solve_parallel(&m, cfg.clone()).unwrap();
        assert_eq!(partial.status, MipStatus::NodeLimit);
        let snap = partial
            .snapshots
            .last()
            .expect("snapshots were configured")
            .clone();
        assert!(!snap.is_empty(), "mid-search snapshot must carry work");
        // Restart from the snapshot with no node limit.
        let cfg2 = ParallelConfig {
            node_limit: 100_000,
            checkpoint_every: None,
            ..cfg
        };
        let resumed = Supervisor::restore(m.clone(), cfg2, &snap)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(resumed.status, MipStatus::Optimal);
        assert!(
            (resumed.objective - expected).abs() < 1e-6,
            "resumed {} vs expected {expected}",
            resumed.objective
        );
    }

    /// A snapshot taken at completion is empty but still carries the
    /// incumbent.
    #[test]
    fn final_snapshot_is_empty_with_incumbent() {
        let m = knapsack(10, 0.5, 4);
        let cfg = ParallelConfig {
            workers: 2,
            gpu_mem: 1 << 24,
            ..Default::default()
        };
        let sup = Supervisor::new(m.clone(), cfg.clone()).unwrap();
        let r = sup.run().unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        // Fresh supervisor, full run, then snapshot — rebuild to access it.
        let sup2 = Supervisor::new(m, cfg).unwrap();
        let early = sup2.snapshot();
        // Before any work, the snapshot is exactly the root.
        assert_eq!(early.len(), 1);
        assert!(early.frontier[0].is_empty());
    }
}
