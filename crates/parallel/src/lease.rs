//! Multi-job rank leasing: carving one cluster into per-job shards.
//!
//! A serving front-end runs many concurrent solves against one pool of
//! worker ranks. Rather than giving every job the whole machine, the pool
//! hands out *leases* — disjoint rank subsets sized to the job — and
//! reclaims them at completion, so independent jobs shard the cluster the
//! way UG shards one tree across ranks. Allocation is deterministic
//! (lowest free ranks first, monotonically increasing lease ids), which
//! keeps any discrete-event schedule built on top byte-reproducible.

use std::collections::BTreeSet;

/// A granted rank subset. Hold it until the job completes, then hand it
/// back with [`RankPool::release`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankLease {
    /// Monotone lease id (unique across the pool's lifetime).
    pub id: u64,
    /// The granted rank ids, ascending.
    pub ranks: Vec<usize>,
}

impl RankLease {
    /// Number of ranks granted.
    pub fn width(&self) -> usize {
        self.ranks.len()
    }
}

/// A deterministic allocator over a fixed set of cluster ranks.
#[derive(Debug)]
pub struct RankPool {
    free: BTreeSet<usize>,
    total: usize,
    next_id: u64,
    leased_out: usize,
}

impl RankPool {
    /// A pool over ranks `0..total`.
    pub fn new(total: usize) -> Self {
        assert!(total >= 1, "a rank pool needs at least one rank");
        Self {
            free: (0..total).collect(),
            total,
            next_id: 0,
            leased_out: 0,
        }
    }

    /// Total ranks managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Ranks currently free.
    pub fn free(&self) -> usize {
        self.free.len()
    }

    /// Ranks currently leased out.
    pub fn leased(&self) -> usize {
        self.leased_out
    }

    /// Grants the `width` lowest free ranks, or `None` if fewer are free.
    /// `width` is clamped to the pool size so an oversized job degrades to
    /// whole-machine execution instead of deadlocking.
    pub fn lease(&mut self, width: usize) -> Option<RankLease> {
        let width = width.clamp(1, self.total);
        if self.free.len() < width {
            return None;
        }
        let ranks: Vec<usize> = self.free.iter().take(width).copied().collect();
        for r in &ranks {
            self.free.remove(r);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.leased_out += width;
        Some(RankLease { id, ranks })
    }

    /// Returns a lease's ranks to the free set.
    pub fn release(&mut self, lease: RankLease) {
        for r in lease.ranks {
            assert!(r < self.total, "foreign rank {r} returned to pool");
            assert!(self.free.insert(r), "rank {r} released twice");
            self.leased_out -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_lowest_free_ranks_first() {
        let mut pool = RankPool::new(4);
        let a = pool.lease(2).unwrap();
        assert_eq!(a.ranks, vec![0, 1]);
        let b = pool.lease(2).unwrap();
        assert_eq!(b.ranks, vec![2, 3]);
        assert!(pool.lease(1).is_none());
        pool.release(a);
        let c = pool.lease(1).unwrap();
        assert_eq!(c.ranks, vec![0]);
        assert_eq!(pool.free(), 1);
        assert_eq!(pool.leased(), 3);
    }

    #[test]
    fn oversized_requests_clamp_to_the_pool() {
        let mut pool = RankPool::new(2);
        let a = pool.lease(16).unwrap();
        assert_eq!(a.ranks, vec![0, 1]);
        pool.release(a);
        assert_eq!(pool.free(), 2);
    }

    #[test]
    fn lease_ids_are_monotone() {
        let mut pool = RankPool::new(3);
        let a = pool.lease(1).unwrap();
        let b = pool.lease(1).unwrap();
        pool.release(a);
        let c = pool.lease(1).unwrap();
        assert_eq!((0, 1, 2), {
            let ids = (0, b.id, c.id);
            (ids.0, ids.1 as usize, ids.2 as usize)
        });
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_is_a_bug() {
        let mut pool = RankPool::new(2);
        let a = pool.lease(1).unwrap();
        pool.release(a.clone());
        pool.release(a);
    }
}
