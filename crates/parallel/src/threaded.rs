//! Real-thread execution of the supervisor–worker pattern.
//!
//! The discrete-event [`crate::supervisor`] gives deterministic *simulated*
//! makespans; this module runs the same coordination over actual OS threads
//! and crossbeam channels — true MIMD host parallelism with asynchronous
//! report arrival, the way a Pthreads-based `FiberSCIP`-style deployment
//! would behave (Section 2.3). Results are nondeterministic in *path* but
//! must be deterministic in *answer*; the tests assert exactly that.
//!
//! With [`ParallelConfig::chaos`] set, the fault plan's *thread crash
//! points* kill worker threads mid-run (silently, with an assignment in
//! hand); the coordinator detects the dead thread by report timeout,
//! reopens its subproblem, and respawns a clean replacement — the same
//! recovery protocol as the discrete-event supervisor, on real threads.

use crate::chaos::FaultPlan;
use crate::comm::{Assignment, NodeOutcome, NodeReport};
use crate::supervisor::{ParPayload, ParallelConfig};
use crate::worker::Worker;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gmip_core::MipStatus;
use gmip_lp::{BoundChange, LpError, LpResult};
use gmip_problems::{MipInstance, Objective};
use gmip_tree::{NodeState, SearchTree};
use std::collections::HashMap;
use std::time::Duration;

enum WorkerMsg {
    Work(Assignment),
    Shutdown,
}

/// How long the coordinator waits on the report channel before suspecting
/// a dead worker thread (only when chaos is enabled).
const HEARTBEAT: Duration = Duration::from_millis(25);

/// Spawns one worker thread with its own work channel. `crash_at:
/// Some(k)` makes the thread die silently when handed its `k+1`-th
/// assignment (the injected fault); replacements are spawned with `None`.
fn spawn_worker(
    id: usize,
    instance: &MipInstance,
    cfg: &ParallelConfig,
    rtx: Sender<Result<NodeReport, LpError>>,
    crash_at: Option<usize>,
) -> (Sender<WorkerMsg>, std::thread::JoinHandle<()>) {
    let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
    let inst = instance.clone();
    let gpu_cost = cfg.gpu_cost.clone();
    let (gpu_mem, lp_cfg, int_tol) = (cfg.gpu_mem, cfg.lp.clone(), cfg.int_tol);
    let lanes = cfg.batched_lanes;
    let fo_lanes = cfg.first_order_lanes;
    let (propagate, heur_period) = (cfg.propagate, cfg.heuristic_period);
    let exec_backend = cfg.backend;
    let handle = std::thread::spawn(move || {
        let mut worker = match Worker::new_with_backend(
            id,
            &inst,
            gpu_cost,
            gpu_mem,
            lp_cfg,
            int_tol,
            lanes,
            fo_lanes,
            exec_backend,
        ) {
            Ok(w) => w.with_propagation(propagate, heur_period),
            Err(e) => {
                let _ = rtx.send(Err(e));
                return;
            }
        };
        let mut handled = 0usize;
        while let Ok(WorkerMsg::Work(a)) = rx.recv() {
            if crash_at == Some(handled) {
                return; // injected crash: die with the assignment in hand
            }
            handled += 1;
            if rtx.send(worker.evaluate(&a)).is_err() {
                break;
            }
        }
    });
    (tx, handle)
}

/// Result of a threaded parallel solve.
#[derive(Debug)]
pub struct ThreadedResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Wall-clock milliseconds of the parallel section.
    pub wall_ms: f64,
    /// Worker threads respawned after an injected crash (0 without chaos).
    pub respawns: usize,
    /// Subproblems reopened after their worker died (0 without chaos).
    pub reassignments: usize,
}

/// Solves `instance` with `cfg.workers` OS threads.
pub fn solve_threaded(instance: &MipInstance, cfg: &ParallelConfig) -> LpResult<ThreadedResult> {
    let started = std::time::Instant::now();

    let chaos_on = cfg.chaos.is_some();
    let crash_points: Vec<Option<usize>> = match &cfg.chaos {
        Some(chaos) => FaultPlan::new(chaos.clone(), cfg.workers).thread_crash_points(cfg.workers),
        None => vec![None; cfg.workers],
    };

    let (report_tx, report_rx): (Sender<Result<NodeReport, LpError>>, Receiver<_>) = unbounded();
    let mut work_txs: Vec<Sender<WorkerMsg>> = Vec::new();
    let mut handles = Vec::new();
    for id in 0..cfg.workers {
        let (tx, handle) = spawn_worker(id, instance, cfg, report_tx.clone(), crash_points[id]);
        work_txs.push(tx);
        handles.push(handle);
    }
    // Under chaos the coordinator keeps a sender so the report channel never
    // disconnects while it still needs to respawn workers.
    let keeper = chaos_on.then(|| report_tx.clone());
    drop(report_tx);

    let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
    let mut tree: SearchTree<ParPayload> = SearchTree::with_root(ParPayload::default(), node_bytes);
    let mut idle: Vec<usize> = (0..cfg.workers).collect();
    let mut assigned: HashMap<usize, usize> = HashMap::new(); // node → worker
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut worker_error: Option<LpError> = None;
    let mut respawns = 0usize;
    let mut reassignments = 0usize;

    loop {
        // Dispatch best-bound nodes to idle workers.
        while !idle.is_empty() && nodes + assigned.len() < cfg.node_limit {
            let Some(id) = tree.active_ids().iter().copied().min_by(|&a, &b| {
                tree.node(b)
                    .bound
                    .partial_cmp(&tree.node(a).bound)
                    .expect("bounds are never NaN")
                    .then(a.cmp(&b))
            }) else {
                break;
            };
            let w = idle.pop().expect("checked non-empty");
            tree.begin_evaluation(id);
            let node = tree.node(id);
            let a = Assignment {
                node_id: id,
                bounds: node.data.bounds.clone(),
                warm_basis: if cfg.warm_start {
                    node.data.warm_basis.clone()
                } else {
                    None
                },
                incumbent: incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY),
            };
            assigned.insert(id, w);
            work_txs[w]
                .send(WorkerMsg::Work(a))
                .expect("worker thread alive");
        }
        if assigned.is_empty() {
            break; // nothing running, nothing dispatchable
        }
        // Block for the next report. Under chaos, wake periodically to
        // check whether a worker thread died with an assignment in hand.
        let recv_result = if chaos_on {
            match report_rx.recv_timeout(HEARTBEAT) {
                Ok(r) => Some(r),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("keeper holds a sender while chaos is on")
                }
            }
        } else {
            Some(report_rx.recv().expect("workers alive while in flight"))
        };
        let report = match recv_result {
            Some(Ok(r)) => r,
            Some(Err(e)) => {
                worker_error = Some(e);
                break;
            }
            None => {
                // Heartbeat timeout: reopen subproblems held by dead
                // threads and respawn clean (crash-free) replacements.
                let stuck: Vec<(usize, usize)> = assigned.iter().map(|(&n, &w)| (n, w)).collect();
                for (node, w) in stuck {
                    if !handles[w].is_finished() {
                        continue; // still computing, just slow
                    }
                    assigned.remove(&node);
                    if tree.reopen(node) {
                        reassignments += 1;
                    }
                    let rtx = keeper.clone().expect("chaos keeps a sender");
                    let (tx, handle) = spawn_worker(w, instance, cfg, rtx, None);
                    work_txs[w] = tx;
                    let dead = std::mem::replace(&mut handles[w], handle);
                    let _ = dead.join();
                    respawns += 1;
                    idle.push(w);
                }
                continue;
            }
        };
        nodes += 1;
        let id = report.node_id;
        let w = assigned.remove(&id).expect("node was assigned");
        idle.push(w);

        // Install any ridden-along fix-and-propagate candidate first so the
        // node outcome below prunes against the tightest incumbent.
        if let Some((hv, hx)) = report.heur.clone() {
            let cur = incumbent
                .as_ref()
                .map(|(v, _)| *v)
                .unwrap_or(f64::NEG_INFINITY);
            if hv > cur {
                incumbent = Some((hv, hx));
                tree.prune_dominated(hv, cfg.prune_tol);
            }
        }
        match report.outcome {
            NodeOutcome::Infeasible => tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY),
            NodeOutcome::Pruned { bound } => tree.settle(id, NodeState::Pruned, bound),
            NodeOutcome::IntegerFeasible { internal: iv, x } => {
                tree.settle(id, NodeState::Feasible, iv);
                let cur = incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY);
                if iv > cur {
                    incumbent = Some((iv, x));
                    tree.prune_dominated(iv, cfg.prune_tol);
                }
            }
            NodeOutcome::Branch {
                bound,
                var,
                value,
                basis,
            } => {
                let cur = incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY);
                if bound <= cur + cfg.prune_tol {
                    tree.settle(id, NodeState::Pruned, bound);
                } else {
                    let parent_bounds = tree.node(id).data.bounds.clone();
                    let (mut lo, mut hi) = (instance.vars[var].lb, instance.vars[var].ub);
                    for bc in &parent_bounds {
                        if bc.var == var {
                            lo = bc.lb;
                            hi = bc.ub;
                        }
                    }
                    let mk = |up: bool| {
                        let mut b = parent_bounds.clone();
                        let label = if up {
                            b.push(BoundChange {
                                var,
                                lb: value.ceil(),
                                ub: hi,
                            });
                            format!("x{var} ≥ {}", value.ceil())
                        } else {
                            b.push(BoundChange {
                                var,
                                lb: lo,
                                ub: value.floor(),
                            });
                            format!("x{var} ≤ {}", value.floor())
                        };
                        (
                            label,
                            ParPayload {
                                bounds: b,
                                warm_basis: basis.clone(),
                                partition: 0,
                            },
                        )
                    };
                    tree.branch(id, bound, vec![mk(false), mk(true)]);
                }
            }
        }
    }

    for tx in &work_txs {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    drop(work_txs);
    for h in handles {
        let _ = h.join();
    }
    if let Some(e) = worker_error {
        return Err(e);
    }

    let status = if tree.has_active() {
        MipStatus::NodeLimit
    } else if incumbent.is_some() {
        MipStatus::Optimal
    } else {
        MipStatus::Infeasible
    };
    let (objective, x) = match incumbent {
        Some((v, p)) => (
            match instance.objective {
                Objective::Maximize => v,
                Objective::Minimize => -v,
            },
            p,
        ),
        None => (f64::NAN, Vec::new()),
    };
    Ok(ThreadedResult {
        status,
        objective,
        x,
        nodes,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        respawns,
        reassignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{infeasible_instance, textbook_mip};
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    fn cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            gpu_mem: 1 << 24,
            ..Default::default()
        }
    }

    #[test]
    fn threaded_matches_brute_force() {
        let m = knapsack(12, 0.5, 3);
        let expected = knapsack_brute_force(&m);
        let r = solve_threaded(&m, &cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(r.nodes > 0);
        assert!(r.wall_ms >= 0.0);
    }

    #[test]
    fn threaded_textbook_and_infeasible() {
        let r = solve_threaded(&textbook_mip(), &cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        let r = solve_threaded(&infeasible_instance(), &cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
    }

    #[test]
    fn answer_stable_across_repeated_nondeterministic_runs() {
        let m = knapsack(14, 0.5, 8);
        let expected = knapsack_brute_force(&m);
        for _ in 0..3 {
            let r = solve_threaded(&m, &cfg(4)).unwrap();
            assert!((r.objective - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn injected_thread_crashes_are_respawned_and_answer_unchanged() {
        use crate::chaos::ChaosConfig;
        let m = knapsack(14, 0.5, 8);
        let expected = knapsack_brute_force(&m);
        let mut c = cfg(3);
        c.chaos = Some(ChaosConfig {
            crashes: 3,
            ..ChaosConfig::quiet(7)
        });
        let r = solve_threaded(&m, &c).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(
            r.respawns >= 1,
            "crash points must kill at least one thread"
        );
        assert!(r.reassignments >= 1, "a dead worker held a subproblem");
    }

    #[test]
    fn node_limit_respected_threaded() {
        let m = knapsack(24, 0.5, 2);
        let mut c = cfg(2);
        c.node_limit = 4;
        let r = solve_threaded(&m, &c).unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
    }
}
