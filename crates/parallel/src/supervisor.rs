//! The supervisor: a discrete-event simulated Supervisor–Worker parallel
//! branch and bound (the UG coordination pattern of Section 2.3).
//!
//! The supervisor owns the tree (Strategy 2: "the branch-and-cut tree is
//! stored in the CPU main memory"), hands subproblems to worker ranks over
//! a modeled interconnect, and merges reports. Time is *simulated*: each
//! worker's LP cost comes from its own simulated device, messages pay the
//! [`NetworkModel`], and the makespan is the supervisor's event clock — so
//! speedup curves are deterministic and independent of the host machine.

use crate::checkpoint::Checkpoint;
use crate::comm::{Assignment, NetworkModel, NodeOutcome, NodeReport};
use crate::worker::Worker;
use gmip_core::MipStatus;
use gmip_gpu::CostModel;
use gmip_lp::{Basis, BoundChange, LpConfig, LpResult};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::{names, Event as TraceSpan, MetricsRegistry, Track};
use gmip_tree::{NodeId, NodeState, SearchTree, TreeStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work-distribution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Any idle worker receives the globally best open node.
    Dynamic,
    /// Nodes are statically partitioned by their depth-1 ancestor; a worker
    /// only receives nodes of its own partition (idles otherwise).
    Static,
}

/// Configuration of a parallel solve.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of worker ranks.
    pub workers: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Per-worker device cost model.
    pub gpu_cost: CostModel,
    /// Per-worker device memory.
    pub gpu_mem: usize,
    /// LP tolerances.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
    /// Work-distribution mode.
    pub load_balance: LoadBalance,
    /// Breadth-first ramp-up until every worker has work.
    pub ramp_up: bool,
    /// Ship parent bases for warm starts.
    pub warm_start: bool,
    /// Take a consistent snapshot every `n` nodes (None = never).
    pub checkpoint_every: Option<usize>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            network: NetworkModel::infiniband(),
            gpu_cost: CostModel::gpu_pcie(),
            gpu_mem: 1 << 30,
            lp: LpConfig::standard(),
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
            load_balance: LoadBalance::Dynamic,
            ramp_up: true,
            warm_start: true,
            checkpoint_every: None,
        }
    }
}

/// Per-node payload in the supervisor's tree.
#[derive(Debug, Clone, Default)]
pub struct ParPayload {
    /// Cumulative bound changes.
    pub bounds: Vec<BoundChange>,
    /// Warm-start basis from the parent.
    pub warm_basis: Option<Basis>,
    /// Static-partition owner (worker id).
    pub partition: usize,
}

/// Aggregated statistics of a parallel run.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Simulated makespan, ns.
    pub makespan_ns: f64,
    /// Nodes evaluated across all workers.
    pub nodes: usize,
    /// LP iterations across all workers.
    pub lp_iterations: usize,
    /// Messages exchanged.
    pub messages: usize,
    /// Total message bytes.
    pub message_bytes: usize,
    /// Per-worker busy simulated time.
    pub worker_busy_ns: Vec<f64>,
    /// Mean worker idle fraction of the makespan.
    pub idle_fraction: f64,
    /// Consistent snapshots taken.
    pub checkpoints: usize,
    /// Final tree counters.
    pub tree: TreeStats,
    /// Unified metrics ledger: `cluster.*` counters plus every rank's merged
    /// `gpu.*`/`lp.*` series.
    pub metrics: MetricsRegistry,
}

/// Result of a parallel solve.
#[derive(Debug)]
pub struct ParallelResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Statistics.
    pub stats: ParallelStats,
    /// Snapshots captured during the run (if configured).
    pub snapshots: Vec<Checkpoint>,
}

#[derive(Debug, PartialEq)]
struct Event {
    time: f64,
    worker: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.worker.cmp(&other.worker))
    }
}

/// The discrete-event supervisor.
#[derive(Debug)]
pub struct Supervisor {
    instance: MipInstance,
    cfg: ParallelConfig,
    tree: SearchTree<ParPayload>,
    workers: Vec<Worker>,
    /// (worker → in-flight report), evaluated at dispatch, delivered at the
    /// event time.
    in_flight: Vec<Option<NodeReport>>,
    events: BinaryHeap<Reverse<Event>>,
    now: f64,
    incumbent: Option<(f64, Vec<f64>)>,
    stats: ParallelStats,
    snapshots: Vec<Checkpoint>,
}

impl Supervisor {
    /// Builds a supervisor and its worker ranks.
    pub fn new(instance: MipInstance, cfg: ParallelConfig) -> LpResult<Self> {
        assert!(cfg.workers >= 1, "need at least one worker");
        let mut workers = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            workers.push(Worker::new(
                id,
                &instance,
                cfg.gpu_cost.clone(),
                cfg.gpu_mem,
                cfg.lp.clone(),
                cfg.int_tol,
            )?);
        }
        let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
        let in_flight = vec![None; cfg.workers];
        Ok(Self {
            instance,
            cfg,
            tree: SearchTree::with_root(ParPayload::default(), node_bytes),
            workers,
            in_flight,
            events: BinaryHeap::new(),
            now: 0.0,
            incumbent: None,
            stats: ParallelStats::default(),
            snapshots: Vec::new(),
        })
    }

    /// Seeds the frontier from a checkpoint instead of the root (restart).
    pub fn restore(
        instance: MipInstance,
        cfg: ParallelConfig,
        checkpoint: &Checkpoint,
    ) -> LpResult<Self> {
        let mut sup = Self::new(instance, cfg)?;
        // Expand the root into the checkpointed frontier.
        sup.tree.begin_evaluation(sup.tree.root());
        let children: Vec<(String, ParPayload)> = checkpoint
            .frontier
            .iter()
            .enumerate()
            .map(|(i, bounds)| {
                (
                    format!("ckpt{i}"),
                    ParPayload {
                        bounds: bounds.clone(),
                        warm_basis: None,
                        partition: i % sup.cfg.workers,
                    },
                )
            })
            .collect();
        sup.tree.branch(sup.tree.root(), f64::INFINITY, children);
        sup.incumbent = checkpoint.incumbent.clone();
        Ok(sup)
    }

    fn internal(&self, source: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => source,
            Objective::Minimize => -source,
        }
    }

    fn to_source(&self, internal: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => internal,
            Objective::Minimize => -internal,
        }
    }

    fn incumbent_internal(&self) -> f64 {
        self.incumbent
            .as_ref()
            .map(|(v, _)| *v)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Picks the next node for `worker` under the configured policy, or
    /// `None` if nothing eligible is open.
    fn pick_node(&self, worker: usize) -> Option<NodeId> {
        let in_flight_count = self.in_flight.iter().filter(|f| f.is_some()).count();
        let ramping =
            self.cfg.ramp_up && (self.tree.active_ids().len() + in_flight_count) < self.cfg.workers;
        let eligible = |id: &&NodeId| -> bool {
            match self.cfg.load_balance {
                LoadBalance::Dynamic => true,
                LoadBalance::Static => self.tree.node(**id).data.partition == worker,
            }
        };
        let ids = self.tree.active_ids();
        if ramping {
            // Breadth-first widening: shallowest node first.
            ids.iter()
                .filter(eligible)
                .min_by(|&&a, &&b| {
                    self.tree
                        .node(a)
                        .depth
                        .cmp(&self.tree.node(b).depth)
                        .then(a.cmp(&b))
                })
                .copied()
        } else {
            // Best bound first.
            ids.iter()
                .filter(eligible)
                .min_by(|&&a, &&b| {
                    self.tree
                        .node(b)
                        .bound
                        .partial_cmp(&self.tree.node(a).bound)
                        .expect("bounds are never NaN")
                        .then(a.cmp(&b))
                })
                .copied()
        }
    }

    /// Dispatches work to every idle worker. Returns how many were started.
    fn dispatch(&mut self) -> LpResult<usize> {
        let mut started = 0;
        for w in 0..self.workers.len() {
            if self.in_flight[w].is_some() || self.workers[w].busy_until > self.now {
                continue;
            }
            let Some(id) = self.pick_node(w) else {
                continue;
            };
            self.tree.begin_evaluation(id);
            let node = self.tree.node(id);
            let assignment = Assignment {
                node_id: id,
                bounds: node.data.bounds.clone(),
                warm_basis: if self.cfg.warm_start {
                    node.data.warm_basis.clone()
                } else {
                    None
                },
                incumbent: self.incumbent_internal(),
            };
            let send_ns = self.cfg.network.transfer_ns(assignment.bytes());
            self.stats.messages += 1;
            self.stats.message_bytes += assignment.bytes();
            self.stats
                .metrics
                .incr(names::CLUSTER_NODES_DISPATCHED, 1.0);
            // A dynamic pick landing off the node's static partition is a
            // load-balance migration (work stealing).
            if self.tree.node(id).data.partition != w {
                self.stats.metrics.incr(names::CLUSTER_MIGRATIONS, 1.0);
            }
            // Evaluate now (numerically); deliver at the modeled time.
            let report = self.workers[w].evaluate(&assignment)?;
            let reply_ns = self.cfg.network.transfer_ns(report.bytes());
            self.stats.messages += 1;
            self.stats.message_bytes += report.bytes();
            let done = self.now + send_ns + report.eval_ns + reply_ns;
            // Per-rank trace lane (lane 0 is the supervisor): the assignment
            // transfer, the device evaluation, and the report transfer render
            // as consecutive spans on the rank's timeline.
            let rank = Track::cluster_rank((w + 1) as u32);
            let (t0, a_bytes, r_bytes) = (self.now, assignment.bytes(), report.bytes());
            let (eval_ns, nid) = (report.eval_ns, id as u64);
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "recv", send_ns, t0)
                    .arg("node", nid)
                    .arg("bytes", a_bytes as u64)
            });
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "eval", eval_ns, t0 + send_ns).arg("node", nid)
            });
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "send", reply_ns, t0 + send_ns + eval_ns)
                    .arg("node", nid)
                    .arg("bytes", r_bytes as u64)
            });
            self.workers[w].busy_until = done;
            self.in_flight[w] = Some(report);
            self.events.push(Reverse(Event {
                time: done,
                worker: w,
            }));
            started += 1;
        }
        Ok(started)
    }

    /// Processes one delivered report.
    fn process(&mut self, worker: usize) {
        let report = self.in_flight[worker]
            .take()
            .expect("event implies an in-flight report");
        self.stats.nodes += 1;
        self.stats.lp_iterations += report.lp_iterations;
        let id = report.node_id;
        match report.outcome {
            NodeOutcome::Infeasible => {
                self.tree
                    .settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
            }
            NodeOutcome::Pruned { bound } => {
                self.tree.settle(id, NodeState::Pruned, bound);
            }
            NodeOutcome::IntegerFeasible { internal, x } => {
                self.tree.settle(id, NodeState::Feasible, internal);
                if internal > self.incumbent_internal() {
                    let mut p = x;
                    for j in self.instance.integral_indices() {
                        p[j] = p[j].round();
                    }
                    self.incumbent = Some((internal, p));
                    self.tree.prune_dominated(internal, self.cfg.prune_tol);
                    let (ts, obj) = (self.now, self.to_source(internal));
                    gmip_trace::record(|| {
                        TraceSpan::instant(Track::cluster_rank(0), "incumbent", ts)
                            .arg("objective", obj)
                            .arg("worker", worker as u64)
                    });
                }
            }
            NodeOutcome::Branch {
                bound,
                var,
                value,
                basis,
            } => {
                if bound <= self.incumbent_internal() + self.cfg.prune_tol {
                    self.tree.settle(id, NodeState::Pruned, bound);
                    return;
                }
                let parent = self.tree.node(id);
                let parent_partition = parent.data.partition;
                let parent_depth = parent.depth;
                let bounds = parent.data.bounds.clone();
                let (mut lo, mut hi) = (self.instance.vars[var].lb, self.instance.vars[var].ub);
                for bc in &bounds {
                    if bc.var == var {
                        lo = bc.lb;
                        hi = bc.ub;
                    }
                }
                let name = self.instance.vars[var].name.clone();
                let mk = |up: bool, part: usize| {
                    let mut child_bounds = bounds.clone();
                    let label = if up {
                        child_bounds.push(BoundChange {
                            var,
                            lb: value.ceil(),
                            ub: hi,
                        });
                        format!("{name} ≥ {}", value.ceil())
                    } else {
                        child_bounds.push(BoundChange {
                            var,
                            lb: lo,
                            ub: value.floor(),
                        });
                        format!("{name} ≤ {}", value.floor())
                    };
                    (
                        label,
                        ParPayload {
                            bounds: child_bounds,
                            warm_basis: basis.clone(),
                            partition: part,
                        },
                    )
                };
                // Static partitioning: spread subtrees over all workers by
                // binary fan-out near the root (depth d covers 2^(d+1)
                // partitions), then inherit — every worker owns a subtree
                // once the frontier is wide enough.
                let spread =
                    parent_depth < 63 && (1usize << (parent_depth + 1)) <= self.cfg.workers * 2;
                let children = if spread {
                    vec![
                        mk(false, (parent_partition * 2) % self.cfg.workers.max(1)),
                        mk(true, (parent_partition * 2 + 1) % self.cfg.workers.max(1)),
                    ]
                } else {
                    vec![mk(false, parent_partition), mk(true, parent_partition)]
                };
                self.tree.branch(id, bound, children);
            }
        }
    }

    /// Captures the distributed consistent snapshot *now*: all open nodes
    /// plus nodes currently being evaluated or whose reports are in transit
    /// (the two parallel complications of Section 2.1).
    pub fn snapshot(&self) -> Checkpoint {
        let mut frontier: Vec<Vec<BoundChange>> = Vec::new();
        for n in self.tree.iter() {
            if n.state.is_open() {
                frontier.push(n.data.bounds.clone());
            }
        }
        Checkpoint::new(frontier, self.incumbent.clone())
    }

    /// Runs to completion (or node limit); consumes the supervisor.
    pub fn run(mut self) -> LpResult<ParallelResult> {
        let mut last_checkpoint_at = 0usize;
        let status = loop {
            if self.stats.nodes >= self.cfg.node_limit {
                break MipStatus::NodeLimit;
            }
            self.dispatch()?;
            let Some(Reverse(ev)) = self.events.pop() else {
                // No in-flight work and dispatch found nothing: done.
                break if self.incumbent.is_some() {
                    MipStatus::Optimal
                } else {
                    MipStatus::Infeasible
                };
            };
            // Clock is monotone even when checkpoint serialization pushed it
            // past an already-scheduled completion.
            self.now = self.now.max(ev.time);
            self.process(ev.worker);
            if let Some(every) = self.cfg.checkpoint_every {
                if self.stats.nodes >= last_checkpoint_at + every {
                    last_checkpoint_at = self.stats.nodes;
                    let snap = self.snapshot();
                    // Stop-the-world serialization: the supervisor's clock
                    // advances while the snapshot is written (~1 GB/s).
                    let (t0, dur) = (self.now, 2_000.0 + snap.bytes() as f64);
                    let (ck_bytes, frontier) = (snap.bytes() as u64, snap.frontier.len() as u64);
                    gmip_trace::record(|| {
                        TraceSpan::complete(Track::cluster_rank(0), "checkpoint", dur, t0)
                            .arg("bytes", ck_bytes)
                            .arg("frontier", frontier)
                    });
                    self.now += dur;
                    self.snapshots.push(snap);
                    self.stats.checkpoints += 1;
                }
            }
        };
        // Drain bookkeeping.
        self.stats.makespan_ns = self.now;
        self.stats.worker_busy_ns = self.workers.iter().map(|w| w.busy_ns).collect();
        if self.now > 0.0 {
            let busy_sum: f64 = self.stats.worker_busy_ns.iter().sum();
            self.stats.idle_fraction = 1.0 - busy_sum / (self.now * self.workers.len() as f64);
        }
        self.stats.tree = self.tree.stats().clone();
        // Fold the communication counters and every rank's device/LP ledger
        // into the unified metrics registry.
        let (msgs, bytes, ckpts) = (
            self.stats.messages,
            self.stats.message_bytes,
            self.stats.checkpoints,
        );
        self.stats
            .metrics
            .incr(names::CLUSTER_MESSAGES, msgs as f64);
        self.stats.metrics.incr(names::CLUSTER_BYTES, bytes as f64);
        self.stats
            .metrics
            .incr(names::CLUSTER_CHECKPOINTS, ckpts as f64);
        for w in &self.workers {
            self.stats.metrics.merge(&w.metrics());
        }
        let (objective, x) = match &self.incumbent {
            Some((v, p)) => (self.to_source(*v), p.clone()),
            None => (f64::NAN, Vec::new()),
        };
        let _ = self.internal(0.0); // keep helper used in both senses
        Ok(ParallelResult {
            status,
            objective,
            x,
            stats: self.stats,
            snapshots: self.snapshots,
        })
    }
}

/// Convenience: solve an instance on a simulated cluster.
pub fn solve_parallel(instance: &MipInstance, cfg: ParallelConfig) -> LpResult<ParallelResult> {
    Supervisor::new(instance.clone(), cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{infeasible_instance, textbook_mip};
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    fn cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            gpu_mem: 1 << 24,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_brute_force() {
        for seed in 0..3 {
            let m = knapsack(12, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_parallel(&m, cfg(4)).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn textbook_mip_parallel() {
        let r = solve_parallel(&textbook_mip(), cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.stats.messages > 0);
        assert!(r.stats.makespan_ns > 0.0);
        assert_eq!(r.stats.worker_busy_ns.len(), 2);
    }

    #[test]
    fn infeasible_detected_in_parallel() {
        let r = solve_parallel(&infeasible_instance(), cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.objective.is_nan());
    }

    #[test]
    fn more_workers_do_not_change_the_answer() {
        let m = knapsack(14, 0.5, 7);
        let expected = knapsack_brute_force(&m);
        for w in [1, 2, 4, 8] {
            let r = solve_parallel(&m, cfg(w)).unwrap();
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "{w} workers: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn speedup_with_more_workers() {
        let m = knapsack(18, 0.5, 3);
        let t1 = solve_parallel(&m, cfg(1)).unwrap().stats.makespan_ns;
        let t4 = solve_parallel(&m, cfg(4)).unwrap().stats.makespan_ns;
        assert!(t4 < t1, "4 workers ({t4} ns) not faster than 1 ({t1} ns)");
    }

    #[test]
    fn static_partitioning_solves_but_idles_more() {
        let m = knapsack(16, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        let dynamic = solve_parallel(
            &m,
            ParallelConfig {
                load_balance: LoadBalance::Dynamic,
                ..cfg(4)
            },
        )
        .unwrap();
        let static_ = solve_parallel(
            &m,
            ParallelConfig {
                load_balance: LoadBalance::Static,
                ..cfg(4)
            },
        )
        .unwrap();
        assert!((dynamic.objective - expected).abs() < 1e-6);
        assert!((static_.objective - expected).abs() < 1e-6);
        // Static partitioning cannot beat dynamic on idle time.
        assert!(
            static_.stats.idle_fraction >= dynamic.stats.idle_fraction - 0.05,
            "static idle {} vs dynamic {}",
            static_.stats.idle_fraction,
            dynamic.stats.idle_fraction
        );
    }

    #[test]
    fn snapshots_taken_when_configured() {
        let m = knapsack(16, 0.5, 2);
        let r = solve_parallel(
            &m,
            ParallelConfig {
                checkpoint_every: Some(3),
                ..cfg(2)
            },
        )
        .unwrap();
        assert!(r.stats.checkpoints > 0);
        assert_eq!(r.snapshots.len(), r.stats.checkpoints);
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(24, 0.5, 1);
        let r = solve_parallel(
            &m,
            ParallelConfig {
                node_limit: 5,
                ..cfg(2)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.stats.nodes <= 6);
    }
}
