//! The supervisor: a discrete-event simulated Supervisor–Worker parallel
//! branch and bound (the UG coordination pattern of Section 2.3).
//!
//! The supervisor owns the tree (Strategy 2: "the branch-and-cut tree is
//! stored in the CPU main memory"), hands subproblems to worker ranks over
//! a modeled interconnect, and merges reports. Time is *simulated*: each
//! worker's LP cost comes from its own simulated device, messages pay the
//! [`NetworkModel`], and the makespan is the supervisor's event clock — so
//! speedup curves are deterministic and independent of the host machine.
//!
//! With a [`ChaosConfig`] installed, the cluster becomes *unreliable*: the
//! seeded fault plan crashes ranks, drops and delays messages, and slows
//! stragglers — and the supervisor runs the recovery protocol of the
//! paper's Section 2.1/2.3 resilience story: heartbeat-timeout crash
//! detection, reassignment of lost in-flight subproblems (the tree is the
//! live checkpoint; [`Checkpoint::covers`] is the invariant), exponential
//! backoff respawns, and graceful degradation to fewer ranks when a rank's
//! respawn budget is exhausted.

use crate::chaos::{ChaosConfig, FaultPlan, FaultStats};
use crate::checkpoint::Checkpoint;
use crate::comm::{Assignment, Delivery, NetworkModel, NodeOutcome, NodeReport};
use crate::worker::Worker;
use gmip_core::MipStatus;
use gmip_gpu::CostModel;
use gmip_lp::{Basis, BoundChange, LpConfig, LpResult};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::{names, Event as TraceSpan, MetricsRegistry, Track};
use gmip_tree::{NodeId, NodeState, SearchTree, TreeStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work-distribution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Any idle worker receives the globally best open node.
    Dynamic,
    /// Nodes are statically partitioned by their depth-1 ancestor; a worker
    /// only receives nodes of its own partition (idles otherwise). A
    /// retired rank's partition becomes adoptable by every survivor.
    Static,
}

/// Configuration of a parallel solve.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of worker ranks.
    pub workers: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Per-worker device cost model.
    pub gpu_cost: CostModel,
    /// Per-worker device memory.
    pub gpu_mem: usize,
    /// LP tolerances.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
    /// Work-distribution mode.
    pub load_balance: LoadBalance,
    /// Breadth-first ramp-up until every worker has work.
    pub ramp_up: bool,
    /// Ship parent bases for warm starts.
    pub warm_start: bool,
    /// Take a consistent snapshot every `n` nodes (None = never).
    pub checkpoint_every: Option<usize>,
    /// Deterministic fault injection (None = a reliable machine).
    pub chaos: Option<ChaosConfig>,
    /// `Some(n)`: workers run their node LPs through the batched wave
    /// evaluator (fused kernel launches on a shared device matrix, up to
    /// `n` lane reservations) instead of one launch per simplex operation.
    pub batched_lanes: Option<usize>,
    /// `Some(n)`: workers run their node LPs through the first-order
    /// (restarted PDHG) evaluator — fused SpMV/axpy launches on a shared
    /// device-resident CSR matrix, safe dual bounds for early incumbent
    /// prunes, and exact host-simplex cleanup of converged lanes. Takes
    /// precedence over `batched_lanes`.
    pub first_order_lanes: Option<usize>,
    /// A candidate solution (source-sense point) installed as the initial
    /// incumbent if it validates integer-feasible on the instance — the
    /// multi-job serving layer seeds perturbed re-submissions from its
    /// solution pool this way. Ignored when infeasible.
    pub seed_solution: Option<Vec<f64>>,
    /// A warm basis for the root relaxation (a pooled basis from a
    /// structurally identical solve). Requires `warm_start`; shipped to the
    /// rank that evaluates the root exactly like a parent basis.
    pub root_basis: Option<Basis>,
    /// Workers run iterated activity-based bound propagation on every
    /// assignment before the node LP (`prop.*` kernels on their device),
    /// settling infeasible nodes without simplex work and tightening
    /// integer bounds.
    pub propagate: bool,
    /// Every `n` nodes a worker runs a fix-and-propagate dive from its
    /// fractional LP point; feasible improving candidates ride back on the
    /// node report and enter the supervisor's incumbent-broadcast path
    /// (0 = off).
    pub heuristic_period: usize,
    /// Which executing backend every rank's fused lane dispatches run on.
    /// Simulated charges — and therefore the whole deterministic ledger —
    /// are identical across backends.
    pub backend: gmip_gpu::BackendKind,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            network: NetworkModel::infiniband(),
            gpu_cost: CostModel::gpu_pcie(),
            gpu_mem: 1 << 30,
            lp: LpConfig::standard(),
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
            load_balance: LoadBalance::Dynamic,
            ramp_up: true,
            warm_start: true,
            checkpoint_every: None,
            chaos: None,
            batched_lanes: None,
            first_order_lanes: None,
            seed_solution: None,
            root_basis: None,
            propagate: false,
            heuristic_period: 0,
            backend: gmip_gpu::BackendKind::Sim,
        }
    }
}

/// Per-node payload in the supervisor's tree.
#[derive(Debug, Clone, Default)]
pub struct ParPayload {
    /// Cumulative bound changes.
    pub bounds: Vec<BoundChange>,
    /// Warm-start basis from the parent.
    pub warm_basis: Option<Basis>,
    /// Static-partition owner (worker id).
    pub partition: usize,
}

/// Aggregated statistics of a parallel run.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Simulated makespan, ns.
    pub makespan_ns: f64,
    /// Nodes evaluated across all workers.
    pub nodes: usize,
    /// LP iterations across all workers.
    pub lp_iterations: usize,
    /// Messages exchanged.
    pub messages: usize,
    /// Total message bytes.
    pub message_bytes: usize,
    /// Per-worker busy simulated time (every incarnation of the rank).
    pub worker_busy_ns: Vec<f64>,
    /// Mean worker idle fraction of the makespan.
    pub idle_fraction: f64,
    /// Consistent snapshots taken.
    pub checkpoints: usize,
    /// Injected faults and the recovery they triggered (all-zero on a
    /// reliable machine).
    pub faults: FaultStats,
    /// Final tree counters.
    pub tree: TreeStats,
    /// Unified metrics ledger: `cluster.*` counters plus every rank's merged
    /// `gpu.*`/`lp.*` series (and `fault.*`/`recovery.*` under chaos).
    pub metrics: MetricsRegistry,
    /// The root relaxation's optimal basis (when the root branched), for
    /// pooling: a structurally identical re-submission can warm-start its
    /// root from it via [`ParallelConfig::root_basis`].
    pub root_basis: Option<Basis>,
}

/// Result of a parallel solve.
#[derive(Debug)]
pub struct ParallelResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Statistics.
    pub stats: ParallelStats,
    /// Snapshots captured during the run (if configured).
    pub snapshots: Vec<Checkpoint>,
}

/// What a scheduled DES event means when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A worker's report arrives at the supervisor.
    Deliver {
        /// The exchange it belongs to (stale deliveries are ignored).
        dispatch: u64,
    },
    /// The supervisor gave up waiting for an ack on this exchange.
    AckTimeout {
        /// The exchange it guards.
        dispatch: u64,
    },
    /// A planned fault kills the rank.
    Crash,
    /// Missing heartbeats make the supervisor notice the dead rank.
    Detect,
    /// The rank's replacement comes up after its backoff.
    Respawn,
}

#[derive(Debug, PartialEq)]
struct Event {
    time: f64,
    /// Global monotone tie-break: identical times resolve in push order,
    /// keeping the heap order (and therefore the whole run) deterministic.
    seq: u64,
    worker: usize,
    kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.seq.cmp(&other.seq))
    }
}

/// One outstanding supervisor→worker exchange.
#[derive(Debug)]
struct InFlight {
    /// Exchange id; guards against stale Deliver/AckTimeout events.
    dispatch: u64,
    /// The node being evaluated.
    node: NodeId,
    /// The evaluated report (None when the assignment was dropped on the
    /// wire and the worker never saw it).
    report: Option<NodeReport>,
}

/// Liveness bookkeeping for one rank.
#[derive(Debug, Clone)]
struct RankState {
    /// Currently able to accept work.
    alive: bool,
    /// Permanently removed after exhausting its respawn budget.
    retired: bool,
    /// A respawn event is scheduled for this rank.
    respawn_pending: bool,
    /// Respawns consumed so far.
    respawns: usize,
    /// When the current outage began (valid while down).
    down_since: f64,
}

impl RankState {
    fn fresh() -> Self {
        Self {
            alive: true,
            retired: false,
            respawn_pending: false,
            respawns: 0,
            down_since: 0.0,
        }
    }
}

/// The discrete-event supervisor.
#[derive(Debug)]
pub struct Supervisor {
    instance: MipInstance,
    cfg: ParallelConfig,
    tree: SearchTree<ParPayload>,
    workers: Vec<Worker>,
    ranks: Vec<RankState>,
    /// Busy time of crashed incarnations, per rank (the replacement worker
    /// starts its own ledger at zero).
    lost_busy_ns: Vec<f64>,
    /// Per-worker outstanding exchange.
    in_flight: Vec<Option<InFlight>>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    next_dispatch: u64,
    now: f64,
    incumbent: Option<(f64, Vec<f64>)>,
    stats: ParallelStats,
    snapshots: Vec<Checkpoint>,
    /// The most recent consistent snapshot (periodic or taken at a crash
    /// detection) — what a real deployment would have on disk.
    last_checkpoint: Option<Checkpoint>,
    /// The seeded fault plan (None = reliable machine).
    plan: Option<FaultPlan>,
    /// Simulated time of the first incumbent (E12's time-to-first-incumbent
    /// metric; surfaced as the `heur.first_incumbent_ns` gauge).
    first_incumbent_ns: Option<f64>,
}

impl Supervisor {
    /// Builds a supervisor and its worker ranks; schedules any planned
    /// crashes on the event queue.
    pub fn new(instance: MipInstance, cfg: ParallelConfig) -> LpResult<Self> {
        assert!(cfg.workers >= 1, "need at least one worker");
        let mut workers = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            workers.push(
                Worker::new_with_backend(
                    id,
                    &instance,
                    cfg.gpu_cost.clone(),
                    cfg.gpu_mem,
                    cfg.lp.clone(),
                    cfg.int_tol,
                    cfg.batched_lanes,
                    cfg.first_order_lanes,
                    cfg.backend,
                )?
                .with_propagation(cfg.propagate, cfg.heuristic_period),
            );
        }
        let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
        let in_flight = (0..cfg.workers).map(|_| None).collect();
        let plan = cfg
            .chaos
            .clone()
            .map(|chaos| FaultPlan::new(chaos, cfg.workers));
        let mut sup = Self {
            tree: SearchTree::with_root(ParPayload::default(), node_bytes),
            ranks: vec![RankState::fresh(); cfg.workers],
            lost_busy_ns: vec![0.0; cfg.workers],
            workers,
            in_flight,
            events: BinaryHeap::new(),
            next_seq: 0,
            next_dispatch: 0,
            now: 0.0,
            incumbent: None,
            stats: ParallelStats::default(),
            snapshots: Vec::new(),
            last_checkpoint: None,
            plan,
            first_incumbent_ns: None,
            instance,
            cfg,
        };
        if let Some(plan) = &sup.plan {
            for &(time, worker) in &plan.crash_schedule().to_vec() {
                sup.push_event(time, worker, EventKind::Crash);
            }
        }
        // Warm-start entry point: a pooled solution becomes the initial
        // incumbent once it re-validates on this (possibly perturbed)
        // instance, so every dispatched assignment prunes against it.
        if let Some(seed) = sup.cfg.seed_solution.clone() {
            let mut p = seed;
            for j in sup.instance.integral_indices() {
                if let Some(v) = p.get_mut(j) {
                    *v = v.round();
                }
            }
            if sup.instance.is_integer_feasible(&p, 1e-6) {
                let source = sup.instance.objective_value(&p);
                let internal = match sup.instance.objective {
                    Objective::Maximize => source,
                    Objective::Minimize => -source,
                };
                sup.incumbent = Some((internal, p));
                sup.first_incumbent_ns = Some(0.0);
                sup.stats.metrics.incr(names::BB_WARM_SEEDS, 1.0);
            }
        }
        if sup.cfg.warm_start {
            if let Some(b) = sup.cfg.root_basis.clone() {
                let root = sup.tree.root();
                sup.tree.node_mut(root).data.warm_basis = Some(b);
            }
        }
        Ok(sup)
    }

    /// Seeds the frontier from a checkpoint instead of the root (restart).
    pub fn restore(
        instance: MipInstance,
        cfg: ParallelConfig,
        checkpoint: &Checkpoint,
    ) -> LpResult<Self> {
        let mut sup = Self::new(instance, cfg)?;
        // Expand the root into the checkpointed frontier.
        sup.tree.begin_evaluation(sup.tree.root());
        let children: Vec<(String, ParPayload)> = checkpoint
            .frontier
            .iter()
            .enumerate()
            .map(|(i, bounds)| {
                (
                    format!("ckpt{i}"),
                    ParPayload {
                        bounds: bounds.clone(),
                        warm_basis: None,
                        partition: i % sup.cfg.workers,
                    },
                )
            })
            .collect();
        sup.tree.branch(sup.tree.root(), f64::INFINITY, children);
        sup.incumbent = checkpoint.incumbent.clone();
        sup.last_checkpoint = Some(checkpoint.clone());
        Ok(sup)
    }

    fn push_event(&mut self, time: f64, worker: usize, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq,
            worker,
            kind,
        }));
    }

    fn to_source(&self, internal: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => internal,
            Objective::Minimize => -internal,
        }
    }

    fn incumbent_internal(&self) -> f64 {
        self.incumbent
            .as_ref()
            .map(|(v, _)| *v)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Picks the next node for `worker` under the configured policy, or
    /// `None` if nothing eligible is open. `in_flight_count` is the number
    /// of outstanding exchanges, hoisted by [`Self::dispatch`]: a dispatch
    /// moves one node from the active set to in-flight, so the ramping
    /// predicate's sum is invariant across one dispatch round and counting
    /// per candidate worker would be O(ranks²) at four-digit rank counts.
    fn pick_node(&self, worker: usize, in_flight_count: usize) -> Option<NodeId> {
        let ramping =
            self.cfg.ramp_up && (self.tree.active_ids().len() + in_flight_count) < self.cfg.workers;
        let eligible = |id: &&NodeId| -> bool {
            match self.cfg.load_balance {
                LoadBalance::Dynamic => true,
                LoadBalance::Static => {
                    let p = self.tree.node(**id).data.partition;
                    // A retired rank's partition is orphaned work: any
                    // survivor may adopt it (graceful degradation).
                    p == worker || self.ranks.get(p).is_some_and(|r| r.retired)
                }
            }
        };
        let ids = self.tree.active_ids();
        if ramping {
            // Breadth-first widening: shallowest node first.
            ids.iter()
                .filter(eligible)
                .min_by(|&&a, &&b| {
                    self.tree
                        .node(a)
                        .depth
                        .cmp(&self.tree.node(b).depth)
                        .then(a.cmp(&b))
                })
                .copied()
        } else {
            // Best bound first.
            ids.iter()
                .filter(eligible)
                .min_by(|&&a, &&b| {
                    self.tree
                        .node(b)
                        .bound
                        .partial_cmp(&self.tree.node(a).bound)
                        .expect("bounds are never NaN")
                        .then(a.cmp(&b))
                })
                .copied()
        }
    }

    /// Dispatches work to every idle alive worker. Returns how many started.
    fn dispatch(&mut self) -> LpResult<usize> {
        let mut started = 0;
        let mut in_flight_count = self.in_flight.iter().filter(|f| f.is_some()).count();
        for w in 0..self.workers.len() {
            if !self.ranks[w].alive
                || self.in_flight[w].is_some()
                || self.workers[w].busy_until > self.now
            {
                continue;
            }
            let Some(id) = self.pick_node(w, in_flight_count) else {
                continue;
            };
            // Every path below parks an exchange in `in_flight[w]`.
            in_flight_count += 1;
            self.tree.begin_evaluation(id);
            let node = self.tree.node(id);
            let assignment = Assignment {
                node_id: id,
                bounds: node.data.bounds.clone(),
                warm_basis: if self.cfg.warm_start {
                    node.data.warm_basis.clone()
                } else {
                    None
                },
                incumbent: self.incumbent_internal(),
            };
            let dispatch = self.next_dispatch;
            self.next_dispatch += 1;
            let a_bytes = assignment.bytes();
            self.stats.messages += 1;
            self.stats.message_bytes += a_bytes;
            self.stats
                .metrics
                .incr(names::CLUSTER_NODES_DISPATCHED, 1.0);
            // A dynamic pick landing off the node's static partition is a
            // load-balance migration (work stealing).
            if self.tree.node(id).data.partition != w {
                self.stats.metrics.incr(names::CLUSTER_MIGRATIONS, 1.0);
            }
            started += 1;
            let net: NetworkModel = self.cfg.network;
            let ack_ns = self
                .plan
                .as_ref()
                .map(|p| p.cfg().ack_timeout_ns)
                .unwrap_or(f64::INFINITY);
            // Supervisor → worker leg.
            let Delivery::Delivered {
                transfer_ns: send_ns,
                injected_ns: send_delay,
            } = net.ship(a_bytes, self.plan.as_mut())
            else {
                // The assignment vanishes on the wire: the worker never
                // hears of it, the supervisor notices at the ack timeout.
                self.stats.faults.drops += 1;
                let (t0, nid) = (self.now, id as u64);
                gmip_trace::record(|| {
                    TraceSpan::instant(Track::cluster_rank(0), "fault.drop", t0)
                        .arg("node", nid)
                        .arg("leg", "assignment")
                });
                self.in_flight[w] = Some(InFlight {
                    dispatch,
                    node: id,
                    report: None,
                });
                self.push_event(self.now + ack_ns, w, EventKind::AckTimeout { dispatch });
                continue;
            };
            if send_delay > 0.0 {
                self.stats.faults.delays += 1;
            }
            // Straggler windows slow the device for evaluations starting
            // inside them.
            let eval_start = self.now + send_ns;
            let slow = self
                .plan
                .as_ref()
                .map(|p| p.slowdown(w, eval_start))
                .unwrap_or(1.0);
            if slow > 1.0 {
                self.stats.faults.straggles += 1;
            }
            self.workers[w].slowdown = slow;
            // Evaluate now (numerically); deliver at the modeled time.
            let report = self.workers[w].evaluate(&assignment)?;
            let r_bytes = report.bytes();
            self.stats.messages += 1;
            self.stats.message_bytes += r_bytes;
            // Per-rank trace lane (lane 0 is the supervisor): the assignment
            // transfer, the device evaluation, and the report transfer render
            // as consecutive spans on the rank's timeline.
            let rank = Track::cluster_rank((w + 1) as u32);
            let (t0, eval_ns, nid) = (self.now, report.eval_ns, id as u64);
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "recv", send_ns, t0)
                    .arg("node", nid)
                    .arg("bytes", a_bytes as u64)
                    .arg("delayed_ns", send_delay)
            });
            gmip_trace::record(|| {
                TraceSpan::complete(rank, "eval", eval_ns, t0 + send_ns).arg("node", nid)
            });
            // Worker → supervisor leg.
            match net.ship(r_bytes, self.plan.as_mut()) {
                Delivery::Delivered {
                    transfer_ns: reply_ns,
                    injected_ns: reply_delay,
                } => {
                    if reply_delay > 0.0 {
                        self.stats.faults.delays += 1;
                    }
                    let done = self.now + send_ns + report.eval_ns + reply_ns;
                    gmip_trace::record(|| {
                        TraceSpan::complete(rank, "send", reply_ns, t0 + send_ns + eval_ns)
                            .arg("node", nid)
                            .arg("bytes", r_bytes as u64)
                            .arg("delayed_ns", reply_delay)
                    });
                    self.workers[w].busy_until = done;
                    self.in_flight[w] = Some(InFlight {
                        dispatch,
                        node: id,
                        report: Some(report),
                    });
                    self.push_event(done, w, EventKind::Deliver { dispatch });
                }
                Delivery::Dropped => {
                    // The worker did the work but its report is lost.
                    self.stats.faults.drops += 1;
                    let busy = self.now + send_ns + report.eval_ns;
                    gmip_trace::record(|| {
                        TraceSpan::instant(rank, "fault.drop", t0 + send_ns + eval_ns)
                            .arg("node", nid)
                            .arg("leg", "report")
                    });
                    self.workers[w].busy_until = busy;
                    self.in_flight[w] = Some(InFlight {
                        dispatch,
                        node: id,
                        report: Some(report),
                    });
                    self.push_event(
                        (self.now + ack_ns).max(busy),
                        w,
                        EventKind::AckTimeout { dispatch },
                    );
                }
            }
        }
        Ok(started)
    }

    /// Returns a lost in-flight subproblem to the open set so another rank
    /// can pick it up. The supervisor's tree is the live checkpoint: the
    /// node's payload (bounds, warm basis) is still there, and the last
    /// materialized [`Checkpoint`] provably covers it.
    fn reassign(&mut self, node: NodeId) {
        if self.tree.reopen(node) {
            self.stats.faults.reassignments += 1;
            debug_assert!(
                self.last_checkpoint
                    .as_ref()
                    .is_none_or(|c| c.covers(&self.tree.node(node).data.bounds)),
                "recovery invariant: the last checkpoint must cover every lost subproblem"
            );
            let (ts, nid) = (self.now, node as u64);
            gmip_trace::record(|| {
                TraceSpan::instant(Track::cluster_rank(0), "recovery.reassign", ts).arg("node", nid)
            });
        }
    }

    /// A report reaches the supervisor (unless it is stale: the rank died
    /// or the exchange was already written off).
    fn on_deliver(&mut self, worker: usize, dispatch: u64) {
        if !self.ranks[worker].alive {
            return; // rank died with the report in transit; Detect handles it
        }
        if self.in_flight[worker]
            .as_ref()
            .is_none_or(|f| f.dispatch != dispatch)
        {
            return; // stale delivery of a written-off exchange
        }
        let inf = self.in_flight[worker].take().expect("checked above");
        let report = inf.report.expect("delivered exchanges carry a report");
        self.process(worker, report);
    }

    /// The ack timer for a dropped exchange fires: write it off and
    /// reassign the subproblem.
    fn on_ack_timeout(&mut self, worker: usize, dispatch: u64) {
        if self.in_flight[worker]
            .as_ref()
            .is_none_or(|f| f.dispatch != dispatch)
        {
            return; // already resolved (e.g. crash detection got there first)
        }
        let inf = self.in_flight[worker].take().expect("checked above");
        self.reassign(inf.node);
    }

    /// A planned crash lands on the rank: device state and any in-flight
    /// evaluation are gone. The supervisor only *notices* a heartbeat
    /// timeout later.
    fn on_crash(&mut self, worker: usize) {
        if !self.ranks[worker].alive || self.ranks[worker].retired {
            return; // the planned crash hit an already-dead rank
        }
        self.ranks[worker].alive = false;
        self.ranks[worker].down_since = self.now;
        self.stats.faults.crashes += 1;
        let ts = self.now;
        gmip_trace::record(|| {
            TraceSpan::instant(Track::cluster_rank((worker + 1) as u32), "fault.crash", ts)
        });
        let hb = self
            .plan
            .as_ref()
            .expect("crash events imply a plan")
            .cfg()
            .heartbeat_timeout_ns;
        self.push_event(self.now + hb, worker, EventKind::Detect);
    }

    /// Missing heartbeats reveal the crash: reassign the lost subproblem,
    /// refresh the recovery checkpoint, and schedule a respawn (or retire
    /// the rank when its budget is spent).
    fn on_detect(&mut self, worker: usize) {
        if let Some(inf) = self.in_flight[worker].take() {
            self.reassign(inf.node);
        }
        // Refresh the recovery checkpoint: this is the restart file a real
        // deployment would rewrite once the failure is known.
        self.last_checkpoint = Some(self.snapshot());
        let max_respawns = self
            .plan
            .as_ref()
            .expect("detect events imply a plan")
            .cfg()
            .max_respawns;
        let backoff_base = self.plan.as_ref().expect("plan").cfg().respawn_backoff_ns;
        let others_alive = (0..self.ranks.len())
            .filter(|&o| o != worker)
            .any(|o| self.ranks[o].alive || self.ranks[o].respawn_pending);
        if self.ranks[worker].respawns < max_respawns || !others_alive {
            // Exponential backoff; the last viable rank is always granted a
            // respawn so the search can terminate.
            let exp = self.ranks[worker].respawns.min(20) as u32;
            let backoff = backoff_base * f64::from(1u32 << exp.min(20));
            self.ranks[worker].respawn_pending = true;
            self.push_event(self.now + backoff, worker, EventKind::Respawn);
        } else {
            self.ranks[worker].retired = true;
            self.stats.faults.degraded_ranks += 1;
            let ts = self.now;
            gmip_trace::record(|| {
                TraceSpan::instant(
                    Track::cluster_rank((worker + 1) as u32),
                    "recovery.degrade",
                    ts,
                )
            });
        }
    }

    /// The replacement rank comes up: fresh device, matrix re-uploaded,
    /// warm-start state gone.
    fn on_respawn(&mut self, worker: usize) -> LpResult<()> {
        self.ranks[worker].respawn_pending = false;
        self.lost_busy_ns[worker] += self.workers[worker].busy_ns;
        let mut fresh = Worker::new_with_backend(
            worker,
            &self.instance,
            self.cfg.gpu_cost.clone(),
            self.cfg.gpu_mem,
            self.cfg.lp.clone(),
            self.cfg.int_tol,
            self.cfg.batched_lanes,
            self.cfg.first_order_lanes,
            self.cfg.backend,
        )?
        .with_propagation(self.cfg.propagate, self.cfg.heuristic_period);
        fresh.busy_until = self.now;
        self.workers[worker] = fresh;
        self.ranks[worker].alive = true;
        self.ranks[worker].respawns += 1;
        self.stats.faults.respawns += 1;
        let (t0, dur) = (
            self.ranks[worker].down_since,
            self.now - self.ranks[worker].down_since,
        );
        let lane = Track::cluster_rank((worker + 1) as u32);
        gmip_trace::record(|| TraceSpan::complete(lane, "down", dur, t0));
        let ts = self.now;
        gmip_trace::record(|| TraceSpan::instant(lane, "recovery.respawn", ts));
        Ok(())
    }

    /// Processes one delivered report.
    fn process(&mut self, worker: usize, report: NodeReport) {
        self.stats.nodes += 1;
        self.stats.lp_iterations += report.lp_iterations;
        let id = report.node_id;
        // A fix-and-propagate candidate rides along with any outcome; it
        // enters the incumbent path before the node itself is settled so the
        // broadcastable bound is as tight as possible.
        if let Some((internal, x)) = report.heur {
            if internal > self.incumbent_internal() {
                let mut p = x;
                for j in self.instance.integral_indices() {
                    p[j] = p[j].round();
                }
                self.incumbent = Some((internal, p));
                self.first_incumbent_ns.get_or_insert(self.now);
                self.tree.prune_dominated(internal, self.cfg.prune_tol);
                let (ts, obj) = (self.now, self.to_source(internal));
                gmip_trace::record(|| {
                    TraceSpan::instant(Track::cluster_rank(0), "incumbent", ts)
                        .arg("objective", obj)
                        .arg("worker", worker as u64)
                        .arg("source", "fix_and_propagate")
                });
            }
        }
        match report.outcome {
            NodeOutcome::Infeasible => {
                self.tree
                    .settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
            }
            NodeOutcome::Pruned { bound } => {
                self.tree.settle(id, NodeState::Pruned, bound);
            }
            NodeOutcome::IntegerFeasible { internal, x } => {
                self.tree.settle(id, NodeState::Feasible, internal);
                if internal > self.incumbent_internal() {
                    let mut p = x;
                    for j in self.instance.integral_indices() {
                        p[j] = p[j].round();
                    }
                    self.incumbent = Some((internal, p));
                    self.first_incumbent_ns.get_or_insert(self.now);
                    self.tree.prune_dominated(internal, self.cfg.prune_tol);
                    let (ts, obj) = (self.now, self.to_source(internal));
                    gmip_trace::record(|| {
                        TraceSpan::instant(Track::cluster_rank(0), "incumbent", ts)
                            .arg("objective", obj)
                            .arg("worker", worker as u64)
                    });
                }
            }
            NodeOutcome::Branch {
                bound,
                var,
                value,
                basis,
            } => {
                if id == self.tree.root() && self.stats.root_basis.is_none() {
                    self.stats.root_basis = basis.clone();
                }
                if bound <= self.incumbent_internal() + self.cfg.prune_tol {
                    self.tree.settle(id, NodeState::Pruned, bound);
                    return;
                }
                let parent = self.tree.node(id);
                let parent_partition = parent.data.partition;
                let parent_depth = parent.depth;
                let bounds = parent.data.bounds.clone();
                let (mut lo, mut hi) = (self.instance.vars[var].lb, self.instance.vars[var].ub);
                for bc in &bounds {
                    if bc.var == var {
                        lo = bc.lb;
                        hi = bc.ub;
                    }
                }
                let name = self.instance.vars[var].name.clone();
                let mk = |up: bool, part: usize| {
                    let mut child_bounds = bounds.clone();
                    let label = if up {
                        child_bounds.push(BoundChange {
                            var,
                            lb: value.ceil(),
                            ub: hi,
                        });
                        format!("{name} ≥ {}", value.ceil())
                    } else {
                        child_bounds.push(BoundChange {
                            var,
                            lb: lo,
                            ub: value.floor(),
                        });
                        format!("{name} ≤ {}", value.floor())
                    };
                    (
                        label,
                        ParPayload {
                            bounds: child_bounds,
                            warm_basis: basis.clone(),
                            partition: part,
                        },
                    )
                };
                // Static partitioning: spread subtrees over all workers by
                // binary fan-out near the root (depth d covers 2^(d+1)
                // partitions), then inherit — every worker owns a subtree
                // once the frontier is wide enough.
                let spread =
                    parent_depth < 63 && (1usize << (parent_depth + 1)) <= self.cfg.workers * 2;
                let children = if spread {
                    vec![
                        mk(false, (parent_partition * 2) % self.cfg.workers.max(1)),
                        mk(true, (parent_partition * 2 + 1) % self.cfg.workers.max(1)),
                    ]
                } else {
                    vec![mk(false, parent_partition), mk(true, parent_partition)]
                };
                self.tree.branch(id, bound, children);
            }
        }
    }

    /// Captures the distributed consistent snapshot *now*: all open nodes
    /// plus nodes currently being evaluated or whose reports are in transit
    /// (the two parallel complications of Section 2.1).
    pub fn snapshot(&self) -> Checkpoint {
        let mut frontier: Vec<Vec<BoundChange>> = Vec::new();
        for n in self.tree.iter() {
            if n.state.is_open() {
                frontier.push(n.data.bounds.clone());
            }
        }
        Checkpoint::new(frontier, self.incumbent.clone())
    }

    /// Runs to completion (or node limit); consumes the supervisor.
    pub fn run(mut self) -> LpResult<ParallelResult> {
        let mut last_checkpoint_at = 0usize;
        let status = loop {
            if self.stats.nodes >= self.cfg.node_limit {
                break MipStatus::NodeLimit;
            }
            self.dispatch()?;
            // Done when no open nodes remain and nothing is in flight —
            // fault events scheduled past this point hit a machine whose
            // job already finished.
            if !self.tree.has_active() && self.in_flight.iter().all(Option::is_none) {
                break if self.incumbent.is_some() {
                    MipStatus::Optimal
                } else {
                    MipStatus::Infeasible
                };
            }
            let Some(Reverse(ev)) = self.events.pop() else {
                // Defensive: outstanding work always has a pending event.
                break if self.incumbent.is_some() {
                    MipStatus::Optimal
                } else {
                    MipStatus::Infeasible
                };
            };
            // Clock is monotone even when checkpoint serialization pushed it
            // past an already-scheduled completion.
            self.now = self.now.max(ev.time);
            let nodes_before = self.stats.nodes;
            match ev.kind {
                EventKind::Deliver { dispatch } => self.on_deliver(ev.worker, dispatch),
                EventKind::AckTimeout { dispatch } => self.on_ack_timeout(ev.worker, dispatch),
                EventKind::Crash => self.on_crash(ev.worker),
                EventKind::Detect => self.on_detect(ev.worker),
                EventKind::Respawn => self.on_respawn(ev.worker)?,
            }
            if self.stats.nodes > nodes_before {
                if let Some(every) = self.cfg.checkpoint_every {
                    if self.stats.nodes >= last_checkpoint_at + every {
                        last_checkpoint_at = self.stats.nodes;
                        let snap = self.snapshot();
                        // Stop-the-world serialization: the supervisor's clock
                        // advances while the snapshot is written (~1 GB/s).
                        let (t0, dur) = (self.now, 2_000.0 + snap.bytes() as f64);
                        let (ck_bytes, frontier) =
                            (snap.bytes() as u64, snap.frontier.len() as u64);
                        gmip_trace::record(|| {
                            TraceSpan::complete(Track::cluster_rank(0), "checkpoint", dur, t0)
                                .arg("bytes", ck_bytes)
                                .arg("frontier", frontier)
                        });
                        self.now += dur;
                        self.last_checkpoint = Some(snap.clone());
                        self.snapshots.push(snap);
                        self.stats.checkpoints += 1;
                    }
                }
            }
        };
        // Drain bookkeeping.
        self.stats.makespan_ns = self.now;
        self.stats.worker_busy_ns = self
            .workers
            .iter()
            .zip(&self.lost_busy_ns)
            .map(|(w, lost)| w.busy_ns + lost)
            .collect();
        if self.now > 0.0 {
            let busy_sum: f64 = self.stats.worker_busy_ns.iter().sum();
            self.stats.idle_fraction = 1.0 - busy_sum / (self.now * self.workers.len() as f64);
        }
        self.stats.tree = self.tree.stats().clone();
        // Fold the communication counters and every rank's device/LP ledger
        // into the unified metrics registry.
        let (msgs, bytes, ckpts) = (
            self.stats.messages,
            self.stats.message_bytes,
            self.stats.checkpoints,
        );
        self.stats
            .metrics
            .incr(names::CLUSTER_MESSAGES, msgs as f64);
        self.stats.metrics.incr(names::CLUSTER_BYTES, bytes as f64);
        self.stats
            .metrics
            .incr(names::CLUSTER_CHECKPOINTS, ckpts as f64);
        if self.plan.is_some() {
            let f = self.stats.faults;
            let m = &mut self.stats.metrics;
            m.incr(names::FAULT_CRASHES, f.crashes as f64);
            m.incr(names::FAULT_DROPS, f.drops as f64);
            m.incr(names::FAULT_DELAYS, f.delays as f64);
            m.incr(names::FAULT_STRAGGLES, f.straggles as f64);
            m.incr(names::RECOVERY_REASSIGNMENTS, f.reassignments as f64);
            m.incr(names::RECOVERY_RESPAWNS, f.respawns as f64);
            m.incr(names::RECOVERY_DEGRADED_RANKS, f.degraded_ranks as f64);
        }
        for w in &self.workers {
            self.stats.metrics.merge(&w.metrics());
        }
        if let Some(t) = self.first_incumbent_ns {
            self.stats
                .metrics
                .set_gauge(names::HEUR_FIRST_INCUMBENT_NS, t);
        }
        let (objective, x) = match &self.incumbent {
            Some((v, p)) => (self.to_source(*v), p.clone()),
            None => (f64::NAN, Vec::new()),
        };
        Ok(ParallelResult {
            status,
            objective,
            x,
            stats: self.stats,
            snapshots: self.snapshots,
        })
    }
}

/// Convenience: solve an instance on a simulated cluster.
pub fn solve_parallel(instance: &MipInstance, cfg: ParallelConfig) -> LpResult<ParallelResult> {
    Supervisor::new(instance.clone(), cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{infeasible_instance, textbook_mip};
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    fn cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            gpu_mem: 1 << 24,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_brute_force() {
        for seed in 0..3 {
            let m = knapsack(12, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_parallel(&m, cfg(4)).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn batched_workers_match_default_with_fewer_launches() {
        let m = knapsack(12, 0.5, 1);
        let baseline = solve_parallel(&m, cfg(3)).unwrap();
        let batched = solve_parallel(
            &m,
            ParallelConfig {
                batched_lanes: Some(2),
                ..cfg(3)
            },
        )
        .unwrap();
        assert_eq!(batched.status, MipStatus::Optimal);
        assert!((batched.objective - baseline.objective).abs() < 1e-6);
        // The wave backend fuses kernel classes: fewer launches, same work.
        let launches = |r: &ParallelResult| r.stats.metrics.counter("gpu.kernel.launches");
        assert!(
            launches(&batched) < launches(&baseline),
            "{} vs {}",
            launches(&batched),
            launches(&baseline)
        );
        assert!(batched.stats.metrics.counter("wave.fused_launches") > 0.0);
    }

    #[test]
    fn first_order_workers_match_default() {
        let m = knapsack(12, 0.5, 1);
        let baseline = solve_parallel(&m, cfg(3)).unwrap();
        let fo = solve_parallel(
            &m,
            ParallelConfig {
                first_order_lanes: Some(2),
                ..cfg(3)
            },
        )
        .unwrap();
        assert_eq!(fo.status, MipStatus::Optimal);
        assert!((fo.objective - baseline.objective).abs() < 1e-6);
        // The ranks really ran the PDHG evaluator, and incumbent cutoffs
        // reached in-flight lanes (safe-bound prunes).
        assert!(fo.stats.metrics.counter("fo.iterations") > 0.0);
        assert!(fo.stats.metrics.counter("fo.cleanups") > 0.0);
    }

    #[test]
    fn propagating_workers_match_brute_force() {
        for seed in 0..3 {
            let m = knapsack(12, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_parallel(
                &m,
                ParallelConfig {
                    propagate: true,
                    heuristic_period: 2,
                    ..cfg(3)
                },
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            // The ranks really propagated, and the first incumbent's
            // simulated timestamp is on the ledger.
            assert!(r.stats.metrics.counter(names::PROP_NODES) > 0.0);
            assert!(r.stats.metrics.gauge(names::HEUR_FIRST_INCUMBENT_NS) > 0.0);
        }
    }

    #[test]
    fn propagation_settles_infeasible_instances_without_lp_iterations() {
        let r = solve_parallel(
            &infeasible_instance(),
            ParallelConfig {
                propagate: true,
                ..cfg(2)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.stats.metrics.counter(names::PROP_INFEASIBLE) >= 1.0);
    }

    #[test]
    fn textbook_mip_parallel() {
        let r = solve_parallel(&textbook_mip(), cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.stats.messages > 0);
        assert!(r.stats.makespan_ns > 0.0);
        assert_eq!(r.stats.worker_busy_ns.len(), 2);
        assert_eq!(r.stats.faults, crate::chaos::FaultStats::default());
    }

    #[test]
    fn infeasible_detected_in_parallel() {
        let r = solve_parallel(&infeasible_instance(), cfg(2)).unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.objective.is_nan());
    }

    #[test]
    fn more_workers_do_not_change_the_answer() {
        let m = knapsack(14, 0.5, 7);
        let expected = knapsack_brute_force(&m);
        for w in [1, 2, 4, 8] {
            let r = solve_parallel(&m, cfg(w)).unwrap();
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "{w} workers: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn speedup_with_more_workers() {
        let m = knapsack(18, 0.5, 3);
        let t1 = solve_parallel(&m, cfg(1)).unwrap().stats.makespan_ns;
        let t4 = solve_parallel(&m, cfg(4)).unwrap().stats.makespan_ns;
        assert!(t4 < t1, "4 workers ({t4} ns) not faster than 1 ({t1} ns)");
    }

    #[test]
    fn static_partitioning_solves_but_idles_more() {
        let m = knapsack(16, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        let dynamic = solve_parallel(
            &m,
            ParallelConfig {
                load_balance: LoadBalance::Dynamic,
                ..cfg(4)
            },
        )
        .unwrap();
        let static_ = solve_parallel(
            &m,
            ParallelConfig {
                load_balance: LoadBalance::Static,
                ..cfg(4)
            },
        )
        .unwrap();
        assert!((dynamic.objective - expected).abs() < 1e-6);
        assert!((static_.objective - expected).abs() < 1e-6);
        // Static partitioning cannot beat dynamic on idle time.
        assert!(
            static_.stats.idle_fraction >= dynamic.stats.idle_fraction - 0.05,
            "static idle {} vs dynamic {}",
            static_.stats.idle_fraction,
            dynamic.stats.idle_fraction
        );
    }

    #[test]
    fn snapshots_taken_when_configured() {
        let m = knapsack(16, 0.5, 2);
        let r = solve_parallel(
            &m,
            ParallelConfig {
                checkpoint_every: Some(3),
                ..cfg(2)
            },
        )
        .unwrap();
        assert!(r.stats.checkpoints > 0);
        assert_eq!(r.snapshots.len(), r.stats.checkpoints);
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(24, 0.5, 1);
        let r = solve_parallel(
            &m,
            ParallelConfig {
                node_limit: 5,
                ..cfg(2)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.stats.nodes <= 6);
    }

    #[test]
    fn dropped_messages_are_reassigned_and_answer_unchanged() {
        let m = knapsack(12, 0.5, 9);
        let expected = knapsack_brute_force(&m);
        let r = solve_parallel(
            &m,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    drop_prob: 0.25,
                    ..ChaosConfig::quiet(3)
                }),
                ..cfg(3)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(r.stats.faults.drops > 0, "plan injected no drops");
        assert!(
            r.stats.faults.reassignments >= 1,
            "drops must trigger reassignment: {:?}",
            r.stats.faults
        );
        assert_eq!(r.stats.tree.reopened, r.stats.faults.reassignments);
    }

    #[test]
    fn crashes_respawn_and_recover_the_optimum() {
        let m = knapsack(16, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        // Size the crash window to the fault-free makespan so the crashes
        // land while the cluster is actually busy.
        let clean = solve_parallel(&m, cfg(3)).unwrap();
        let r = solve_parallel(
            &m,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    crashes: 4,
                    horizon_ns: clean.stats.makespan_ns * 0.8,
                    ..ChaosConfig::quiet(11)
                }),
                ..cfg(3)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(
            (r.objective - expected).abs() < 1e-6,
            "chaotic {} vs clean {expected}",
            r.objective
        );
        assert!(
            r.stats.faults.crashes > 0,
            "no crash landed: {:?}",
            r.stats.faults
        );
        assert!(
            r.stats.faults.respawns > 0,
            "no respawn: {:?}",
            r.stats.faults
        );
        // Failures cost simulated time.
        assert!(r.stats.makespan_ns >= clean.stats.makespan_ns);
    }

    #[test]
    fn exhausted_respawn_budget_degrades_but_terminates() {
        let m = knapsack(16, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        let clean = solve_parallel(&m, cfg(3)).unwrap();
        let r = solve_parallel(
            &m,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    crashes: 5,
                    horizon_ns: clean.stats.makespan_ns * 0.8,
                    max_respawns: 0,
                    ..ChaosConfig::quiet(11)
                }),
                ..cfg(3)
            },
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
        assert!(
            r.stats.faults.degraded_ranks > 0,
            "budget 0 must retire a rank: {:?}",
            r.stats.faults
        );
    }
}
