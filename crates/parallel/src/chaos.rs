//! `gmip-chaos`: deterministic fault injection for the simulated cluster.
//!
//! Long-running parallel MIP on leadership machines must assume components
//! fail — the paper's Sections 2.1/2.3 motivate checkpoint-and-restart as
//! the resilience mechanism, and the UG-style coordination it cites assumes
//! workers can be lost and re-fed. This module makes failure *testable*: a
//! seeded [`FaultPlan`] (vendored ChaCha RNG, scheduled on the simulated-ns
//! clock) injects worker crashes, message drops, message delays, and
//! straggler slowdowns into the discrete-event cluster, so identical seeds
//! reproduce identical failure timelines byte-for-byte.
//!
//! The DES supervisor is omniscient about *when* a fault happened, but the
//! modeled recovery protocol still pays the realistic price: crashes are
//! only *detected* a heartbeat timeout later, lost messages only after an
//! ack timeout, and respawns wait out an exponential backoff — all of which
//! shows up on the Perfetto timeline and in the makespan.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The kinds of fault a plan can inject (used for reporting/labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker rank dies, losing its device state and in-flight work.
    Crash,
    /// A message (assignment or report) is silently lost.
    MessageDrop,
    /// A message pays extra latency on the wire.
    MessageDelay,
    /// A worker's evaluations slow down for a time window.
    Straggler,
}

/// Tunable fault-injection profile. Every field is deterministic given
/// `seed`; the concrete schedule is sampled once by [`FaultPlan::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed: identical seeds reproduce identical fault timelines.
    pub seed: u64,
    /// Worker crashes to schedule, uniform over `[0, horizon_ns)`.
    pub crashes: usize,
    /// Per-message probability that it is silently dropped.
    pub drop_prob: f64,
    /// Per-message probability that it is delayed.
    pub delay_prob: f64,
    /// Mean injected delay, ns (sampled uniform in `[0.5, 1.5] ×` this).
    pub delay_ns: f64,
    /// Straggler windows to schedule, uniform over `[0, horizon_ns)`.
    pub stragglers: usize,
    /// Evaluation slowdown factor inside a straggler window.
    pub straggle_factor: f64,
    /// Duration of each straggler window, ns.
    pub straggle_ns: f64,
    /// Time horizon the crash/straggler schedules are drawn from, ns.
    pub horizon_ns: f64,
    /// How long after a crash the supervisor notices the missing
    /// heartbeats and starts recovery, ns.
    pub heartbeat_timeout_ns: f64,
    /// How long the supervisor waits for a report before declaring the
    /// exchange lost and reassigning the subproblem, ns.
    pub ack_timeout_ns: f64,
    /// Base respawn backoff, ns; attempt `k` waits `2^k ×` this.
    pub respawn_backoff_ns: f64,
    /// Respawns granted per rank before it is permanently retired and the
    /// cluster degrades to fewer ranks. The last alive rank is immune so
    /// the search always terminates.
    pub max_respawns: usize,
    /// Sub-supervisor crashes to schedule, uniform over `[0, horizon_ns)`
    /// (hierarchical clusters only; each takes a whole group down until the
    /// root detects it, reassigns the group's subtrees, and respawns it).
    pub sub_crashes: usize,
    /// Slowdown factor applied to every root ↔ sub-supervisor transfer
    /// (hierarchical clusters only; 1.0 = healthy root link). Models a
    /// straggling top-of-fabric switch: summaries, incumbent broadcasts and
    /// stolen subtrees all pay the inflated latency.
    pub root_slow_factor: f64,
    /// Targeted wipe: crash *every* rank of this group at
    /// [`ChaosConfig::kill_group_at_ns`] (hierarchical clusters only). The
    /// sub-supervisor survives, detects each rank, and recovers via the
    /// normal respawn path.
    pub kill_group: Option<usize>,
    /// When the [`ChaosConfig::kill_group`] wipe fires, ns.
    pub kill_group_at_ns: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            crashes: 2,
            drop_prob: 0.02,
            delay_prob: 0.05,
            delay_ns: 20_000.0,
            stragglers: 1,
            straggle_factor: 4.0,
            straggle_ns: 250_000.0,
            horizon_ns: 1_000_000.0,
            heartbeat_timeout_ns: 25_000.0,
            ack_timeout_ns: 40_000.0,
            respawn_backoff_ns: 50_000.0,
            max_respawns: 3,
            sub_crashes: 0,
            root_slow_factor: 1.0,
            kill_group: None,
            kill_group_at_ns: 0.0,
        }
    }
}

impl ChaosConfig {
    /// A plan that injects nothing (useful as a parsing base).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            crashes: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            stragglers: 0,
            ..Self::default()
        }
    }

    /// Re-seeds this profile deterministically for a sub-scope (one job of
    /// a traffic stream, one retry attempt): the fault *knobs* are shared
    /// while the concrete schedule differs per salt. SplitMix64 on
    /// `seed ^ salt` keeps nearby salts decorrelated.
    pub fn derive(&self, salt: u64) -> Self {
        let mut z = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            seed: z ^ (z >> 31),
            ..self.clone()
        }
    }

    /// Parses a `--faults` spec: either a bare seed (`"42"`, the default
    /// chaos profile) or comma-separated `key=value` pairs, e.g.
    /// `"seed=42,crash=3,drop=0.05,delay=0.1,straggle=2,horizon=2e6"`.
    ///
    /// Keys: `seed`, `crash`, `drop`, `delay`, `delay-ns`, `straggle`,
    /// `factor`, `straggle-ns`, `horizon`, `heartbeat`, `ack`, `backoff`,
    /// `respawns`, and the hierarchy-only knobs `sub-crash`, `root-slow`,
    /// `kill-group`, `kill-group-at`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Ok(seed) = spec.trim().parse::<u64>() {
            return Ok(Self {
                seed,
                ..Self::default()
            });
        }
        let mut cfg = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let fnum = || -> Result<f64, String> {
                value
                    .parse()
                    .map_err(|_| format!("fault spec `{key}` needs a number, got `{value}`"))
            };
            let unum = || -> Result<usize, String> {
                value
                    .parse()
                    .map_err(|_| format!("fault spec `{key}` needs an integer, got `{value}`"))
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec seed needs an integer, got `{value}`"))?
                }
                "crash" | "crashes" => cfg.crashes = unum()?,
                "drop" => cfg.drop_prob = fnum()?,
                "delay" => cfg.delay_prob = fnum()?,
                "delay-ns" => cfg.delay_ns = fnum()?,
                "straggle" | "stragglers" => cfg.stragglers = unum()?,
                "factor" => cfg.straggle_factor = fnum()?,
                "straggle-ns" => cfg.straggle_ns = fnum()?,
                "horizon" => cfg.horizon_ns = fnum()?,
                "heartbeat" => cfg.heartbeat_timeout_ns = fnum()?,
                "ack" => cfg.ack_timeout_ns = fnum()?,
                "backoff" => cfg.respawn_backoff_ns = fnum()?,
                "respawns" => cfg.max_respawns = unum()?,
                "sub-crash" | "sub-crashes" => cfg.sub_crashes = unum()?,
                "root-slow" => cfg.root_slow_factor = fnum()?,
                "kill-group" => cfg.kill_group = Some(unum()?),
                "kill-group-at" => cfg.kill_group_at_ns = fnum()?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        if !(0.0..=1.0).contains(&cfg.drop_prob) || !(0.0..=1.0).contains(&cfg.delay_prob) {
            return Err("fault probabilities must be in [0, 1]".into());
        }
        if cfg.root_slow_factor < 1.0 {
            return Err("root-slow must be >= 1.0 (it is a slowdown factor)".into());
        }
        Ok(cfg)
    }
}

/// The fate of one message crossing the (now unreliable) interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFate {
    /// The message never arrives.
    pub dropped: bool,
    /// Extra latency injected on top of the modeled transfer, ns.
    pub extra_ns: f64,
}

impl MessageFate {
    /// A message that arrives on time.
    pub fn clean() -> Self {
        Self {
            dropped: false,
            extra_ns: 0.0,
        }
    }
}

/// A concrete, seeded fault schedule for one cluster run.
///
/// Crash times and straggler windows are sampled up front (so the schedule
/// is independent of how the run unfolds); per-message drop/delay draws are
/// consumed serially from the same ChaCha stream, which is deterministic
/// because the discrete-event supervisor makes decisions in a fixed order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: ChaosConfig,
    rng: ChaCha8Rng,
    /// Scheduled crashes, `(time_ns, worker)`, sorted by time.
    crashes: Vec<(f64, usize)>,
    /// Straggler windows, `(worker, from_ns, until_ns)`.
    stragglers: Vec<(usize, f64, f64)>,
}

impl FaultPlan {
    /// Samples the concrete schedule for a cluster of `workers` ranks.
    pub fn new(cfg: ChaosConfig, workers: usize) -> Self {
        assert!(workers >= 1, "fault plan needs at least one worker");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut crashes: Vec<(f64, usize)> = (0..cfg.crashes)
            .map(|_| {
                let t = rng.gen_range(0.0..cfg.horizon_ns.max(1.0));
                let w = rng.gen_range(0..workers);
                (t, w)
            })
            .collect();
        crashes.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
        });
        let stragglers: Vec<(usize, f64, f64)> = (0..cfg.stragglers)
            .map(|_| {
                let t = rng.gen_range(0.0..cfg.horizon_ns.max(1.0));
                let w = rng.gen_range(0..workers);
                (w, t, t + cfg.straggle_ns)
            })
            .collect();
        Self {
            cfg,
            rng,
            crashes,
            stragglers,
        }
    }

    /// The profile this plan was sampled from.
    pub fn cfg(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Scheduled crashes as `(time_ns, worker)`, sorted by time.
    pub fn crash_schedule(&self) -> &[(f64, usize)] {
        &self.crashes
    }

    /// Draws the fate of the next message on the wire (consumes RNG state).
    pub fn sample_fate(&mut self) -> MessageFate {
        let dropped = self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob);
        let extra_ns =
            if !dropped && self.cfg.delay_prob > 0.0 && self.rng.gen_bool(self.cfg.delay_prob) {
                self.cfg.delay_ns * self.rng.gen_range(0.5..1.5)
            } else {
                0.0
            };
        MessageFate { dropped, extra_ns }
    }

    /// The evaluation slowdown factor for `worker` at simulated time `t`
    /// (1.0 outside every straggler window).
    pub fn slowdown(&self, worker: usize, t: f64) -> f64 {
        for &(w, from, until) in &self.stragglers {
            if w == worker && t >= from && t < until {
                return self.cfg.straggle_factor.max(1.0);
            }
        }
        1.0
    }

    /// Scheduled sub-supervisor crashes for a hierarchy of `groups` groups,
    /// as `(time_ns, group)` sorted by time. Sampled from a fork of the
    /// seed (like [`Self::thread_crash_points`]) so the schedule neither
    /// consumes nor perturbs the per-message fate stream.
    pub fn sub_crash_schedule(&self, groups: usize) -> Vec<(f64, usize)> {
        assert!(groups >= 1, "hierarchy needs at least one group");
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0xD6E8_FEB8_6659_FD93);
        let mut crashes: Vec<(f64, usize)> = (0..self.cfg.sub_crashes)
            .map(|_| {
                let t = rng.gen_range(0.0..self.cfg.horizon_ns.max(1.0));
                let g = rng.gen_range(0..groups);
                (t, g)
            })
            .collect();
        crashes.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
        });
        crashes
    }

    /// Crash points for the *threaded* backend, which has no simulated
    /// clock: for each rank, `Some(k)` means its worker thread dies when
    /// handed its `k+1`-th assignment (silently, without reporting).
    /// Derived from a fork of the seed so it does not perturb the
    /// message-fate stream of the DES backend.
    pub fn thread_crash_points(&self, workers: usize) -> Vec<Option<usize>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut points = vec![None; workers];
        for _ in 0..self.cfg.crashes {
            let w = rng.gen_range(0..workers);
            let k = rng.gen_range(0..3usize);
            if points[w].is_none() {
                points[w] = Some(k);
            }
        }
        points
    }
}

/// Counters of injected faults and the recovery actions they triggered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crashes that landed on an alive rank.
    pub crashes: usize,
    /// Messages silently dropped.
    pub drops: usize,
    /// Messages delayed on the wire.
    pub delays: usize,
    /// Evaluations slowed by a straggler window.
    pub straggles: usize,
    /// Lost subproblems reassigned (from crash detection or ack timeout).
    pub reassignments: usize,
    /// Ranks respawned after a crash.
    pub respawns: usize,
    /// Ranks permanently retired after exhausting their respawn budget.
    pub degraded_ranks: usize,
    /// Sub-supervisor crashes that landed on an alive group (hierarchy).
    pub sub_crashes: usize,
    /// Sub-supervisors brought back after their backoff (hierarchy).
    pub sub_respawns: usize,
    /// Subtrees the root shipped off a dead or fully-retired group to
    /// survivors (hierarchy; open nodes plus written-off in-flight work).
    pub group_reassigned_subtrees: usize,
}

impl FaultStats {
    /// Whether any fault was injected at all.
    pub fn any(&self) -> bool {
        self.crashes + self.drops + self.delays + self.straggles + self.sub_crashes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_schedules_and_fates() {
        let mk = || {
            FaultPlan::new(
                ChaosConfig {
                    seed: 42,
                    crashes: 5,
                    drop_prob: 0.3,
                    delay_prob: 0.3,
                    stragglers: 2,
                    ..Default::default()
                },
                4,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(a.crash_schedule(), b.crash_schedule());
        for _ in 0..64 {
            assert_eq!(a.sample_fate(), b.sample_fate());
        }
        assert_eq!(a.thread_crash_points(4), b.thread_crash_points(4));
    }

    #[test]
    fn crash_schedule_is_sorted_and_in_horizon() {
        let plan = FaultPlan::new(
            ChaosConfig {
                crashes: 8,
                horizon_ns: 5_000.0,
                ..Default::default()
            },
            3,
        );
        let sched = plan.crash_schedule();
        assert_eq!(sched.len(), 8);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, w) in sched {
            assert!((0.0..5_000.0).contains(&t));
            assert!(w < 3);
        }
    }

    #[test]
    fn slowdown_applies_only_inside_window() {
        let plan = FaultPlan::new(
            ChaosConfig {
                stragglers: 1,
                straggle_factor: 3.0,
                straggle_ns: 100.0,
                horizon_ns: 1_000.0,
                crashes: 0,
                ..Default::default()
            },
            2,
        );
        let &(w, from, until) = &plan.stragglers[0];
        assert_eq!(plan.slowdown(w, from + 1.0), 3.0);
        assert_eq!(plan.slowdown(w, until + 1.0), 1.0);
        assert_eq!(plan.slowdown((w + 1) % 2, from + 1.0), 1.0);
    }

    #[test]
    fn quiet_plan_never_injects() {
        let mut plan = FaultPlan::new(ChaosConfig::quiet(7), 2);
        assert!(plan.crash_schedule().is_empty());
        for _ in 0..32 {
            assert_eq!(plan.sample_fate(), MessageFate::clean());
        }
        assert_eq!(plan.slowdown(0, 0.0), 1.0);
    }

    #[test]
    fn spec_parsing() {
        let bare = ChaosConfig::parse("42").unwrap();
        assert_eq!(bare.seed, 42);
        assert_eq!(bare.crashes, ChaosConfig::default().crashes);
        let full = ChaosConfig::parse(
            "seed=7,crash=3,drop=0.1,delay=0.2,straggle=2,horizon=5e5,respawns=1",
        )
        .unwrap();
        assert_eq!(full.seed, 7);
        assert_eq!(full.crashes, 3);
        assert!((full.drop_prob - 0.1).abs() < 1e-12);
        assert!((full.delay_prob - 0.2).abs() < 1e-12);
        assert_eq!(full.stragglers, 2);
        assert!((full.horizon_ns - 5e5).abs() < 1e-6);
        assert_eq!(full.max_respawns, 1);
        assert!(ChaosConfig::parse("drop=2.0").is_err(), "probability > 1");
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("crash").is_err(), "missing value");
    }

    #[test]
    fn hierarchy_spec_keys() {
        let cfg =
            ChaosConfig::parse("seed=5,sub-crash=2,root-slow=8,kill-group=1,kill-group-at=4e5")
                .unwrap();
        assert_eq!(cfg.sub_crashes, 2);
        assert!((cfg.root_slow_factor - 8.0).abs() < 1e-12);
        assert_eq!(cfg.kill_group, Some(1));
        assert!((cfg.kill_group_at_ns - 4e5).abs() < 1e-6);
        assert!(
            ChaosConfig::parse("root-slow=0.5").is_err(),
            "a speedup is not a straggle"
        );
    }

    #[test]
    fn sub_crash_schedule_is_deterministic_and_independent_of_fates() {
        let mk = || {
            FaultPlan::new(
                ChaosConfig {
                    sub_crashes: 3,
                    drop_prob: 0.3,
                    horizon_ns: 9_000.0,
                    ..ChaosConfig::quiet(13)
                },
                8,
            )
        };
        let (mut a, b) = (mk(), mk());
        // Consuming message fates must not move the sub-crash schedule.
        for _ in 0..10 {
            a.sample_fate();
        }
        assert_eq!(a.sub_crash_schedule(4), b.sub_crash_schedule(4));
        let sched = b.sub_crash_schedule(4);
        assert_eq!(sched.len(), 3);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, g) in &sched {
            assert!((0.0..9_000.0).contains(&t));
            assert!(g < 4);
        }
    }
}
