//! Property-based invariants of the parallel cluster.
//!
//! * The discrete-event supervisor–worker solve reaches the same optimum as
//!   the sequential host solver on random instances;
//! * worker count never changes the answer;
//! * every mid-run snapshot restarts to the same optimum;
//! * message/byte accounting is self-consistent (two messages per node).

use gmip_core::{MipConfig, MipSolver, MipStatus};
use gmip_parallel::{solve_parallel, ParallelConfig, Supervisor};
use gmip_problems::generators::{random_mip, RandomMipConfig};
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = gmip_problems::MipInstance> {
    (2usize..5, 5usize..10, 0.4f64..0.9, 0u64..10_000).prop_map(|(rows, cols, density, seed)| {
        random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 1.0,
            seed,
        })
    })
}

fn host_optimum(inst: &gmip_problems::MipInstance) -> (MipStatus, f64) {
    let mut s = MipSolver::host_baseline(inst.clone(), MipConfig::default());
    let r = s.solve().expect("host solve");
    (r.status, r.objective)
}

fn par_cfg(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        gpu_mem: 1 << 24,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn cluster_matches_host(inst in instance_strategy(), workers in 1usize..5) {
        let (hstatus, hobj) = host_optimum(&inst);
        let r = solve_parallel(&inst, par_cfg(workers)).expect("parallel solve");
        prop_assert_eq!(hstatus, r.status);
        if hstatus == MipStatus::Optimal {
            prop_assert!((hobj - r.objective).abs() < 1e-6,
                "host {} vs cluster({workers}) {}", hobj, r.objective);
        }
        // Accounting: one assignment + one report per evaluated node.
        prop_assert_eq!(r.stats.messages, 2 * r.stats.nodes);
        prop_assert!(r.stats.message_bytes > 0 || r.stats.nodes == 0);
    }

    #[test]
    fn snapshots_always_resume_to_optimum(inst in instance_strategy()) {
        let (hstatus, hobj) = host_optimum(&inst);
        if hstatus != MipStatus::Optimal {
            return Ok(());
        }
        let partial = solve_parallel(
            &inst,
            ParallelConfig {
                node_limit: 4,
                checkpoint_every: Some(2),
                ..par_cfg(2)
            },
        ).expect("partial run");
        for snap in &partial.snapshots {
            let resumed = Supervisor::restore(inst.clone(), par_cfg(2), snap)
                .expect("restore")
                .run()
                .expect("resumed");
            prop_assert_eq!(resumed.status, MipStatus::Optimal);
            prop_assert!((resumed.objective - hobj).abs() < 1e-6,
                "snapshot resume {} vs host {}", resumed.objective, hobj);
        }
    }
}
