//! Property-based invariants of the parallel cluster.
//!
//! * The discrete-event supervisor–worker solve reaches the same optimum as
//!   the sequential host solver on random instances;
//! * worker count never changes the answer;
//! * every mid-run snapshot — taken at a *random* interruption point —
//!   restarts to the same optimum;
//! * message/byte accounting is self-consistent (two messages per node);
//! * a cluster under a random fault plan still matches the host optimum;
//! * the hierarchical cluster, at random fan-outs and steal seeds, matches
//!   the host optimum with every stolen subtree evaluated exactly once —
//!   migration never duplicates or drops dispatched work.

use gmip_core::{MipConfig, MipSolver, MipStatus};
use gmip_parallel::{
    solve_hierarchical, solve_parallel, ChaosConfig, HierarchyConfig, ParallelConfig, Supervisor,
};
use gmip_problems::generators::{random_mip, RandomMipConfig};
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = gmip_problems::MipInstance> {
    (2usize..5, 5usize..10, 0.4f64..0.9, 0u64..10_000).prop_map(|(rows, cols, density, seed)| {
        random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 1.0,
            seed,
        })
    })
}

fn host_optimum(inst: &gmip_problems::MipInstance) -> (MipStatus, f64) {
    let mut s = MipSolver::host_baseline(inst.clone(), MipConfig::default());
    let r = s.solve().expect("host solve");
    (r.status, r.objective)
}

fn par_cfg(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        gpu_mem: 1 << 24,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn cluster_matches_host(inst in instance_strategy(), workers in 1usize..5) {
        let (hstatus, hobj) = host_optimum(&inst);
        let r = solve_parallel(&inst, par_cfg(workers)).expect("parallel solve");
        prop_assert_eq!(hstatus, r.status);
        if hstatus == MipStatus::Optimal {
            prop_assert!((hobj - r.objective).abs() < 1e-6,
                "host {} vs cluster({workers}) {}", hobj, r.objective);
        }
        // Accounting: one assignment + one report per evaluated node.
        prop_assert_eq!(r.stats.messages, 2 * r.stats.nodes);
        prop_assert!(r.stats.message_bytes > 0 || r.stats.nodes == 0);
    }

    #[test]
    fn snapshots_always_resume_to_optimum(
        inst in instance_strategy(),
        node_limit in 2usize..12,
        every in 1usize..4,
        workers in 1usize..4,
    ) {
        let (hstatus, hobj) = host_optimum(&inst);
        if hstatus != MipStatus::Optimal {
            return Ok(());
        }
        // Interrupt the search at a random point, snapshotting at a random
        // cadence on the way — every snapshot must resume to the optimum.
        let partial = solve_parallel(
            &inst,
            ParallelConfig {
                node_limit,
                checkpoint_every: Some(every),
                ..par_cfg(workers)
            },
        ).expect("partial run");
        for snap in &partial.snapshots {
            let resumed = Supervisor::restore(inst.clone(), par_cfg(workers), snap)
                .expect("restore")
                .run()
                .expect("resumed");
            prop_assert_eq!(resumed.status, MipStatus::Optimal);
            prop_assert!((resumed.objective - hobj).abs() < 1e-6,
                "snapshot resume {} vs host {}", resumed.objective, hobj);
        }
    }

    #[test]
    fn chaotic_cluster_matches_host(
        inst in instance_strategy(),
        seed in 0u64..10_000,
        drop in 0.0f64..0.3,
        delay in 0.0f64..0.4,
        crashes in 0usize..4,
    ) {
        let (hstatus, hobj) = host_optimum(&inst);
        let r = solve_parallel(
            &inst,
            ParallelConfig {
                chaos: Some(ChaosConfig {
                    crashes,
                    drop_prob: drop,
                    delay_prob: delay,
                    delay_ns: 20_000.0,
                    ..ChaosConfig::quiet(seed)
                }),
                ..par_cfg(3)
            },
        ).expect("chaotic solve");
        prop_assert_eq!(hstatus, r.status);
        if hstatus == MipStatus::Optimal {
            prop_assert!((hobj - r.objective).abs() < 1e-6,
                "host {} vs chaotic cluster {} (faults {:?})",
                hobj, r.objective, r.stats.faults);
        }
        // Every drop is eventually written off and reassigned.
        prop_assert!(r.stats.faults.reassignments >= r.stats.faults.drops
            || r.status != MipStatus::Optimal,
            "drops {} outnumber reassignments {}",
            r.stats.faults.drops, r.stats.faults.reassignments);
    }

    #[test]
    fn hierarchy_conserves_stolen_work(
        inst in instance_strategy(),
        workers in 2usize..12,
        fanout in 1usize..5,
        steal_seed in 0u64..10_000,
        steal_max in 1usize..6,
    ) {
        let (hstatus, hobj) = host_optimum(&inst);
        let r = solve_hierarchical(
            &inst,
            par_cfg(workers),
            HierarchyConfig { fanout, steal_seed, steal_max, ..Default::default() },
        ).expect("hierarchical solve");
        prop_assert_eq!(hstatus, r.status,
            "topology changed the status (workers {}, fanout {})", workers, fanout);
        if hstatus == MipStatus::Optimal {
            prop_assert!((hobj - r.objective).abs() < 1e-6,
                "host {} vs hierarchy({}x{}) {}", hobj, workers, fanout, r.objective);
        }
        // Conservation of dispatched node ids: no node is ever evaluated
        // twice in a fault-free run (stolen subtrees included), and every
        // migrated subtree that left a group arrived somewhere — transit
        // arrivals are exactly the reopen events, so nothing in flight was
        // dropped on the floor.
        prop_assert_eq!(r.hier.max_evaluations_per_node, 1,
            "a stolen subtree was evaluated more than once: {:?}", r.hier);
        prop_assert_eq!(r.stats.tree.reopened, r.hier.transit_arrivals,
            "fault-free reopens must all be migration arrivals: {:?}", r.hier);
        prop_assert_eq!(r.stats.faults.group_reassigned_subtrees, 0,
            "no group evacuation may fire without faults");
    }
}
