//! Criterion wall-clock benchmarks of the discrete-event cluster and the
//! threaded backend (the harness cost of simulating/running a parallel
//! solve, not the simulated makespan — that is experiment E6's job).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmip_parallel::{solve_parallel, solve_threaded, ParallelConfig};
use gmip_problems::generators::knapsack;
use std::hint::black_box;

fn bench_des_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_cluster");
    g.sample_size(10);
    let inst = knapsack(18, 0.5, 3);
    for workers in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &inst, |b, inst| {
            b.iter(|| {
                let cfg = ParallelConfig {
                    workers,
                    gpu_mem: 1 << 24,
                    ..Default::default()
                };
                solve_parallel(black_box(inst), cfg).expect("solve")
            })
        });
    }
    g.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_cluster");
    g.sample_size(10);
    let inst = knapsack(16, 0.5, 3);
    for workers in [1usize, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &inst, |b, inst| {
            b.iter(|| {
                let cfg = ParallelConfig {
                    workers,
                    gpu_mem: 1 << 24,
                    ..Default::default()
                };
                solve_threaded(black_box(inst), &cfg).expect("solve")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_des_workers, bench_threaded);
criterion_main!(benches);
