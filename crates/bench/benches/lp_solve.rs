//! Criterion wall-clock benchmarks of the LP engine: from-scratch two-phase
//! solves and warm dual re-solves, on the host and device engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmip_gpu::Accel;
use gmip_lp::{BoundChange, DeviceEngine, HostEngine, LpConfig, LpSolver, StandardLp};
use gmip_problems::generators::{random_mip, RandomMipConfig};
use std::hint::black_box;

fn lp_instance(rows: usize, cols: usize) -> gmip_problems::MipInstance {
    random_mip(&RandomMipConfig {
        rows,
        cols,
        density: 0.6,
        integral_fraction: 0.0,
        seed: 11,
    })
}

fn bench_scratch_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_scratch");
    g.sample_size(15);
    for (rows, cols) in [(10usize, 20usize), (30, 60)] {
        let inst = lp_instance(rows, cols);
        g.bench_with_input(
            BenchmarkId::new("host", format!("{rows}x{cols}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let std = StandardLp::from_instance(black_box(inst), &[]);
                    let mut lp =
                        LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
                    lp.solve().expect("solve")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("device", format!("{rows}x{cols}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let accel = Accel::gpu(1);
                    let std = StandardLp::from_instance(black_box(inst), &[]);
                    let mut lp = LpSolver::try_new(std, LpConfig::standard(), |a| {
                        DeviceEngine::new(accel.clone(), a)
                    })
                    .expect("engine");
                    lp.solve().expect("solve")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sparse-device", format!("{rows}x{cols}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let accel = Accel::gpu(1);
                    let std = StandardLp::from_instance(black_box(inst), &[]);
                    let mut lp = LpSolver::try_new(std, LpConfig::standard(), |a| {
                        gmip_lp::SparseDeviceEngine::new(accel.clone(), a)
                    })
                    .expect("engine");
                    lp.solve().expect("solve")
                })
            },
        );
    }
    g.finish();
}

fn bench_warm_resolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_warm_resolve");
    g.sample_size(20);
    let inst = lp_instance(20, 40);
    g.bench_function("host_bound_flip", |b| {
        let std = StandardLp::from_instance(&inst, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        lp.solve().expect("root solve");
        let mut tight = true;
        b.iter(|| {
            let ub = if tight { 0.5 } else { 1.0 };
            tight = !tight;
            lp.apply_node_bounds(&[BoundChange {
                var: 0,
                lb: 0.0,
                ub,
            }])
            .expect("bounds");
            lp.resolve().expect("resolve")
        })
    });
    g.finish();
}

fn bench_ipm_vs_simplex(c: &mut Criterion) {
    use gmip_lp::{solve_ipm, IpmConfig};
    let mut g = c.benchmark_group("lp_ipm_vs_simplex");
    g.sample_size(10);
    let inst = lp_instance(15, 30);
    let std = StandardLp::from_instance(&inst, &[]);
    g.bench_function("simplex_host", |b| {
        b.iter(|| {
            let mut lp = LpSolver::new(black_box(&std).clone(), LpConfig::standard(), |a| {
                HostEngine::new(a.clone())
            });
            lp.solve().expect("solve")
        })
    });
    g.bench_function("ipm_host", |b| {
        b.iter(|| solve_ipm(black_box(&std), &IpmConfig::default(), None).expect("ipm"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scratch_solve,
    bench_warm_resolve,
    bench_ipm_vs_simplex
);
criterion_main!(benches);
