//! Criterion wall-clock benchmarks of the linear-algebra kernels
//! (the numerics behind every simulated device call).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmip_linalg::{batch, CsrMatrix, DenseMatrix, LuFactors, SparseLu};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dd_matrix(n: usize, density: f64, seed: u64) -> DenseMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, n as f64 + rng.gen_range(1.0..3.0));
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                a.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    a
}

fn bench_dense_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_lu");
    g.sample_size(20);
    for n in [32usize, 64, 128] {
        let a = dd_matrix(n, 0.6, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| LuFactors::factorize(black_box(a)).expect("nonsingular"))
        });
    }
    g.finish();
}

fn bench_sparse_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_lu");
    g.sample_size(20);
    for density in [0.05, 0.2] {
        let a = CsrMatrix::from_dense(&dd_matrix(128, density, 2)).to_csc();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{density}")),
            &a,
            |b, a| b.iter(|| SparseLu::factorize(black_box(a)).expect("nonsingular")),
        );
    }
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    g.sample_size(30);
    let a = CsrMatrix::from_dense(&dd_matrix(512, 0.05, 3));
    let x = vec![1.0; 512];
    g.bench_function("csr_512_d0.05", |b| {
        b.iter(|| black_box(&a).matvec(black_box(&x)).expect("dims"))
    });
    let d = dd_matrix(512, 0.05, 3);
    g.bench_function("dense_512", |b| {
        b.iter(|| black_box(&d).matvec(black_box(&x)).expect("dims"))
    });
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_lu_solve");
    g.sample_size(15);
    for count in [16usize, 64] {
        let mats: Vec<DenseMatrix> = (0..count).map(|i| dd_matrix(24, 0.6, i as u64)).collect();
        let rhs: Vec<Vec<f64>> = (0..count).map(|_| vec![1.0; 24]).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(count),
            &(mats, rhs),
            |b, (mats, rhs)| {
                b.iter(|| batch::lu_factor_solve_batch(black_box(mats), black_box(rhs)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dense_lu,
    bench_sparse_lu,
    bench_spmv,
    bench_batched
);
criterion_main!(benches);
