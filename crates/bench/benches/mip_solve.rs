//! Criterion wall-clock benchmarks of full branch-and-cut solves across the
//! catalog suite and solver configurations (the harness's end-to-end cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmip_core::{MipConfig, MipSolver, PolicyKind};
use gmip_problems::catalog::small_suite;
use gmip_problems::generators::knapsack;
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("mip_suite");
    g.sample_size(10);
    for entry in small_suite() {
        g.bench_with_input(
            BenchmarkId::from_parameter(entry.id),
            &entry.instance,
            |b, inst| {
                b.iter(|| {
                    let mut s =
                        MipSolver::host_baseline(black_box(inst).clone(), MipConfig::default());
                    s.solve().expect("solve")
                })
            },
        );
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("mip_policies");
    g.sample_size(10);
    let inst = knapsack(18, 0.5, 9);
    for policy in [
        PolicyKind::BestFirst,
        PolicyKind::DepthFirst,
        PolicyKind::ReuseAffinity,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let cfg = MipConfig {
                        policy,
                        ..Default::default()
                    };
                    let mut s = MipSolver::host_baseline(black_box(inst).clone(), cfg);
                    s.solve().expect("solve")
                })
            },
        );
    }
    g.finish();
}

fn bench_cut_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mip_cuts_ablation");
    g.sample_size(10);
    let inst = knapsack(20, 0.5, 5);
    for cuts in [true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if cuts { "with-cuts" } else { "no-cuts" }),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut cfg = MipConfig::default();
                    cfg.cuts.enabled = cuts;
                    let mut s = MipSolver::host_baseline(black_box(inst).clone(), cfg);
                    s.solve().expect("solve")
                })
            },
        );
    }
    g.finish();
}

fn bench_branch_rules(c: &mut Criterion) {
    use gmip_core::BranchRule;
    let mut g = c.benchmark_group("mip_branch_rules");
    g.sample_size(10);
    let inst = knapsack(18, 0.5, 11);
    for rule in [
        BranchRule::MostFractional,
        BranchRule::PseudoCost,
        BranchRule::Strong,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rule:?}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let cfg = MipConfig {
                        branching: rule,
                        ..Default::default()
                    };
                    let mut s = MipSolver::host_baseline(black_box(inst).clone(), cfg);
                    s.solve().expect("solve")
                })
            },
        );
    }
    g.finish();
}

fn bench_presolve_ablation(c: &mut Criterion) {
    use gmip_core::presolve::solve_host_with_presolve;
    let mut g = c.benchmark_group("mip_presolve_ablation");
    g.sample_size(10);
    let inst = gmip_problems::generators::set_cover(30, 25, 0.15, 7);
    g.bench_with_input(BenchmarkId::from_parameter("direct"), &inst, |b, inst| {
        b.iter(|| {
            let mut s = MipSolver::host_baseline(black_box(inst).clone(), MipConfig::default());
            s.solve().expect("solve")
        })
    });
    g.bench_with_input(
        BenchmarkId::from_parameter("presolved"),
        &inst,
        |b, inst| {
            b.iter(|| {
                solve_host_with_presolve(black_box(inst), MipConfig::default()).expect("solve")
            })
        },
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_suite,
    bench_policies,
    bench_cut_ablation,
    bench_branch_rules,
    bench_presolve_ablation
);
criterion_main!(benches);
