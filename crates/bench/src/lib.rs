//! # gmip-bench
//!
//! The experiment harness of the reproduction: one module per experiment in
//! DESIGN.md's index ([`experiments`]), a table renderer ([`table`]), and
//! the `report` binary that regenerates any experiment's table/figure:
//!
//! ```text
//! cargo run --release -p gmip-bench --bin report -- all
//! cargo run --release -p gmip-bench --bin report -- e1 e4
//! ```
//!
//! Criterion microbenchmarks (wall-clock performance of the kernels, LP
//! engine, and solver) live under `benches/`.

#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod table;
