//! Regenerates the reproduction's experiment tables.
//!
//! Usage: `report [all | <exp-id>...]` where exp ids are listed in
//! `gmip_bench::experiments::ALL` (f1, e1, e2, e3a, e3b, e3c, e4–e8).

use gmip_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, id) in ids.iter().enumerate() {
        match experiments::run(id) {
            Some(text) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(78));
                }
                print!("{text}");
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {:?}", experiments::ALL);
                std::process::exit(2);
            }
        }
    }
}
