//! Regenerates the reproduction's experiment tables.
//!
//! Usage: `report [--trace <dir>] [--bench-json <dir>] [--scale-smoke <dir>]
//! [all | <exp-id>...]` where exp ids are listed in
//! `gmip_bench::experiments::ALL` (f1, e1, e2, e3a, e3b, e3c, e4–e11).
//! With `--trace`, each experiment's span stream is captured and written
//! to `<dir>/<exp-id>.trace.json` in Chrome trace-event format (load at
//! ui.perfetto.dev). With `--bench-json`, the deterministic simulated-ns
//! records are written to `<dir>/BENCH_e4.json` (the E4 batched-wave
//! sweep), `<dir>/BENCH_serve.json` (the E9 serving SLO sweep),
//! `<dir>/BENCH_scale.json` (the E10 rank-scaling sweep),
//! `<dir>/BENCH_e11.json` (the E11 node-LP engine crossover sweep),
//! `<dir>/BENCH_e12.json` (the E12 time-to-first-incumbent grid:
//! propagation on/off × fix-and-propagate dive on/off),
//! `<dir>/BENCH_e13.json` (the E13 executing-backend identity + wall-clock
//! scaling sweep; its `wall` keys are real time and exempt from the gate), and
//! `<dir>/BENCH_baseline.json` (the full regression baseline the
//! `bench-regression` CI job compares against). With `--scale-smoke`,
//! only the E10 4/64/256-rank cells are re-run and written to
//! `<dir>/BENCH_scale_smoke.json` (the `scale-smoke` CI job compares them
//! against the committed full record); no experiments are printed unless
//! ids are also given.

use gmip_bench::{baseline, experiments};

fn dir_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("{flag} needs a directory");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = dir_flag(&mut args, "--trace");
    let bench_dir = dir_flag(&mut args, "--bench-json");
    let smoke_dir = dir_flag(&mut args, "--scale-smoke");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        // `--scale-smoke` with no explicit ids runs only the smoke subset.
        if smoke_dir.is_some() && args.is_empty() {
            Vec::new()
        } else {
            experiments::ALL.to_vec()
        }
    } else {
        args.iter().map(String::as_str).collect()
    };
    for dir in [&trace_dir, &bench_dir, &smoke_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    for (i, id) in ids.iter().enumerate() {
        let session = trace_dir
            .as_ref()
            .map(|_| gmip_trace::TraceSession::start());
        match experiments::run(id) {
            Some(text) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(78));
                }
                print!("{text}");
                if let (Some(session), Some(dir)) = (session, &trace_dir) {
                    let trace = session.finish();
                    let path = format!("{dir}/{id}.trace.json");
                    match std::fs::write(&path, trace.to_chrome_json()) {
                        Ok(()) => eprintln!("trace: {} events -> {path}", trace.len()),
                        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
                    }
                }
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {:?}", experiments::ALL);
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &bench_dir {
        for (path, json) in [
            (
                format!("{dir}/BENCH_e4.json"),
                experiments::e4::bench_json(),
            ),
            (
                format!("{dir}/BENCH_serve.json"),
                experiments::e9::bench_json(),
            ),
            (
                format!("{dir}/BENCH_scale.json"),
                experiments::e10::bench_json(),
            ),
            (
                format!("{dir}/BENCH_e11.json"),
                experiments::e11::bench_json(),
            ),
            (
                format!("{dir}/BENCH_e12.json"),
                experiments::e12::bench_json(),
            ),
            (
                format!("{dir}/BENCH_e13.json"),
                experiments::e13::bench_json(),
            ),
            (format!("{dir}/BENCH_baseline.json"), baseline::to_json()),
        ] {
            match std::fs::write(&path, json) {
                Ok(()) => eprintln!("bench: wrote {path}"),
                Err(e) => {
                    eprintln!("bench: cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(dir) = &smoke_dir {
        let path = format!("{dir}/BENCH_scale_smoke.json");
        match std::fs::write(&path, experiments::e10::smoke_json()) {
            Ok(()) => eprintln!("bench: wrote {path}"),
            Err(e) => {
                eprintln!("bench: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}
