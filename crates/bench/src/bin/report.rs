//! Regenerates the reproduction's experiment tables.
//!
//! Usage: `report [--trace <dir>] [all | <exp-id>...]` where exp ids are
//! listed in `gmip_bench::experiments::ALL` (f1, e1, e2, e3a, e3b, e3c,
//! e4–e8). With `--trace`, each experiment's span stream is captured and
//! written to `<dir>/<exp-id>.trace.json` in Chrome trace-event format
//! (load at ui.perfetto.dev).

use gmip_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--trace needs a directory");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    };
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    for (i, id) in ids.iter().enumerate() {
        let session = trace_dir
            .as_ref()
            .map(|_| gmip_trace::TraceSession::start());
        match experiments::run(id) {
            Some(text) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(78));
                }
                print!("{text}");
                if let (Some(session), Some(dir)) = (session, &trace_dir) {
                    let trace = session.finish();
                    let path = format!("{dir}/{id}.trace.json");
                    match std::fs::write(&path, trace.to_chrome_json()) {
                        Ok(()) => eprintln!("trace: {} events -> {path}", trace.len()),
                        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
                    }
                }
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {:?}", experiments::ALL);
                std::process::exit(2);
            }
        }
    }
}
