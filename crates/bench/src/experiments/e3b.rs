//! E3b — cut incorporation: the device↔host round trip.
//!
//! Paper source: Section 5.2. Claims reproduced:
//! * with no GPU cut generators, separation runs on the CPU and "will
//!   require the latest copy of the matrix (of the current branch-and-cut
//!   node) to be copied from the device to the host" — here the tableau
//!   rows cross D2H and the generated cut rows return H2D;
//! * the traffic is proportional to cut activity and the bound tightens in
//!   exchange.

use crate::experiments::gpu;
use crate::table::{fmt_bytes, Table};
use gmip_core::{MipConfig, MipSolver};
use gmip_problems::generators::knapsack;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E3b: CPU-side cut generation traffic (paper Section 5.2)\n\n");
    let instance = knapsack(40, 0.5, 13);
    let mut t = Table::new(&[
        "cut rounds",
        "cuts",
        "D2H xfers",
        "D2H bytes",
        "H2D xfers",
        "H2D bytes",
        "root bound",
    ]);
    for max_rounds in [0usize, 1, 3, 6] {
        let accel = gpu(1 << 30);
        let mut cfg = MipConfig::default();
        cfg.cuts.enabled = max_rounds > 0;
        cfg.cuts.max_rounds = max_rounds.max(1);
        cfg.node_limit = 1; // root only: isolate the cut loop
        cfg.heuristics.rounding = false;
        let mut solver = MipSolver::on_accel(instance.clone(), cfg, accel.clone());
        let r = solver.solve().expect("root solve");
        let s = accel.stats();
        // Root bound = best open bound after the single evaluated node.
        let bound = r.tree.best_open_bound().unwrap_or(r.objective);
        t.row(vec![
            max_rounds.to_string(),
            r.stats.cuts.to_string(),
            s.d2h_transfers.to_string(),
            fmt_bytes(s.d2h_bytes),
            s.h2d_transfers.to_string(),
            fmt_bytes(s.h2d_bytes),
            format!("{bound:.3}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: more cut rounds → more D2H (tableau rows out) and H2D (cut rows \
         back), in exchange for a tighter root bound.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cut_rounds_grow_traffic_and_tighten_bound() {
        let s = super::run();
        let rows: Vec<Vec<String>> = s
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with(char::is_numeric)
            })
            .map(|l| l.split_whitespace().map(str::to_string).collect())
            .collect();
        assert!(rows.len() >= 3);
        // Bound column (last) is non-increasing with more rounds.
        let bounds: Vec<f64> = rows
            .iter()
            .map(|r| r.last().expect("row has cells").parse().expect("bound"))
            .collect();
        for w in bounds.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "bound loosened: {bounds:?}");
        }
        // With rounds > 0 there must be cuts.
        let cuts: usize = rows.last().expect("rows")[1].parse().expect("cuts");
        assert!(cuts > 0, "no cuts generated at max rounds");
    }
}
