//! E7 — the linear-algebra substrate: dense efficiency, batched launches,
//! and factorization update/reuse.
//!
//! Paper source: Sections 4.1–4.3. Claims reproduced:
//! * dense LU reaches high device efficiency at scale (compute-bound
//!   roofline) while sparse LU stays throughput-limited;
//! * batched small-matrix routines (MAGMA/Rennich-style) amortize launches;
//! * a rank-1 eta update costs far less than refactorizing the basis.

use crate::experiments::gpu;
use crate::table::{fmt_ns, Table};
use gmip_gpu::{CostModel, DEFAULT_STREAM as S};
use gmip_linalg::{CsrMatrix, DenseMatrix};
use rand::{Rng, SeedableRng};

fn dd_matrix(n: usize, density: f64, seed: u64) -> DenseMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, n as f64 + rng.gen_range(1.0..3.0));
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                a.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    a
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E7: linear-algebra kernels on the device (paper Section 4)\n\n");

    // Part A: dense LU size sweep with achieved fraction of peak.
    out.push_str("part A: dense LU factorization size sweep\n");
    let peak = CostModel::gpu_pcie().dense_flops_per_ns;
    let mut t = Table::new(&["n", "kernel time", "flops", "% of peak"]);
    for n in [64usize, 128, 256, 512] {
        let a = dd_matrix(n, 0.5, 7);
        let dev = gpu(1 << 30);
        dev.with(|d| {
            let h = d.upload_matrix(&a, S)?;
            d.lu_factor(h, S)
        })
        .expect("LU");
        let s = dev.stats();
        let eff = s.flops / s.kernel_ns / peak;
        t.row(vec![
            n.to_string(),
            fmt_ns(s.kernel_ns),
            format!("{:.2e}", s.flops),
            format!("{:.0}%", 100.0 * eff),
        ]);
    }
    out.push_str(&t.render());

    // Part B: batched vs looped factorization of many small matrices.
    out.push_str("\npart B: batched vs looped small-matrix factor+solve (64 of 24x24)\n");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
    let systems: Vec<(DenseMatrix, Vec<f64>)> = (0..64)
        .map(|_| {
            let a = dd_matrix(24, 0.6, rng.gen());
            let b: Vec<f64> = (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect();
            (a, b)
        })
        .collect();
    let looped = gpu(1 << 30);
    looped
        .with(|d| -> Result<(), gmip_gpu::GpuError> {
            for (a, b) in &systems {
                let ah = d.upload_matrix(a, S)?;
                let bh = d.upload_vector(b, S)?;
                let f = d.lu_factor(ah, S)?;
                d.lu_solve(f, bh, S)?;
            }
            Ok(())
        })
        .expect("looped");
    let batched = gpu(1 << 30);
    batched
        .with(|d| -> Result<(), gmip_gpu::GpuError> {
            let mut hs = Vec::new();
            for (a, b) in &systems {
                hs.push((d.upload_matrix(a, S)?, d.upload_vector(b, S)?));
            }
            d.batched_lu_solve(&hs, S)?;
            Ok(())
        })
        .expect("batched");
    let (ln, bn) = (looped.elapsed_ns(), batched.elapsed_ns());
    let mut t = Table::new(&["mode", "launches", "sim time"]);
    t.row(vec![
        "looped".into(),
        looped.stats().kernel_launches.to_string(),
        fmt_ns(ln),
    ]);
    t.row(vec![
        "batched".into(),
        batched.stats().kernel_launches.to_string(),
        fmt_ns(bn),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!("batching win: {:.1}x\n", ln / bn));
    assert!(bn < ln);

    // Part C: eta (rank-1) update vs refactorization. The basis must be
    // large enough that factorization compute dominates launch latency —
    // exactly the regime where the paper says update support matters.
    out.push_str("\npart C: rank-1 basis update vs refactorization (n = 768)\n");
    let n = 768;
    let b0 = dd_matrix(n, 0.05, 3);
    let dev = gpu(1 << 30);
    let (update_ns, refactor_ns) = dev
        .with(|d| -> Result<(f64, f64), gmip_gpu::GpuError> {
            let bh = d.upload_matrix(&b0, S)?;
            let eta = d.eta_factor(bh, S)?;
            // One rank-1 update: FTRAN a column, record an eta.
            let col = d.extract_column(bh, 0, S)?;
            let t0 = d.elapsed_ns();
            let alpha = d.eta_ftran(eta, col, S)?;
            d.eta_update(eta, 0, alpha, S)?;
            let t1 = d.elapsed_ns();
            // Full refactorization for comparison.
            d.eta_refactorize(eta, bh, S)?;
            let t2 = d.elapsed_ns();
            Ok((t1 - t0, t2 - t1))
        })
        .expect("eta comparison");
    let mut t = Table::new(&["operation", "sim time"]);
    t.row(vec![
        "rank-1 eta update (FTRAN + append)".into(),
        fmt_ns(update_ns),
    ]);
    t.row(vec!["full refactorization".into(), fmt_ns(refactor_ns)]);
    out.push_str(&t.render());
    assert!(update_ns < refactor_ns);

    // Part D: sparse LU stays far from dense throughput.
    out.push_str("\npart D: sparse LU effective throughput (n = 256)\n");
    let mut t = Table::new(&["density", "fill nnz", "kernel time", "Gflop/s"]);
    for density in [0.02, 0.1, 0.3] {
        let a = dd_matrix(256, density, 5);
        let sp = CsrMatrix::from_dense(&a);
        let dev = gpu(1 << 30);
        dev.with(|d| {
            let h = d.upload_sparse(&sp, S)?;
            d.sparse_lu_factor(h, S)
        })
        .expect("sparse LU");
        let s = dev.stats();
        t.row(vec![
            format!("{density:.2}"),
            format!("{:.0}", s.flops / 4.0),
            fmt_ns(s.kernel_ns),
            format!("{:.0}", s.flops / s.kernel_ns),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n(device dense peak: {:.0} Gflop/s; sparse ceiling: {:.0} Gflop/s)\n",
        peak,
        CostModel::gpu_pcie().sparse_flops_per_ns
    ));
    out.push_str(
        "shape check: dense LU approaches peak as n grows; batching amortizes launches; \
         rank-1 updates are cheap; sparse throughput is capped well below dense.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn dense_efficiency_grows_with_n() {
        let s = super::run();
        let effs: Vec<f64> = s
            .lines()
            .filter(|l| l.trim_end().ends_with('%') && l.trim_start().starts_with(char::is_numeric))
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|v| v.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(effs.len() >= 4, "expected efficiency rows: {s}");
        assert!(
            effs[effs.len() - 1] > effs[0],
            "efficiency should grow with n: {effs:?}"
        );
        assert!(s.contains("batching win"));
    }
}
