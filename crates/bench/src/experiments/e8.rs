//! E8 — host↔device transfer cost as the make-or-break factor.
//!
//! Paper source: Sections 1 and 3 ("host-to-accelerator memory transfer
//! costs complicate the MIP solver adaption"; Strategy 2 amortizes one
//! matrix upload across many node evaluations). Claims reproduced:
//! * GPU offload pays off only when the interconnect is fast enough (or
//!   traffic amortized enough) relative to the kernel gains;
//! * sweeping the link from slow-PCIe to zero-copy moves the GPU/CPU
//!   crossover.

use crate::table::{fmt_ns, Table};
use gmip_core::{MipConfig, MipSolver};
use gmip_gpu::{Accel, CostModel, DeviceConfig};
use gmip_problems::generators::{random_mip, RandomMipConfig};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E8: interconnect sweep — where GPU offload pays (paper Sections 1/3)\n\n");
    // A mid-size dense-ish instance: big enough for kernels to matter.
    let instance = random_mip(&RandomMipConfig {
        rows: 30,
        cols: 60,
        density: 0.7,
        integral_fraction: 0.4,
        seed: 88,
    });

    // CPU reference: same engine code under the host cost model.
    let cpu_accel = Accel::cpu();
    let mut cfg = MipConfig::default();
    cfg.heuristics.rounding = false;
    let mut solver = MipSolver::on_accel(instance.clone(), cfg.clone(), cpu_accel.clone());
    let cpu_r = solver.solve().expect("cpu run");
    let cpu_ns = cpu_r.stats.sim_time_ns;

    let mut t = Table::new(&["link", "latency", "bandwidth", "sim time", "vs CPU"]);
    t.row(vec![
        "cpu (no offload)".into(),
        "-".into(),
        "-".into(),
        fmt_ns(cpu_ns),
        "1.00x".into(),
    ]);
    let base = CostModel::gpu_pcie();
    let links = [
        ("pcie x0.1", base.with_link_scaled(0.1, 4.0)),
        ("pcie", base.clone()),
        ("nvlink", CostModel::gpu_nvlink()),
        ("zero-copy", CostModel::gpu_zero_copy()),
    ];
    let mut ratios = Vec::new();
    for (name, cost) in links {
        let accel = Accel::gpu_with(DeviceConfig {
            cost: cost.clone(),
            mem_capacity: 1 << 30,
            streams: 1,
        });
        let mut solver = MipSolver::on_accel(instance.clone(), cfg.clone(), accel);
        let r = solver.solve().expect("gpu run");
        assert!(
            (r.objective - cpu_r.objective).abs() < 1e-5,
            "link sweep changed the optimum"
        );
        let ratio = cpu_ns / r.stats.sim_time_ns;
        ratios.push(ratio);
        t.row(vec![
            name.into(),
            if cost.link_latency_ns > 0.0 {
                fmt_ns(cost.link_latency_ns)
            } else {
                "0".into()
            },
            if cost.link_bw_bytes_per_ns.is_finite() {
                format!("{:.0} GB/s", cost.link_bw_bytes_per_ns)
            } else {
                "∞".into()
            },
            fmt_ns(r.stats.sim_time_ns),
            format!("{ratio:.2}x"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nfaster links help monotonically: {:?}\n",
        ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    ));
    for w in ratios.windows(2) {
        assert!(
            w[1] >= w[0] * 0.98,
            "speedup should not degrade with a faster link: {ratios:?}"
        );
    }
    out.push_str(
        "shape check: at this node-LP size the per-kernel launch overhead dominates, so \
         CPU execution can stay competitive — the paper's point that offload pays only \
         when matrices are large or traffic is amortized. Faster links monotonically \
         close the gap.\n",
    );

    // Part B: the offload crossover at the kernel level — one LU + its
    // operand transfer, CPU vs GPU, across sizes. This is where "GPU
    // linear algebra routines ... allow very fast operation" kicks in.
    out.push_str("\npart B: single-factorization offload crossover (LU of n x n + transfer)\n");
    let mut t = Table::new(&[
        "n",
        "cpu",
        "gpu (pcie)",
        "gpu/cpu",
        "energy gpu/cpu",
        "winner",
    ]);
    let mut winners = Vec::new();
    for n in [64usize, 128, 256, 512, 1024] {
        let a = crate::experiments::e2_matrix(n);
        let cpu_dev = Accel::cpu();
        cpu_dev
            .with(|d| {
                let h = d.upload_matrix(&a, gmip_gpu::DEFAULT_STREAM)?;
                d.lu_factor(h, gmip_gpu::DEFAULT_STREAM)
            })
            .expect("cpu LU");
        let cpu_t = cpu_dev.elapsed_ns();
        let gpu_dev = Accel::gpu_with(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 30,
            streams: 1,
        });
        gpu_dev
            .with(|d| {
                let h = d.upload_matrix(&a, gmip_gpu::DEFAULT_STREAM)?;
                d.lu_factor(h, gmip_gpu::DEFAULT_STREAM)
            })
            .expect("gpu LU");
        let gpu_t = gpu_dev.elapsed_ns();
        let winner = if gpu_t < cpu_t { "gpu" } else { "cpu" };
        winners.push((n, winner));
        t.row(vec![
            n.to_string(),
            fmt_ns(cpu_t),
            fmt_ns(gpu_t),
            format!("{:.2}", gpu_t / cpu_t),
            format!("{:.2}", gpu_dev.energy_j() / cpu_dev.energy_j()),
            winner.into(),
        ]);
    }
    out.push_str(&t.render());
    // The crossover must exist: CPU wins small, GPU wins large.
    assert_eq!(winners.first().expect("rows").1, "cpu");
    assert_eq!(winners.last().expect("rows").1, "gpu");
    out.push_str(
        "\nshape check: the offload crossover — launch+transfer overhead loses at small n, \
         device throughput wins at large n (Section 3's 'matrix sizes that fit entirely \
         within one accelerator's memory' sweet spot). Past the crossover the GPU also \
         wins on energy despite its 2x power draw (the Section 2.2 efficiency claim).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn link_speed_helps_monotonically() {
        // The assertions inside run() are the test.
        let s = super::run();
        assert!(s.contains("zero-copy"));
        assert!(s.contains("vs CPU"));
    }
}
