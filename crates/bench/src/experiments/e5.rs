//! E5 — consistent snapshots in parallel search: correctness and overhead.
//!
//! Paper source: Section 2.1. Claims reproduced:
//! * a consistent snapshot "preserves the optimal solution" — restarting
//!   from any captured snapshot reaches the same optimum;
//! * in parallel it must account for nodes being evaluated and in transit —
//!   the supervisor's snapshot does, and the experiment restarts from a
//!   snapshot taken while work was genuinely outstanding;
//! * snapshot frequency costs makespan (stop-the-world serialization).

use crate::table::{fmt_ns, Table};
use gmip_core::MipStatus;
use gmip_parallel::{solve_parallel, ParallelConfig, Supervisor};
use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E5: consistent snapshots — correctness and overhead (paper Section 2.1)\n\n");
    // Seed chosen so the branch-and-bound tree is deep (hundreds of nodes):
    // the restart-correctness section needs snapshots captured while work
    // is genuinely outstanding, which a root-integral instance never hits.
    let instance = knapsack(22, 0.5, 1);
    // Ground truth from the exact rational oracle, cross-checked against
    // exhaustive enumeration: two independent derivations of the optimum.
    let expected = crate::experiments::oracle_optimum(&instance);
    assert!(
        (expected - knapsack_brute_force(&instance)).abs() < 1e-6,
        "oracle and brute force disagree on the E5 instance"
    );

    // Overhead sweep.
    let mut t = Table::new(&["checkpoint every", "checkpoints", "makespan", "overhead"]);
    let base_cfg = ParallelConfig {
        workers: 4,
        gpu_mem: 1 << 26,
        ..Default::default()
    };
    let baseline = solve_parallel(&instance, base_cfg.clone()).expect("baseline");
    assert!((baseline.objective - expected).abs() < 1e-6);
    let base_ns = baseline.stats.makespan_ns;
    t.row(vec![
        "never".into(),
        "0".into(),
        fmt_ns(base_ns),
        "-".into(),
    ]);
    for every in [32usize, 8, 2] {
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                checkpoint_every: Some(every),
                ..base_cfg.clone()
            },
        )
        .expect("checkpointed run");
        assert!((r.objective - expected).abs() < 1e-6);
        t.row(vec![
            every.to_string(),
            r.stats.checkpoints.to_string(),
            fmt_ns(r.stats.makespan_ns),
            format!("{:+.2}%", 100.0 * (r.stats.makespan_ns - base_ns) / base_ns),
        ]);
    }
    out.push_str(&t.render());

    // Correctness: restart from EVERY snapshot of a mid-search run.
    let partial = solve_parallel(
        &instance,
        ParallelConfig {
            node_limit: 12,
            checkpoint_every: Some(3),
            ..base_cfg.clone()
        },
    )
    .expect("partial run");
    let mut restarts_ok = 0;
    let total = partial.snapshots.len();
    for snap in &partial.snapshots {
        let resumed = Supervisor::restore(
            instance.clone(),
            ParallelConfig {
                node_limit: 1_000_000,
                checkpoint_every: None,
                ..base_cfg.clone()
            },
            snap,
        )
        .expect("restore")
        .run()
        .expect("resumed run");
        if resumed.status == MipStatus::Optimal && (resumed.objective - expected).abs() < 1e-6 {
            restarts_ok += 1;
        }
    }
    out.push_str(&format!(
        "\nrestart correctness: {restarts_ok}/{total} snapshots resumed to the optimum {expected}\n"
    ));
    assert_eq!(
        restarts_ok, total,
        "every snapshot must preserve the optimum"
    );
    out.push_str(
        "shape check: snapshots are consistent (optimum preserved from every capture); \
         higher frequency costs makespan.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_restarts_reach_optimum() {
        let s = super::run();
        let line = s
            .lines()
            .find(|l| l.contains("restart correctness"))
            .expect("correctness line");
        let frac = line
            .split(':')
            .nth(1)
            .and_then(|t| t.split_whitespace().next())
            .expect("fraction");
        let (ok, total) = frac.split_once('/').expect("a/b");
        assert_eq!(ok, total);
        assert!(total.parse::<usize>().expect("count") > 0);
    }
}
