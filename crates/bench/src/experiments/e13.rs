//! E13 — executing backends: the native rayon backend vs the simulator
//! oracle, at every lane width and thread count.
//!
//! Paper source: Section 5 measures fused kernel classes on real devices;
//! the reproduction's simulator charges the same classes on a logical
//! clock. This experiment closes the loop: the `Accelerator` trait now has
//! a `NativeAccelerator` that *executes* every fused class
//! (`fo.spmv_t`/`fo.axpy`/`fo.spmv`, `prop.round` sweeps, `heur.dive`
//! batches) across a persistent host thread pool — one fused dispatch per
//! class per superstep, parallel across lanes only, sequential inside a
//! lane — while charging the exact same simulated ns through the same
//! `GpuDevice` ledger.
//!
//! Claim reproduced: the backend is invisible to the byte-determinism
//! surface. At every E11 family × lane width {4, 16, 64, 128} × rayon
//! thread count {1, 2, 4, 8}, the native backend serves the same optimum
//! as the `gmip-verify` exact oracle, a bitwise-equal simulated makespan,
//! and bit-identical counters — only the `wall.*` registry (real
//! wall-clock per class, threads, dispatches) differs, and that registry
//! never enters traces, metrics diffs, or the bench gate. The committed
//! record keeps simulated ns under the 2% gate and counts bit-stable;
//! `wall` keys are explicitly skipped by the `bench-regression` job
//! because real time is allowed to vary run to run.
//!
//! The wall-clock columns are the scaling curve: on a multi-core host the
//! per-class wall time at width >= 64 improves as threads grow (checked
//! with headroom up to the machine's available parallelism; on a 1-core
//! runner the check is vacuous and the sweep still pins identity).
//!
//! The machine-readable record is `BENCH_e13.json`; `*_ns` keys get the
//! standard 2% gate, bare keys must be bit-stable, and keys containing
//! `wall` are ignored by the gate.

use crate::experiments::{e11, gpu, oracle_optimum};
use crate::table::{fmt_ns, Table};
use gmip_core::{solve_first_order_wave, FirstOrderWaveConfig};
use gmip_gpu::BackendKind;
use gmip_problems::MipInstance;

/// Lane widths swept (same grid as E11).
pub const LANES: &[usize] = &[4, 16, 64, 128];

/// Rayon thread counts the native backend is swept over.
pub const THREADS: &[usize] = &[1, 2, 4, 8];

/// Device memory for every cell (never the binding constraint here).
const MEM: usize = 1 << 30;

/// One measured cell: one instance family × one lane width, the simulator
/// oracle plus the native backend at every thread count.
#[derive(Debug, Clone)]
pub struct BackendCell {
    /// Instance family id (`light` / `heavy`, from E11).
    pub family: &'static str,
    /// Requested lane width.
    pub lanes: usize,
    /// Simulated makespan under the `Sim` backend — the oracle value the
    /// native runs must reproduce bit-for-bit.
    pub sim_ns: f64,
    /// Kernel launches charged (identical across backends).
    pub launches: u64,
    /// Lockstep supersteps executed (identical across backends).
    pub supersteps: usize,
    /// Nodes evaluated (identical across backends).
    pub nodes: usize,
    /// The optimum every backend agreed on (oracle-checked by callers).
    pub objective: f64,
    /// Per-thread-count real wall-clock: `(threads, summed wall.*.ns)`.
    /// Real time — excluded from every determinism surface.
    pub wall: Vec<(usize, f64)>,
}

/// The E13 solve configuration: E11's first-order wave with propagation
/// and the batched dive enabled, so the native backend executes all six
/// fused kernel classes, not just the PDHG trio.
fn config(lanes: usize, backend: BackendKind) -> FirstOrderWaveConfig {
    FirstOrderWaveConfig {
        lanes,
        pdhg: e11::pdhg(),
        propagate: true,
        heuristic_period: 64,
        backend,
        ..Default::default()
    }
}

/// A solve's determinism fingerprint: everything that must be identical
/// across backends — objective/makespan bits, node and superstep counts,
/// and every non-`wall.` counter, bit for bit.
fn fingerprint(
    m: &MipInstance,
    lanes: usize,
    backend: BackendKind,
) -> (
    String,
    usize,
    usize,
    u64,
    Vec<(String, String)>,
    f64,
    f64,
    f64,
) {
    let r = solve_first_order_wave(m, &config(lanes, backend), gpu(MEM)).expect("wave solve");
    let mut counters: Vec<(String, String)> = r
        .metrics
        .counters()
        .filter(|(k, _)| !k.starts_with("wall."))
        .map(|(k, v)| (k.to_string(), format!("{v:?}")))
        .collect();
    counters.sort();
    let wall_ns: f64 = r
        .metrics
        .counters()
        .filter(|(k, _)| k.starts_with("wall.") && k.ends_with(".ns"))
        .map(|(_, v)| v)
        .sum();
    (
        format!("{:?}", r.objective),
        r.nodes,
        r.supersteps,
        r.device.kernel_launches,
        counters,
        r.objective,
        r.makespan_ns,
        wall_ns,
    )
}

fn run_cell(family: &'static str, m: &MipInstance, lanes: usize) -> BackendCell {
    let sim = fingerprint(m, lanes, BackendKind::Sim);
    assert_eq!(
        sim.7, 0.0,
        "{family} w{lanes}: simulator charged wall-clock"
    );
    let mut wall = Vec::new();
    for &threads in THREADS {
        let nat = fingerprint(m, lanes, BackendKind::Native { threads });
        // Everything but real time is bit-identical to the simulator.
        assert_eq!(
            (&nat.0, nat.1, nat.2, nat.3, &nat.4, nat.6.to_bits()),
            (&sim.0, sim.1, sim.2, sim.3, &sim.4, sim.6.to_bits()),
            "{family} w{lanes}: native @ {threads} threads diverged from the simulator"
        );
        assert!(
            nat.7 > 0.0,
            "{family} w{lanes}: native @ {threads} threads recorded no wall-clock"
        );
        wall.push((threads, nat.7));
    }
    BackendCell {
        family,
        lanes,
        sim_ns: sim.6,
        launches: sim.3,
        supersteps: sim.2,
        nodes: sim.1,
        objective: sim.5,
        wall,
    }
}

/// Runs the sweep, optionally restricted to the given lane widths.
pub fn sweep(lanes_filter: Option<&[usize]>) -> Vec<BackendCell> {
    let mut cells = Vec::new();
    for (family, m) in e11::instances() {
        for &lanes in LANES {
            if lanes_filter.is_some_and(|f| !f.contains(&lanes)) {
                continue;
            }
            cells.push(run_cell(family, &m, lanes));
        }
    }
    cells
}

/// Asserts the E13 acceptance claims on `cells`.
///
/// Identity (optimum, simulated ns, counters) is asserted inside
/// `run_cell` at every thread count; here the wall-clock scaling shape is
/// checked up to the host's real parallelism. Real time is noisy, so each
/// doubling gets generous headroom: going from `t` to `2t` threads (both
/// within the machine's available parallelism) must not make a wide wave
/// more than 25% slower. On a multi-core runner that pins the scaling
/// direction at width >= 64; on a 1-core host only the `threads == 1`
/// cell qualifies and the check is vacuous.
fn assert_claims(cells: &[BackendCell]) {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    for c in cells.iter().filter(|c| c.lanes >= 64) {
        for pair in c.wall.windows(2) {
            let ((t_lo, w_lo), (t_hi, w_hi)) = (pair[0], pair[1]);
            if t_hi > avail {
                continue;
            }
            assert!(
                w_hi <= w_lo * 1.25,
                "{} w{}: wall-clock got worse with more threads \
                 ({t_lo} threads: {w_lo:.0} ns, {t_hi} threads: {w_hi:.0} ns)",
                c.family,
                c.lanes,
            );
        }
    }
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E13: executing backends — native rayon vs the simulator oracle\n\n");
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    out.push_str(&format!(
        "host parallelism: {avail} (wall-clock scaling asserted up to this)\n\n"
    ));
    let cells = sweep(None);
    for c in &cells {
        let (_, m) = e11::instances()
            .into_iter()
            .find(|(f, _)| *f == c.family)
            .expect("family exists");
        let exact = oracle_optimum(&m);
        assert!(
            (c.objective - exact).abs() < 1e-6,
            "{} w{}: optimum {} disagrees with the exact oracle {exact}",
            c.family,
            c.lanes,
            c.objective
        );
    }
    let mut t = Table::new(&[
        "family",
        "lanes",
        "sim makespan",
        "launches",
        "supersteps",
        "wall t=1",
        "wall t=2",
        "wall t=4",
        "wall t=8",
    ]);
    for c in &cells {
        let mut row = vec![
            c.family.to_string(),
            c.lanes.to_string(),
            fmt_ns(c.sim_ns),
            c.launches.to_string(),
            c.supersteps.to_string(),
        ];
        for &(_, w) in &c.wall {
            row.push(fmt_ns(w));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    assert_claims(&cells);
    out.push_str(
        "\nshape check: at every cell the native backend served the exact-oracle\n\
         optimum with a bitwise-equal simulated makespan and bit-identical\n\
         counters at 1, 2, 4, and 8 rayon threads — the executing backend is\n\
         invisible to everything but `wall.*`. The wall columns are real time:\n\
         they scale with threads up to the host's parallelism at width >= 64\n\
         and are excluded from traces, metric diffs, and the 2% bench gate.\n\
         (machine-readable copy: BENCH_e13.json)\n",
    );
    out
}

/// Machine-readable record of the sweep (`BENCH_e13.json`).
pub fn bench_json() -> String {
    cells_json(&sweep(None))
}

fn cells_json(cells: &[BackendCell]) -> String {
    // Key conventions: `*_ns` = simulated time, 2% gate headroom; bare
    // keys = counts, bit-stable; keys containing `wall` = real time,
    // skipped by the gate entirely (they vary run to run by design).
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-e13/1\",\n  \"metrics\": {\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let key = format!("e13.{}.w{:03}", c.family, c.lanes);
        s.push_str(&format!(
            "    \"{key}.sim_ns\": {:.1},\n    \
             \"{key}.launches\": {},\n    \
             \"{key}.supersteps\": {},\n    \
             \"{key}.nodes\": {},\n",
            c.sim_ns, c.launches, c.supersteps, c.nodes,
        ));
        for (j, &(threads, w)) in c.wall.iter().enumerate() {
            let last = j + 1 == c.wall.len();
            s.push_str(&format!(
                "    \"{key}.t{threads:02}.wall.total\": {:.0}{}\n",
                w,
                if last { sep } else { "," },
            ));
        }
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    /// The acceptance bar on the 16-lane cells only — `run_cell` itself
    /// asserts bit-identity between the simulator and the native backend
    /// at every thread count, so one width covers the contract; the full
    /// grid (and the committed record) is exercised by the report binary
    /// and the CI `bench-regression` job.
    #[test]
    fn backends_agree_and_json_is_deterministic() {
        let cells = super::sweep(Some(&[16]));
        super::assert_claims(&cells);
        let a = super::cells_json(&cells);
        assert!(a.contains("\"e13.light.w016.sim_ns\""));
        assert!(a.contains("\"e13.heavy.w016.t04.wall.total\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        // Wall keys must never look like gated sim-ns keys.
        for line in a.lines().filter(|l| l.contains("wall")) {
            assert!(
                !line.contains("_ns\""),
                "wall key styled as a gated ns key: {line}"
            );
        }
    }
}
