//! One module per experiment in the DESIGN.md index.
//!
//! Every `run()` regenerates one table/figure of the reproduction and
//! returns its report text; the `report` binary prints them. Workloads are
//! deterministic (fixed seeds) so EXPERIMENTS.md numbers are reproducible.

pub mod e1;
pub mod e2;
pub mod e3a;
pub mod e3b;
pub mod e3c;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod f1;

use gmip_gpu::{Accel, CostModel, DeviceConfig};

/// A GPU accel with the standard PCIe cost model and `mem` bytes.
pub(crate) fn gpu(mem: usize) -> Accel {
    Accel::gpu_with(DeviceConfig {
        cost: CostModel::gpu_pcie(),
        mem_capacity: mem,
        streams: 1,
    })
}

/// A deterministic diagonally-dominant dense matrix shared by kernel-level
/// experiments.
pub(crate) fn e2_matrix(n: usize) -> gmip_linalg::DenseMatrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
    let mut a = gmip_linalg::DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64 + rng.gen_range(1.0..3.0)
            } else {
                rng.gen_range(-0.5..0.5)
            };
            a.set(i, j, v);
        }
    }
    a
}

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "f1", "e1", "e2", "e3a", "e3b", "e3c", "e4", "e5", "e6", "e7", "e8",
];

/// Dispatches an experiment id to its runner.
pub fn run(id: &str) -> Option<String> {
    match id {
        "f1" => Some(f1::run()),
        "e1" => Some(e1::run()),
        "e2" => Some(e2::run()),
        "e3a" => Some(e3a::run()),
        "e3b" => Some(e3b::run()),
        "e3c" => Some(e3c::run()),
        "e4" => Some(e4::run()),
        "e5" => Some(e5::run()),
        "e6" => Some(e6::run()),
        "e7" => Some(e7::run()),
        "e8" => Some(e8::run()),
        _ => None,
    }
}
