//! One module per experiment in the DESIGN.md index.
//!
//! Every `run()` regenerates one table/figure of the reproduction and
//! returns its report text; the `report` binary prints them. Workloads are
//! deterministic (fixed seeds) so EXPERIMENTS.md numbers are reproducible.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e2;
pub mod e3a;
pub mod e3b;
pub mod e3c;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod f1;

use gmip_gpu::{Accel, CostModel, DeviceConfig};

/// The exact optimum of `m`, certified by the `gmip-verify` rational
/// oracle. Experiments assert their claimed optima against this instead of
/// hard-coded floats, so a generator or solver drift can't silently
/// invalidate a table. Only call on instances inside the oracle envelope
/// (small knapsacks and catalog instances; exact arithmetic on dense
/// LP-heavy instances is out of budget).
pub(crate) fn oracle_optimum(m: &gmip_problems::MipInstance) -> f64 {
    let r = gmip_verify::solve_oracle(m).unwrap_or_else(|e| panic!("{}: oracle: {e}", m.name));
    assert_eq!(
        r.status,
        gmip_verify::OracleStatus::Optimal,
        "{}: oracle says {:?}, experiment expects an optimum",
        m.name,
        r.status
    );
    r.objective.expect("optimal => objective").approx()
}

/// A GPU accel with the standard PCIe cost model and `mem` bytes.
pub(crate) fn gpu(mem: usize) -> Accel {
    Accel::gpu_with(DeviceConfig {
        cost: CostModel::gpu_pcie(),
        mem_capacity: mem,
        streams: 1,
    })
}

/// A deterministic diagonally-dominant dense matrix shared by kernel-level
/// experiments.
pub(crate) fn e2_matrix(n: usize) -> gmip_linalg::DenseMatrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
    let mut a = gmip_linalg::DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64 + rng.gen_range(1.0..3.0)
            } else {
                rng.gen_range(-0.5..0.5)
            };
            a.set(i, j, v);
        }
    }
    a
}

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "f1", "e1", "e2", "e3a", "e3b", "e3c", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
    "e13",
];

/// Dispatches an experiment id to its runner.
pub fn run(id: &str) -> Option<String> {
    match id {
        "f1" => Some(f1::run()),
        "e1" => Some(e1::run()),
        "e2" => Some(e2::run()),
        "e3a" => Some(e3a::run()),
        "e3b" => Some(e3b::run()),
        "e3c" => Some(e3c::run()),
        "e4" => Some(e4::run()),
        "e5" => Some(e5::run()),
        "e6" => Some(e6::run()),
        "e7" => Some(e7::run()),
        "e8" => Some(e8::run()),
        "e9" => Some(e9::run()),
        "e10" => Some(e10::run()),
        "e11" => Some(e11::run()),
        "e12" => Some(e12::run()),
        "e13" => Some(e13::run()),
        _ => None,
    }
}
