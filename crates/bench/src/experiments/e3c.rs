//! E3c — matrix reuse across tree nodes and the GPU-aware node scheduler.
//!
//! Paper source: Section 5.3. Claims reproduced:
//! * "a GPU-based parallel MIP solver must strive to reuse the matrix on
//!   the GPU across as many branch-and-cut nodes as possible" — the
//!   engine-reuse mode uploads the matrix once, the fresh-per-node baseline
//!   re-uploads it at every node;
//! * "this may warrant the use of a GPU-specific scheduling policy" — the
//!   reuse-affinity policy picks nodes near the last one so warm bases need
//!   fewer repair pivots.

use crate::experiments::gpu;
use crate::table::{fmt_bytes, fmt_ns, Table};
use gmip_core::{MipConfig, MipSolver, PolicyKind};
use gmip_problems::generators::{random_mip, RandomMipConfig};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E3c: matrix reuse across nodes + node scheduling (paper Section 5.3)\n\n");
    // A matrix-heavy instance (the regime the paper targets): the 40x140
    // extended LP matrix dwarfs the per-node vector traffic, so re-uploading
    // it every node is the dominant cost of the fresh-engine baseline.
    let instance = random_mip(&RandomMipConfig {
        rows: 40,
        cols: 60,
        density: 0.6,
        integral_fraction: 0.2,
        seed: 17,
    });

    let mut t = Table::new(&[
        "engine",
        "policy",
        "nodes",
        "lp iters",
        "H2D bytes",
        "sim time",
    ]);
    let mut reuse_bytes = 0u64;
    let mut fresh_bytes = 0u64;
    for (engine_reuse, label) in [(true, "reused"), (false, "fresh-per-node")] {
        for policy in [
            PolicyKind::BestFirst,
            PolicyKind::DepthFirst,
            PolicyKind::ReuseAffinity,
        ] {
            let accel = gpu(1 << 30);
            let mut cfg = MipConfig::default();
            cfg.engine_reuse = engine_reuse;
            cfg.policy = policy;
            cfg.cuts.enabled = false;
            cfg.heuristics.rounding = false;
            let mut solver = MipSolver::on_accel(instance.clone(), cfg, accel.clone());
            let r = solver.solve().expect("solve");
            let s = accel.stats();
            if engine_reuse && policy == PolicyKind::BestFirst {
                reuse_bytes = s.h2d_bytes;
            }
            if !engine_reuse && policy == PolicyKind::BestFirst {
                fresh_bytes = s.h2d_bytes;
            }
            t.row(vec![
                label.into(),
                format!("{policy:?}"),
                r.stats.nodes.to_string(),
                r.stats.lp_iterations.to_string(),
                fmt_bytes(s.h2d_bytes),
                fmt_ns(r.stats.sim_time_ns),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nH2D traffic, fresh-per-node / reused: {:.1}x (the matrix re-upload tax)\n",
        fresh_bytes as f64 / reuse_bytes.max(1) as f64
    ));
    assert!(
        fresh_bytes > 2 * reuse_bytes,
        "fresh engines must pay much more H2D traffic"
    );
    out.push_str(
        "shape check: reused engine slashes H2D traffic; reuse-affinity scheduling \
         keeps warm-start repair work (LP iterations) at or below best-first.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reuse_beats_fresh_on_traffic() {
        let s = super::run();
        assert!(s.contains("re-upload tax"));
        assert!(s.contains("ReuseAffinity"));
        assert!(s.contains("fresh-per-node"));
    }
}
