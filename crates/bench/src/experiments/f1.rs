//! F1 — Figure 1 reproduction: the tagged branch-and-bound solution tree.
//!
//! Paper source: Section 2.1 and Figure 1. Claim: the finished tree's
//! leaves are all tagged feasible / infeasible / pruned; no active nodes
//! remain.

use gmip_core::{MipConfig, MipSolver, PolicyKind};
use gmip_problems::catalog::figure1_knapsack;
use gmip_tree::{completion_invariant, render};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let instance = figure1_knapsack();
    let mut cfg = MipConfig::default();
    cfg.policy = PolicyKind::DepthFirst;
    cfg.cuts.enabled = false;
    cfg.heuristics.rounding = false;
    let exact = crate::experiments::oracle_optimum(&instance);
    let mut solver = MipSolver::host_baseline(instance, cfg);
    let result = solver.solve().expect("figure-1 solve");
    assert!(
        (result.objective - exact).abs() < 1e-6,
        "figure-1 optimum {} disagrees with the exact oracle {exact}",
        result.objective
    );

    let mut out = String::new();
    out.push_str("F1: solution tree (paper Figure 1)\n");
    out.push_str(&format!(
        "instance: figure1 knapsack — optimum {} (oracle-certified) at x = {:?}\n\n",
        result.objective, result.x
    ));
    out.push_str(&render::render(&result.tree));
    out.push('\n');
    out.push_str(render::LEGEND);
    out.push('\n');
    out.push_str(&format!("({})\n", render::state_summary(&result.tree)));
    let ok = completion_invariant(&result.tree);
    out.push_str(&format!(
        "completion invariant (no active nodes remain): {}\n",
        if ok { "HOLDS" } else { "VIOLATED" }
    ));
    assert!(ok);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_reports_all_leaf_kinds() {
        let s = super::run();
        assert!(s.contains("HOLDS"));
        assert!(s.contains("[F]"));
        assert!(s.contains("[I]"));
        assert!(s.contains("[P]"));
        assert!(s.contains("[B]"));
    }
}
