//! E9 — serving SLOs: latency and goodput of the multi-tenant solve
//! service under increasing offered load, clean and under the chaos
//! overlay.
//!
//! The paper's experiments measure one solve at a time; a deployed
//! GPU-MIP platform is shared. This experiment replays the same seeded
//! heavy-tailed traffic tape through `gmip-serve` at three offered loads
//! (0.5×, 1×, 2× the base arrival rate) and reports the tail-latency and
//! goodput curves a capacity planner actually reads — then repeats the
//! sweep with deterministic fault injection on every solve attempt to
//! show graceful degradation (bounded shedding, retries, no wrong
//! answers). A seeded oracle spot-check audits served answers each run.

use crate::table::Table;
use gmip_parallel::ChaosConfig;
use gmip_serve::{generate, spot_check, ServeConfig, ServeReport, Service, TrafficConfig};
use gmip_trace::names;

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Offered-load multiplier over the base arrival rate.
    pub load: f64,
    /// True when the chaos overlay was active.
    pub chaos: bool,
    /// p50 end-to-end latency, simulated ns.
    pub p50_ns: f64,
    /// p99 end-to-end latency, simulated ns.
    pub p99_ns: f64,
    /// Answered jobs per simulated second.
    pub goodput_jps: f64,
    /// Jobs dropped at admission (shed + quota).
    pub dropped: usize,
    /// Exact + warm cache hits.
    pub cache_hits: u64,
    /// Attempt retries under the overlay.
    pub retries: u64,
}

const JOBS: usize = 120;
const SEED: u64 = 2026;
const RANKS: usize = 6;
const BASE_GAP_NS: f64 = 2.0e6;

fn run_cell(load: f64, chaos: bool) -> (ServeCell, ServeReport, Vec<gmip_serve::JobSpec>) {
    let tcfg = TrafficConfig {
        jobs: JOBS,
        seed: SEED,
        mean_interarrival_ns: BASE_GAP_NS / load,
        tenants: 3,
        max_items: 10,
        ..TrafficConfig::default()
    };
    let (tenants, jobs) = generate(&tcfg);
    let scfg = ServeConfig {
        ranks: RANKS,
        chaos: chaos.then(|| ChaosConfig {
            drop_prob: 0.02,
            delay_prob: 0.05,
            ..ChaosConfig::quiet(SEED)
        }),
        ..ServeConfig::default()
    };
    let report = Service::new(scfg, tenants).run(jobs.clone());
    let cell = ServeCell {
        load,
        chaos,
        p50_ns: report.latency_quantile_ns(0.50),
        p99_ns: report.latency_quantile_ns(0.99),
        goodput_jps: report.goodput_jobs_per_s(),
        dropped: report.dropped(),
        cache_hits: (report.metrics.counter(names::SERVE_CACHE_EXACT_HITS)
            + report.metrics.counter(names::SERVE_CACHE_WARM_HITS)) as u64,
        retries: report.metrics.counter(names::SERVE_RETRIES) as u64,
    };
    (cell, report, jobs)
}

/// The full sweep: three loads × {clean, chaos}.
pub fn sweep() -> Vec<ServeCell> {
    let mut cells = Vec::new();
    for &chaos in &[false, true] {
        for &load in &[0.5, 1.0, 2.0] {
            cells.push(run_cell(load, chaos).0);
        }
    }
    cells
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E9: serving SLOs — latency/goodput vs offered load (gmip-serve)\n\n");
    out.push_str(&format!(
        "tape: {JOBS} jobs, seed {SEED}, heavy-tailed sizes, 15% duplicates,\n\
         15% perturbed re-submissions; service: {RANKS} ranks, priority admission.\n\n"
    ));

    for &chaos in &[false, true] {
        out.push_str(if chaos {
            "part B: chaos overlay (2% drops, 5% delays per attempt)\n"
        } else {
            "part A: clean\n"
        });
        let mut t = Table::new(&[
            "load",
            "p50 latency",
            "p99 latency",
            "goodput",
            "dropped",
            "cache hits",
            "retries",
        ]);
        for &load in &[0.5, 1.0, 2.0] {
            let (c, report, jobs) = run_cell(load, chaos);
            let audited = spot_check(&jobs, &report, 20, SEED)
                .unwrap_or_else(|e| panic!("load {load} chaos={chaos}: {e}"));
            assert!(audited > 0, "spot check audited nothing");
            t.row(vec![
                format!("{:.1}x", c.load),
                format!("{:.2} ms", c.p50_ns / 1e6),
                format!("{:.2} ms", c.p99_ns / 1e6),
                format!("{:.0} job/s", c.goodput_jps),
                format!("{}", c.dropped),
                format!("{}", c.cache_hits),
                format!("{}", c.retries),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "claims: p99 latency and shedding grow with offered load while the\n\
         solution pool keeps goodput above the no-cache arrival cost; the\n\
         chaos overlay degrades tails and sheds load but never answers\n\
         wrong (every cell passes a 20-job exact-oracle audit).\n\
         (machine-readable copy: BENCH_serve.json)\n",
    );
    out
}

/// Machine-readable record of the sweep (`BENCH_serve.json`).
pub fn bench_json() -> String {
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-serve/1\",\n  \"metrics\": {\n");
    let cells = sweep();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let mode = if c.chaos { "chaos" } else { "clean" };
        let load = format!("{:03.0}", c.load * 100.0);
        s.push_str(&format!(
            "    \"serve.{mode}.load{load}.p50_ns\": {:.1},\n    \
             \"serve.{mode}.load{load}.p99_ns\": {:.1},\n    \
             \"serve.{mode}.load{load}.goodput_jps\": {:.3},\n    \
             \"serve.{mode}.load{load}.dropped\": {},\n    \
             \"serve.{mode}.load{load}.cache_hits\": {},\n    \
             \"serve.{mode}.load{load}.retries\": {}{sep}\n",
            c.p50_ns, c.p99_ns, c.goodput_jps, c.dropped, c.cache_hits, c.retries,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn latency_grows_with_load_and_json_is_deterministic() {
        let cells = super::sweep();
        assert_eq!(cells.len(), 6);
        let clean: Vec<_> = cells.iter().filter(|c| !c.chaos).collect();
        assert!(
            clean[2].p99_ns >= clean[0].p99_ns,
            "p99 at 2x load ({}) below 0.5x ({})",
            clean[2].p99_ns,
            clean[0].p99_ns
        );
        assert!(clean.iter().all(|c| c.cache_hits > 0));
        let a = super::bench_json();
        assert_eq!(a, super::bench_json(), "sweep must be deterministic");
        assert!(a.contains("\"serve.chaos.load200.p99_ns\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
