//! E6 — supervisor–worker scaling on the simulated cluster.
//!
//! Paper source: Sections 2.3 and 3 (the UG/ParaSCIP coordination that
//! Strategy 2 builds on). Claims reproduced:
//! * the supervisor–worker pattern scales with worker count on hard
//!   instances;
//! * dynamic load balancing beats static subtree partitioning (idle time);
//! * breadth-first ramp-up shortens the sequential warm-up phase.

use crate::table::{fmt_ns, Table};
use gmip_parallel::{solve_parallel, LoadBalance, NetworkModel, ParallelConfig};
use gmip_problems::generators::knapsack;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E6: supervisor–worker scaling (paper Section 2.3)\n\n");
    let instance = knapsack(28, 0.5, 7);
    let exact = crate::experiments::oracle_optimum(&instance);

    // Part A: worker-count sweep.
    let mut t = Table::new(&[
        "workers",
        "nodes",
        "makespan",
        "speedup",
        "efficiency",
        "idle",
    ]);
    let mut t1_ns = 0.0;
    let mut speedups = Vec::new();
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let r = solve_parallel(
            &instance,
            ParallelConfig {
                workers,
                gpu_mem: 1 << 26,
                ..Default::default()
            },
        )
        .expect("parallel solve");
        assert!(
            (r.objective - exact).abs() < 1e-6,
            "{workers}-worker optimum {} disagrees with the exact oracle {exact}",
            r.objective
        );
        if workers == 1 {
            t1_ns = r.stats.makespan_ns;
        }
        let speedup = t1_ns / r.stats.makespan_ns;
        speedups.push(speedup);
        t.row(vec![
            workers.to_string(),
            r.stats.nodes.to_string(),
            fmt_ns(r.stats.makespan_ns),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / workers as f64),
            format!("{:.1}%", 100.0 * r.stats.idle_fraction),
        ]);
    }
    out.push_str(&t.render());
    assert!(speedups[2] > 2.0, "4 workers must scale past 2x");

    // Part B: coordination ablations at 8 workers.
    out.push_str("\ncoordination ablations (8 workers):\n");
    let mut t = Table::new(&["variant", "makespan", "idle"]);
    let variants: [(&str, ParallelConfig); 4] = [
        (
            "dynamic + ramp-up",
            ParallelConfig {
                workers: 8,
                gpu_mem: 1 << 26,
                ..Default::default()
            },
        ),
        (
            "dynamic, no ramp-up",
            ParallelConfig {
                workers: 8,
                gpu_mem: 1 << 26,
                ramp_up: false,
                ..Default::default()
            },
        ),
        (
            "static partitioning",
            ParallelConfig {
                workers: 8,
                gpu_mem: 1 << 26,
                load_balance: LoadBalance::Static,
                ..Default::default()
            },
        ),
        (
            "ethernet interconnect",
            ParallelConfig {
                workers: 8,
                gpu_mem: 1 << 26,
                network: NetworkModel::ethernet(),
                ..Default::default()
            },
        ),
    ];
    let mut makespans = Vec::new();
    for (name, cfg) in variants {
        let r = solve_parallel(&instance, cfg).expect("variant solve");
        assert!(
            (r.objective - exact).abs() < 1e-6,
            "variant `{name}` optimum {} disagrees with the exact oracle {exact}",
            r.objective
        );
        makespans.push((name, r.stats.makespan_ns));
        t.row(vec![
            name.into(),
            fmt_ns(r.stats.makespan_ns),
            format!("{:.1}%", 100.0 * r.stats.idle_fraction),
        ]);
    }
    out.push_str(&t.render());
    // The slower network must cost makespan relative to InfiniBand.
    assert!(
        makespans[3].1 > makespans[0].1,
        "ethernet should be slower than infiniband: {:?}",
        makespans
    );
    out.push_str(
        "\nshape check: speedup grows with workers (tapering as the tree's parallelism \
         saturates); dynamic load balancing beats static partitioning; a slower \
         interconnect (Ethernet vs InfiniBand) costs makespan — the paper's 'high \
         performance message passing' requirement.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_table_present_and_monotone_early() {
        let s = super::run();
        assert!(s.contains("speedup"));
        assert!(s.contains("static partitioning"));
        // 2-worker speedup > 1.5.
        let line = s
            .lines()
            .find(|l| l.trim_start().starts_with("2 "))
            .expect("2-worker row");
        let speedup: f64 = line
            .split_whitespace()
            .rev()
            .nth(2)
            .map(|v| v.trim_end_matches('x').parse().expect("speedup"))
            .expect("speedup cell");
        assert!(speedup > 1.5, "2-worker speedup {speedup}");
    }
}
