//! E2 — dense vs. sparse code paths and the runtime dispatch.
//!
//! Paper source: Sections 3 and 5.4. Claims reproduced:
//! * on the GPU, dense factorization/products dominate sparse kernels per
//!   flop; sparse only pays below a density break-even set by the
//!   sparse/dense throughput ratio;
//! * a "super-MIP solver" must therefore pick the code path at runtime from
//!   the input's density, delegating very sparse inputs to the CPU.
//!
//! Part A sweeps density at the kernel level (the same numeric problem
//! through the dense and sparse device paths). Part B shows the dispatch
//! decision across instance families.

use crate::experiments::gpu;
use crate::table::{fmt_ns, Table};
use gmip_core::{break_even_density, choose_path, MipConfig, MipSolver};
use gmip_gpu::{CostModel, DEFAULT_STREAM as S};
use gmip_linalg::{CsrMatrix, DenseMatrix};
use gmip_problems::generators::{
    fixed_charge_flow, knapsack, random_mip, set_cover, RandomMipConfig,
};
use rand::{Rng, SeedableRng};

/// A nonsingular test matrix of the given density (diagonal always kept).
fn matrix_with_density(n: usize, density: f64, seed: u64) -> DenseMatrix {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, n as f64 + rng.gen_range(1.0..3.0));
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                a.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    a
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E2: dense vs sparse device paths + runtime dispatch (paper Section 5.4)\n\n");

    // Part A: kernel-level density sweep at n = 192.
    let n = 192;
    out.push_str(&format!(
        "part A: factorize + solve an {n}x{n} system on the device\n"
    ));
    let mut t = Table::new(&["density", "nnz", "dense path", "sparse path", "winner"]);
    for density in [0.01, 0.02, 0.05, 0.1, 0.3, 0.7] {
        let a = matrix_with_density(n, density, 9);
        let b = vec![1.0; n];
        // Dense path.
        let dev = gpu(1 << 30);
        dev.with(|d| -> Result<(), gmip_gpu::GpuError> {
            let ah = d.upload_matrix(&a, S)?;
            let bh = d.upload_vector(&b, S)?;
            let f = d.lu_factor(ah, S)?;
            let x = d.lu_solve(f, bh, S)?;
            d.download_vector(x, S)?;
            Ok(())
        })
        .expect("dense path");
        let dense_ns = dev.elapsed_ns();
        // Sparse path.
        let sparse = CsrMatrix::from_dense(&a);
        let nnz = sparse.nnz();
        let dev = gpu(1 << 30);
        dev.with(|d| -> Result<(), gmip_gpu::GpuError> {
            let ah = d.upload_sparse(&sparse, S)?;
            let bh = d.upload_vector(&b, S)?;
            let f = d.sparse_lu_factor(ah, S)?;
            let x = d.sparse_solve(f, bh, S)?;
            d.download_vector(x, S)?;
            Ok(())
        })
        .expect("sparse path");
        let sparse_ns = dev.elapsed_ns();
        t.row(vec![
            format!("{density:.2}"),
            nnz.to_string(),
            fmt_ns(dense_ns),
            fmt_ns(sparse_ns),
            if dense_ns < sparse_ns {
                "dense"
            } else {
                "sparse"
            }
            .into(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmodel break-even density (sparse/dense throughput ratio): {:.3}\n\n",
        break_even_density(&CostModel::gpu_pcie())
    ));

    // Part B: dispatch decisions across instance families.
    out.push_str("part B: super-solver dispatch decisions\n");
    let mut t = Table::new(&["instance", "density", "path"]);
    let cases = [
        ("knapsack-50", knapsack(50, 0.5, 3)),
        ("setcover-200x200-d0.01", set_cover(200, 200, 0.01, 3)),
        ("setcover-500x500-d0.03", set_cover(500, 500, 0.03, 3)),
        ("setcover-50x50-d0.3", set_cover(50, 50, 0.3, 3)),
        ("netflow-30", fixed_charge_flow(30, 15, 8.0, 3)),
        (
            "random-40x80-d0.5",
            random_mip(&RandomMipConfig {
                rows: 40,
                cols: 80,
                density: 0.5,
                integral_fraction: 0.5,
                seed: 3,
            }),
        ),
    ];
    let gpu_cost = CostModel::gpu_pcie();
    for (name, inst) in &cases {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", inst.density()),
            format!("{:?}", choose_path(inst, &gpu_cost)),
        ]);
    }
    out.push_str(&t.render());

    // Part C: the two MIP solver "versions" end to end — the same LP
    // relaxation through the dense-device and sparse-device engines.
    out.push_str("\npart C: dense vs sparse engine, full LP relaxation solve\n");
    let mut t = Table::new(&["instance", "engine", "H2D bytes", "kernel time", "sim time"]);
    let workloads = [
        (
            "sparse 300x600 d=0.02",
            random_mip(&RandomMipConfig {
                rows: 300,
                cols: 600,
                density: 0.02,
                integral_fraction: 0.0,
                seed: 14,
            }),
        ),
        (
            "dense 120x240 d=0.9",
            random_mip(&RandomMipConfig {
                rows: 120,
                cols: 240,
                density: 0.9,
                integral_fraction: 0.0,
                seed: 14,
            }),
        ),
    ];
    let mut ledger: Vec<(String, u64, f64)> = Vec::new();
    for (name, inst) in &workloads {
        for engine in ["dense", "sparse"] {
            let accel = gpu(1 << 30);
            let mut cfg = MipConfig::default();
            cfg.cuts.enabled = false;
            cfg.heuristics.rounding = false;
            let r = if engine == "dense" {
                MipSolver::on_accel(inst.clone(), cfg, accel.clone()).solve()
            } else {
                MipSolver::on_accel_sparse(inst.clone(), cfg, accel.clone()).solve()
            }
            .expect("relaxation solve");
            assert_eq!(r.status, gmip_core::MipStatus::Optimal);
            let stats = accel.stats();
            ledger.push((
                format!("{name}/{engine}"),
                stats.h2d_bytes,
                accel.elapsed_ns(),
            ));
            t.row(vec![
                name.to_string(),
                engine.into(),
                crate::table::fmt_bytes(stats.h2d_bytes),
                fmt_ns(stats.kernel_ns),
                fmt_ns(accel.elapsed_ns()),
            ]);
        }
    }
    out.push_str(&t.render());
    // On the sparse workload the sparse engine must move fewer bytes (its
    // matrix upload is nnz-proportional; the per-install vector traffic is
    // identical by design). At this size every matrix kernel is
    // launch-latency-bound on either path, so simulated times track each
    // other — the honest statement of where representation matters.
    let sparse_dense = &ledger[0];
    let sparse_sparse = &ledger[1];
    assert!(
        sparse_sparse.1 < sparse_dense.1,
        "sparse engine should move fewer bytes on the sparse workload: {} vs {}",
        sparse_sparse.1,
        sparse_dense.1
    );

    // Part D: the representation decides whether the problem fits the
    // device at all (Section 3's regime boundary). A 2 MiB device cannot
    // hold the dense extended matrix of the sparse workload — but holds its
    // CSR form with room to spare.
    out.push_str("\npart D: device-memory fit — dense vs sparse representation (2 MiB device)\n");
    let inst = &workloads[0].1;
    let mut t = Table::new(&["engine", "outcome"]);
    let mut cfg = MipConfig::default();
    cfg.cuts.enabled = false;
    cfg.heuristics.rounding = false;
    let dense_small = MipSolver::on_accel(inst.clone(), cfg.clone(), gpu(2 << 20)).solve();
    t.row(vec![
        "dense".into(),
        match &dense_small {
            Ok(_) => "solved".to_string(),
            Err(e) => format!("{e}").chars().take(40).collect(),
        },
    ]);
    let sparse_small = MipSolver::on_accel_sparse(inst.clone(), cfg, gpu(2 << 20)).solve();
    t.row(vec![
        "sparse".into(),
        match &sparse_small {
            Ok(r) => format!("solved ({:?})", r.status),
            Err(e) => format!("{e}").chars().take(40).collect(),
        },
    ]);
    out.push_str(&t.render());
    assert!(
        dense_small.is_err(),
        "dense matrix must not fit the 2 MiB device"
    );
    assert!(
        sparse_small.is_ok(),
        "CSR representation must fit the 2 MiB device"
    );
    out.push_str(
        "\nshape check: dense wins above the break-even density; the sparse engine \
         moves nnz-proportional bytes and wins on genuinely sparse inputs; tiny sparse \
         inputs are delegated to the host.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn dense_wins_high_density_sparse_wins_low() {
        let s = super::run();
        // At 0.7 density the dense path must win; at 0.01 the sparse path.
        let lines: Vec<&str> = s.lines().collect();
        let row = |d: &str| {
            lines
                .iter()
                .find(|l| l.trim_start().starts_with(d))
                .unwrap_or_else(|| panic!("row {d} missing"))
                .to_string()
        };
        assert!(row("0.70").ends_with("dense"));
        assert!(row("0.01").ends_with("sparse"));
        assert!(s.contains("SparseHost"));
        assert!(s.contains("DenseDevice"));
    }
}
