//! E12 — time-to-first-incumbent: device-side bound propagation and the
//! batched fix-and-propagate dive, on/off × on/off.
//!
//! Paper source: Section 5's design considerations argue the wave model's
//! fused launches should carry *more* than simplex pivots — any per-node
//! routine that is the same dataflow in every lane batches for free. The
//! `gmip-prop` layer is that argument instantiated twice: iterated
//! activity-based bound propagation (`prop.activity` / `prop.tighten` /
//! `prop.reduce`, three fused launches per fixpoint round across every
//! refilled lane) and a frontier-wide fix-and-propagate dive that rounds
//! the fractional LP values of retiring lanes, propagates the fixings, and
//! repairs or aborts each lane independently — producing incumbents long
//! before any branch-and-bound leaf goes integral on its own.
//!
//! Claim reproduced: with the dive enabled, the first incumbent lands
//! *measurably earlier* in simulated time on both wave engines — the
//! whole point of a primal heuristic on this platform — while the final
//! optimum never moves: every cell of the 2×2 grid (propagation on/off ×
//! heuristic on/off) reaches the same objective, checked against the
//! `gmip-verify` exact rational oracle. Propagation additionally settles
//! part of the tree before any LP work (`prop.tightenings` > 0).
//!
//! The machine-readable record is `BENCH_e12.json`; the `bench-regression`
//! CI job holds its `*_ns` metrics to the 2% gate.

use crate::experiments::{gpu, oracle_optimum};
use crate::table::{fmt_ns, Table};
use gmip_core::{
    solve_batched_wave, solve_first_order_wave, BatchedWaveConfig, FirstOrderWaveConfig,
};
use gmip_problems::generators::binpacking::bin_packing;
use gmip_problems::generators::knapsack::knapsack;
use gmip_problems::MipInstance;
use gmip_trace::names;

/// Lane count for every cell: wide enough that the frontier-wide dive has
/// real seeds, narrow enough for the oracle-envelope instances.
pub const LANES: usize = 16;

/// Fix-and-propagate cadence when the heuristic is on.
pub const HEUR_PERIOD: usize = 2;

/// Device memory for every cell (never the binding constraint here).
const MEM: usize = 1 << 30;

/// The four grid variants, in report order.
pub const VARIANTS: &[(&str, bool, bool)] = &[
    ("base", false, false),
    ("prop", true, false),
    ("heur", false, true),
    ("prop_heur", true, true),
];

/// One measured cell: family × engine × (propagate, heuristic).
#[derive(Debug, Clone)]
pub struct PropCell {
    /// Instance family id (`light` / `heavy`).
    pub family: &'static str,
    /// Engine id (`simplex` / `firstorder`).
    pub engine: &'static str,
    /// Grid variant id.
    pub variant: &'static str,
    /// Bound propagation on refill?
    pub propagate: bool,
    /// Fix-and-propagate dive cadence (0 = off).
    pub heuristic_period: usize,
    /// Simulated time of the first incumbent, ns.
    pub first_incumbent_ns: f64,
    /// Simulated makespan, ns.
    pub makespan_ns: f64,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Bound tightenings applied by propagation.
    pub tightenings: u64,
    /// Incumbents installed by the dive.
    pub heur_incumbents: u64,
    /// The optimum (oracle-checked by callers).
    pub objective: f64,
}

/// The two instance families, both inside the exact-oracle envelope.
pub fn instances() -> Vec<(&'static str, MipInstance)> {
    vec![
        // One knapsack row: propagation has little to tighten, so this is
        // the "does the machinery cost anything when idle" family.
        ("light", knapsack(18, 0.5, 4)),
        // Equality assignment rows + coupled capacity rows and a deep
        // symmetric tree: fixing one assignment variable cascades through
        // its row, which is exactly where fix-and-propagate repairs pay.
        ("heavy", bin_packing(6, 1.0, 3)),
    ]
}

fn run_cell(
    family: &'static str,
    m: &MipInstance,
    engine: &'static str,
    variant: &'static str,
    propagate: bool,
    heur: bool,
) -> PropCell {
    let heuristic_period = if heur { HEUR_PERIOD } else { 0 };
    let (first, makespan, nodes, metrics, objective) = match engine {
        "simplex" => {
            let r = solve_batched_wave(
                m,
                &BatchedWaveConfig {
                    lanes: LANES,
                    propagate,
                    heuristic_period,
                    ..Default::default()
                },
                gpu(MEM),
            )
            .expect("simplex wave solve");
            (
                r.first_incumbent_ns,
                r.makespan_ns,
                r.nodes,
                r.metrics,
                r.objective,
            )
        }
        "firstorder" => {
            let r = solve_first_order_wave(
                m,
                &FirstOrderWaveConfig {
                    lanes: LANES,
                    propagate,
                    heuristic_period,
                    ..Default::default()
                },
                gpu(MEM),
            )
            .expect("first-order wave solve");
            (
                r.first_incumbent_ns,
                r.makespan_ns,
                r.nodes,
                r.metrics,
                r.objective,
            )
        }
        other => panic!("unknown engine {other}"),
    };
    PropCell {
        family,
        engine,
        variant,
        propagate,
        heuristic_period,
        first_incumbent_ns: first.expect("every cell solves to an incumbent"),
        makespan_ns: makespan,
        nodes,
        tightenings: metrics.counter(names::PROP_TIGHTENINGS) as u64,
        heur_incumbents: metrics.counter(names::HEUR_INCUMBENTS) as u64,
        objective,
    }
}

/// Runs the full 2 families × 2 engines × 4 variants grid.
pub fn sweep() -> Vec<PropCell> {
    let mut cells = Vec::new();
    for (family, m) in instances() {
        for engine in ["simplex", "firstorder"] {
            for &(variant, propagate, heur) in VARIANTS {
                cells.push(run_cell(family, &m, engine, variant, propagate, heur));
            }
        }
    }
    cells
}

/// Asserts the E12 acceptance claims on `cells`.
fn assert_claims(cells: &[PropCell]) {
    // Same optimum in every cell of a family (the oracle check itself is
    // done by the caller, which owns the instances).
    for w in cells.windows(2) {
        if w[0].family == w[1].family {
            assert!(
                (w[0].objective - w[1].objective).abs() < 1e-6,
                "{}.{}.{} vs {}.{}.{}: optima diverge ({} vs {})",
                w[0].family,
                w[0].engine,
                w[0].variant,
                w[1].family,
                w[1].engine,
                w[1].variant,
                w[0].objective,
                w[1].objective
            );
        }
    }
    // The headline: the dive finds the first incumbent measurably earlier
    // than the same engine without it — on every family × engine pair
    // present (the in-crate test runs the light family only).
    for (family, _) in instances() {
        if !cells.iter().any(|c| c.family == family) {
            continue;
        }
        for engine in ["simplex", "firstorder"] {
            let t = |variant: &str| {
                cells
                    .iter()
                    .find(|c| c.family == family && c.engine == engine && c.variant == variant)
                    .map(|c| c.first_incumbent_ns)
                    .expect("cell present")
            };
            assert!(
                t("heur") < t("base"),
                "{family}.{engine}: dive-on first incumbent {} ns not earlier than base {} ns",
                t("heur"),
                t("base")
            );
            assert!(
                t("prop_heur") < t("prop"),
                "{family}.{engine}: dive+prop first incumbent {} ns not earlier than prop {} ns",
                t("prop_heur"),
                t("prop")
            );
        }
    }
    // The dive really ran and really produced the incumbents.
    assert!(
        cells
            .iter()
            .filter(|c| c.heuristic_period > 0)
            .all(|c| c.heur_incumbents > 0),
        "a heuristic-on cell installed no dive incumbent"
    );
    // Propagation really tightened bounds somewhere on the coupled family.
    if cells.iter().any(|c| c.family == "heavy") {
        assert!(
            cells
                .iter()
                .any(|c| c.family == "heavy" && c.propagate && c.tightenings > 0),
            "propagation never tightened a bound on the heavy family"
        );
    }
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E12: time-to-first-incumbent — bound propagation × fix-and-propagate dive\n\n");
    for (family, m) in instances() {
        let exact = oracle_optimum(&m);
        out.push_str(&format!(
            "{family}: {} ({} rows, {} vars), exact optimum {exact}\n",
            m.name,
            m.num_cons(),
            m.num_vars()
        ));
    }
    out.push('\n');
    let cells = sweep();
    for c in &cells {
        let (_, m) = instances()
            .into_iter()
            .find(|(f, _)| *f == c.family)
            .expect("family exists");
        let exact = oracle_optimum(&m);
        assert!(
            (c.objective - exact).abs() < 1e-6,
            "{}.{}.{}: optimum {} disagrees with the exact oracle {exact}",
            c.family,
            c.engine,
            c.variant,
            c.objective
        );
    }
    let mut t = Table::new(&[
        "family",
        "engine",
        "variant",
        "first incumbent",
        "makespan",
        "nodes",
        "tightenings",
        "dive incumbents",
    ]);
    for c in &cells {
        t.row(vec![
            c.family.to_string(),
            c.engine.to_string(),
            c.variant.to_string(),
            fmt_ns(c.first_incumbent_ns),
            fmt_ns(c.makespan_ns),
            c.nodes.to_string(),
            c.tightenings.to_string(),
            c.heur_incumbents.to_string(),
        ]);
    }
    out.push_str(&t.render());
    assert_claims(&cells);
    out.push_str(
        "\nshape check: in every family × engine pair the fix-and-propagate\n\
         dive lands the first incumbent strictly earlier in simulated time\n\
         than the same engine without it — the frontier-wide dive turns the\n\
         retiring lanes' fractional points into feasible ones rounds before\n\
         any lane goes integral on its own. Propagation tightens bounds on\n\
         the coupled (bin-packing) family and settles nodes without LP work;\n\
         the optimum itself never moves, and every cell's objective matches\n\
         the gmip-verify exact oracle. (machine-readable: BENCH_e12.json)\n",
    );
    out
}

/// Machine-readable record of the sweep (`BENCH_e12.json`).
pub fn bench_json() -> String {
    cells_json(&sweep())
}

fn cells_json(cells: &[PropCell]) -> String {
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-e12/1\",\n  \"metrics\": {\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let key = format!("e12.{}.{}.{}", c.family, c.engine, c.variant);
        s.push_str(&format!(
            "    \"{key}.first_incumbent_ns\": {:.1},\n    \
             \"{key}.makespan_ns\": {:.1},\n    \
             \"{key}.nodes\": {},\n    \
             \"{key}.tightenings\": {},\n    \
             \"{key}.heur_incumbents\": {}{sep}\n",
            c.first_incumbent_ns, c.makespan_ns, c.nodes, c.tightenings, c.heur_incumbents,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    /// The acceptance bar on the light family only (the heavy family's
    /// 16-lane tree takes minutes in debug builds; `run()` exercises the
    /// full grid via the report binary and the CI `bench-regression` job,
    /// which also holds the record to the 2% gate).
    #[test]
    fn dive_lands_the_first_incumbent_earlier_and_json_is_deterministic() {
        let (family, m) = super::instances().swap_remove(0);
        let mut cells = Vec::new();
        for engine in ["simplex", "firstorder"] {
            for &(variant, propagate, heur) in super::VARIANTS {
                cells.push(super::run_cell(
                    family, &m, engine, variant, propagate, heur,
                ));
            }
        }
        super::assert_claims(&cells);
        let a = super::cells_json(&cells);
        assert!(a.contains("\"e12.light.simplex.heur.first_incumbent_ns\""));
        assert!(a.contains("\"e12.light.firstorder.prop_heur.makespan_ns\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        // Same-process determinism probe on one cell.
        assert_eq!(
            super::cells_json(&[super::run_cell(family, &m, "simplex", "base", false, false)]),
            super::cells_json(&[super::run_cell(family, &m, "simplex", "base", false, false)]),
            "cells must be deterministic"
        );
    }
}
