//! E10 — rank-scale curves: flat star vs supervisor-of-supervisors.
//!
//! Paper source: Section 2.3's scalability discussion. The flat
//! supervisor routes *every* node exchange through one coordinator, so
//! its mailbox traffic is proportional to the node count regardless of
//! how many ranks share the work — the coordination wall that motivates
//! hierarchical designs on leadership machines. The two-tier cluster of
//! `gmip_parallel::hierarchy` sends the root only aggregated, fixed-size
//! control messages (delta-compressed load summaries that fall silent
//! when a group's load is unchanged, incumbent values, steal orders under
//! exponential deny backoff), so root traffic follows group *activity*,
//! not nodes × ranks.
//!
//! Claims reproduced, 4 → 1024 simulated ranks:
//! * makespan improves with rank count under both topologies (and every
//!   cell still matches the exact oracle);
//! * the hierarchy's root message count grows *sub-linearly* in the rank
//!   count, and sits far below the flat coordinator's mailbox traffic at
//!   scale.
//!
//! The machine-readable record is `BENCH_scale.json`; the `scale-smoke`
//! CI job re-runs the 4/64/256-rank cells and compares against it.

use crate::table::{fmt_ns, Table};
use gmip_parallel::{solve_hierarchical, solve_parallel, HierarchyConfig, ParallelConfig};
use gmip_problems::generators::knapsack;
use gmip_problems::MipInstance;

/// `(ranks, fanout)` sweep cells; every rank count runs both flat
/// (`cluster:R`) and hierarchical (`cluster:RxF`).
pub const CELLS: &[(usize, usize)] = &[(4, 2), (16, 4), (64, 8), (256, 16), (1024, 32)];

/// The rank counts the `scale-smoke` CI job re-runs.
pub const SMOKE_RANKS: &[usize] = &[4, 64, 256];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Worker ranks.
    pub ranks: usize,
    /// Group width; 0 marks the flat topology.
    pub fanout: usize,
    /// Simulated makespan, ns.
    pub makespan_ns: f64,
    /// Messages through the root coordinator: the flat supervisor's whole
    /// mailbox, or the hierarchy's root-link control traffic.
    pub root_msgs: usize,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Steal grants (hierarchical cells only).
    pub steals: usize,
    /// Objective found (every cell must agree with the oracle).
    pub objective: f64,
}

fn instance() -> MipInstance {
    // Large enough (~1.3k nodes at 4 ranks, ~3.4k at 1024) that the flat
    // coordinator's node-proportional mailbox dwarfs the hierarchy's
    // delta-compressed control traffic, yet still inside the exact-oracle
    // envelope (~1.5 s to certify).
    knapsack(46, 0.5, 7)
}

fn pcfg(ranks: usize) -> ParallelConfig {
    ParallelConfig {
        workers: ranks,
        gpu_mem: 1 << 26,
        ..Default::default()
    }
}

fn run_flat(m: &MipInstance, ranks: usize) -> ScaleCell {
    let r = solve_parallel(m, pcfg(ranks)).expect("flat solve");
    ScaleCell {
        ranks,
        fanout: 0,
        makespan_ns: r.stats.makespan_ns,
        // Every message in the star terminates at the one coordinator.
        root_msgs: r.stats.messages,
        nodes: r.stats.nodes,
        steals: 0,
        objective: r.objective,
    }
}

fn run_hier(m: &MipInstance, ranks: usize, fanout: usize) -> ScaleCell {
    let r = solve_hierarchical(
        m,
        pcfg(ranks),
        HierarchyConfig {
            fanout,
            ..Default::default()
        },
    )
    .expect("hier solve");
    assert_eq!(
        r.hier.max_evaluations_per_node, 1,
        "{ranks}x{fanout}: steals must never duplicate an evaluation"
    );
    ScaleCell {
        ranks,
        fanout,
        makespan_ns: r.stats.makespan_ns,
        root_msgs: r.hier.root_messages,
        nodes: r.stats.nodes,
        steals: r.hier.steals,
        objective: r.objective,
    }
}

/// Runs the sweep, optionally restricted to the given rank counts; each
/// rank count contributes a flat cell then a hierarchical cell.
pub fn sweep(ranks_filter: Option<&[usize]>) -> Vec<ScaleCell> {
    let m = instance();
    let mut cells = Vec::new();
    for &(ranks, fanout) in CELLS {
        if ranks_filter.is_some_and(|f| !f.contains(&ranks)) {
            continue;
        }
        cells.push(run_flat(&m, ranks));
        cells.push(run_hier(&m, ranks, fanout));
    }
    cells
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E10: rank scaling — flat star vs hierarchical cluster (paper Section 2.3)\n\n");
    let m = instance();
    let exact = crate::experiments::oracle_optimum(&m);
    let cells = sweep(None);
    for c in &cells {
        assert!(
            (c.objective - exact).abs() < 1e-6,
            "cell r{}x{}: optimum {} disagrees with the exact oracle {exact}",
            c.ranks,
            c.fanout,
            c.objective
        );
    }
    let mut t = Table::new(&[
        "topology",
        "ranks",
        "nodes",
        "makespan",
        "root msgs",
        "steals",
    ]);
    for c in &cells {
        t.row(vec![
            if c.fanout == 0 {
                "flat".into()
            } else {
                format!("{}x{}", c.ranks / c.fanout.max(1), c.fanout)
            },
            c.ranks.to_string(),
            c.nodes.to_string(),
            fmt_ns(c.makespan_ns),
            c.root_msgs.to_string(),
            if c.fanout == 0 {
                "-".into()
            } else {
                c.steals.to_string()
            },
        ]);
    }
    out.push_str(&t.render());

    let hier: Vec<&ScaleCell> = cells.iter().filter(|c| c.fanout > 0).collect();
    let flat: Vec<&ScaleCell> = cells.iter().filter(|c| c.fanout == 0).collect();
    // Makespan improves with rank count.
    assert!(
        hier.last().unwrap().makespan_ns < hier[0].makespan_ns,
        "hierarchy at 1024 ranks ({}) not faster than at 4 ({})",
        hier.last().unwrap().makespan_ns,
        hier[0].makespan_ns
    );
    // Root traffic grows sub-linearly in the rank count across every
    // adjacent pair of cells...
    for w in hier.windows(2) {
        let msg_ratio = w[1].root_msgs as f64 / w[0].root_msgs as f64;
        let rank_ratio = w[1].ranks as f64 / w[0].ranks as f64;
        assert!(
            msg_ratio < rank_ratio,
            "root messages grew super-linearly {} -> {} ranks: {}x vs {}x",
            w[0].ranks,
            w[1].ranks,
            msg_ratio,
            rank_ratio
        );
    }
    // ...and sits below the flat coordinator's mailbox at every cell.
    for (h, f) in hier.iter().zip(&flat) {
        assert!(
            h.root_msgs < f.root_msgs,
            "{} ranks: hierarchy root traffic {} not below flat {}",
            h.ranks,
            h.root_msgs,
            f.root_msgs
        );
    }
    out.push_str(
        "\nshape check: both topologies keep matching the exact oracle while the\n\
         makespan falls with rank count; the flat coordinator's mailbox stays\n\
         proportional to the node count, while the hierarchy's root link carries\n\
         only summaries/incumbents/steal control — sub-linear growth in ranks.\n\
         (machine-readable copy: BENCH_scale.json; CI re-runs the 4/64/256 cells)\n",
    );
    out
}

fn cells_json(cells: &[ScaleCell]) -> String {
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-scale/1\",\n  \"metrics\": {\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let key = if c.fanout == 0 {
            format!("scale.flat.r{:04}", c.ranks)
        } else {
            format!("scale.hier.r{:04}x{}", c.ranks, c.fanout)
        };
        s.push_str(&format!(
            "    \"{key}.makespan_ns\": {:.1},\n    \
             \"{key}.root_msgs\": {},\n    \
             \"{key}.nodes\": {},\n    \
             \"{key}.steals\": {}{sep}\n",
            c.makespan_ns, c.root_msgs, c.nodes, c.steals,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Machine-readable record of the full sweep (`BENCH_scale.json`).
pub fn bench_json() -> String {
    cells_json(&sweep(None))
}

/// The 4/64/256-rank subset the `scale-smoke` CI job regenerates
/// (`BENCH_scale_smoke.json`; its keys are a subset of the full record).
pub fn smoke_json() -> String {
    cells_json(&sweep(Some(SMOKE_RANKS)))
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_cells_are_deterministic_and_sub_linear() {
        let a = super::smoke_json();
        assert_eq!(a, super::smoke_json(), "sweep must be deterministic");
        assert!(a.contains("\"scale.hier.r0064x8.root_msgs\""));
        assert!(a.contains("\"scale.flat.r0256.makespan_ns\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        let cells = super::sweep(Some(&[4, 64]));
        let hier: Vec<_> = cells.iter().filter(|c| c.fanout > 0).collect();
        assert_eq!(hier.len(), 2);
        let msg_ratio = hier[1].root_msgs as f64 / hier[0].root_msgs as f64;
        assert!(
            msg_ratio < 16.0,
            "4 -> 64 ranks must not grow root traffic 16x (got {msg_ratio}x)"
        );
    }
}
