//! E3a — the simplex iteration loop on the device: rank-1 updates with no
//! per-iteration matrix transfer.
//!
//! Paper source: Section 5.1. Claims reproduced:
//! * the GPU is "exercised ... with rank-1 updates and resolving the
//!   updated matrix repeatedly with no data transfer from host to device or
//!   vice versa" — per-iteration link traffic is O(1) scalars;
//! * the eta-file (product-form-of-inverse) update beats refactorizing the
//!   basis every iteration.

use crate::experiments::gpu;
use crate::table::{fmt_bytes, fmt_ns, Table};
use gmip_lp::{DeviceEngine, LpConfig, LpSolver, LpStatus, StandardLp};
use gmip_problems::generators::{random_mip, RandomMipConfig};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E3a: device-resident simplex iterations (paper Section 5.1)\n\n");
    // A pure LP (no integrality) so the iteration count is substantial.
    let instance = random_mip(&RandomMipConfig {
        rows: 40,
        cols: 80,
        density: 0.6,
        integral_fraction: 0.0,
        seed: 5,
    });
    let mut t = Table::new(&[
        "basis scheme",
        "iters",
        "kernels",
        "transfers",
        "link bytes",
        "sim time",
    ]);
    let mut times = Vec::new();
    for (label, refactor_every, devex) in [
        ("eta-file (PFI)", 60usize, false),
        ("eta-file + devex", 60, true),
        ("refactor-every-iter", 1, false),
    ] {
        let accel = gpu(1 << 30);
        let mut cfg = LpConfig::standard();
        cfg.primal.refactor_every = refactor_every;
        if devex {
            cfg.primal.pricing = gmip_lp::PricingRule::Devex;
        }
        let std = StandardLp::from_instance(&instance, &[]);
        let factory = accel.clone();
        let mut lp =
            LpSolver::try_new(std, cfg, |a| DeviceEngine::new(factory, a)).expect("device engine");
        let sol = lp.solve().expect("LP solve");
        assert_eq!(sol.status, LpStatus::Optimal);
        let s = accel.stats();
        times.push(accel.elapsed_ns());
        t.row(vec![
            label.into(),
            sol.iterations.to_string(),
            s.kernel_launches.to_string(),
            s.total_transfers().to_string(),
            fmt_bytes(s.total_bytes()),
            fmt_ns(accel.elapsed_ns()),
        ]);
    }
    out.push_str(&t.render());

    // Per-iteration traffic under PFI, excluding the one-time install.
    let accel = gpu(1 << 30);
    let std = StandardLp::from_instance(&instance, &[]);
    let factory = accel.clone();
    let mut lp = LpSolver::try_new(std, LpConfig::standard(), |a| DeviceEngine::new(factory, a))
        .expect("device engine");
    let sol = lp.solve().expect("LP solve");
    let s = accel.stats();
    let per_iter_bytes = s.total_bytes() as f64 / sol.iterations.max(1) as f64;
    let matrix_bytes = lp.standard().a.size_bytes() as f64;
    out.push_str(&format!(
        "\nper-iteration link traffic: {:.0} B ({:.1}% of the {:.0} B matrix)\n",
        per_iter_bytes,
        100.0 * per_iter_bytes / matrix_bytes,
        matrix_bytes
    ));
    out.push_str(&format!(
        "eta-file vs per-iteration refactorization: {:.2}x faster\n",
        times[2] / times[0]
    ));
    assert!(
        times[0] < times[2],
        "PFI must beat refactorize-every-iteration"
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pfi_wins_and_traffic_is_small() {
        let s = super::run();
        assert!(s.contains("eta-file (PFI)"));
        assert!(s.contains("x faster"));
        // Per-iteration traffic must be far below matrix size.
        let pct: f64 = s
            .lines()
            .find(|l| l.contains("per-iteration link traffic"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|l| l.split('%').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("traffic line parses");
        assert!(pct < 20.0, "per-iteration traffic {pct}% of matrix");
    }
}
