//! E11 — node-LP engine crossover: per-lane engines vs the batched
//! simplex wave vs the lockstep first-order (restarted PDHG) wave.
//!
//! Paper source: Sections 4.3 and 5.5 size the batch by memory and fuse
//! launches by kernel class, but leave the node-LP *algorithm* fixed.
//! This experiment sweeps that choice: the same branch and bound evaluated
//! by per-lane simplex engines (`solve_concurrent`), the batched simplex
//! wave (`solve_batched_wave`, up to seven kernel classes whose lanes
//! desynchronize as pivot journals diverge), and the first-order wave
//! (`solve_first_order_wave`, every lane doing the same PDHG iteration so
//! each superstep is three fused launches regardless of width, cost ∝ nnz,
//! safe early bounds, exact host cleanup).
//!
//! Claim reproduced: the winner depends on lane count × matrix nnz. On
//! the nnz-light family (knapsack: one row) warm-started simplex lanes
//! reconverge in a handful of nearly-free pivots and the simplex wave
//! keeps the lead at every width. On the nnz-heavy family (bin packing:
//! every variable couples an equality assignment row to a capacity row,
//! and the tree is deep and symmetric) the first-order wave's ratio to
//! the simplex wave *falls* with lane count — above 1.0 at 4 lanes,
//! crossing, and beating the simplex wave in simulated ns (and in raw
//! kernel launches) at every width ≥ 64 — because its superstep is a
//! fixed three fused launches while the simplex wave pays per pivot
//! class, and because dominated lanes retire on a safe dual bound at
//! their first KKT check instead of pivoting to optimality. Every
//! optimum served by every engine is checked against the `gmip-verify`
//! exact oracle.
//!
//! The machine-readable record is `BENCH_e11.json`; the `bench-regression`
//! CI job holds its `*_ns` metrics to the 2% gate.

use crate::experiments::{gpu, oracle_optimum};
use crate::table::{fmt_ns, Table};
use gmip_core::{
    solve_batched_wave, solve_concurrent, solve_first_order_wave, BatchedWaveConfig,
    ConcurrentConfig, FirstOrderWaveConfig,
};
use gmip_lp::PdhgConfig;
use gmip_problems::generators::binpacking::bin_packing;
use gmip_problems::generators::knapsack::knapsack;
use gmip_problems::MipInstance;
use gmip_trace::names;

/// Lane counts swept; the crossover claim is stated at `>= 64`.
pub const LANES: &[usize] = &[4, 16, 64, 128];

/// Device memory for every cell (never the binding constraint here).
const MEM: usize = 1 << 30;

/// One measured cell: one instance family × one lane count, all three
/// engines on identical trees-of-origin.
#[derive(Debug, Clone)]
pub struct CrossCell {
    /// Instance family id (`light` / `heavy`).
    pub family: &'static str,
    /// Structural nonzeros of the constraint matrix.
    pub nnz: usize,
    /// Requested lane count.
    pub lanes: usize,
    /// Per-lane engines (own matrix copy + stream each), simulated ns.
    pub perlane_ns: f64,
    /// Batched simplex wave, simulated ns.
    pub simplex_ns: f64,
    /// Kernel launches charged by the simplex wave.
    pub simplex_launches: u64,
    /// First-order wave, simulated ns.
    pub firstorder_ns: f64,
    /// Kernel launches charged by the first-order wave.
    pub firstorder_launches: u64,
    /// Lockstep supersteps the first-order wave executed.
    pub fo_supersteps: usize,
    /// Lanes retired by a safe dual bound before convergence.
    pub fo_pruned: u64,
    /// The optimum every engine agreed on (oracle-checked by callers).
    pub objective: f64,
}

fn nnz(m: &MipInstance) -> usize {
    m.cons.iter().map(|c| c.coeffs.len()).sum()
}

/// The two instance families. Both sit inside the exact-oracle envelope;
/// both build trees deep enough to keep 128 lanes busy.
pub fn instances() -> Vec<(&'static str, MipInstance)> {
    vec![
        // nnz-light: one knapsack row — simplex lanes warm-start from the
        // parent basis and reconverge in a handful of nearly-free pivots,
        // so no iteration-count advantage can pay for PDHG supersteps.
        ("light", knapsack(30, 0.5, 4)),
        // nnz-heavy: bin packing — equality assignment rows plus coupled
        // capacity rows (every variable in two rows), and a deep symmetric
        // tree (~11k nodes) where incumbent-dominated subtrees are the
        // common case, which is exactly where first-check safe-bound
        // prunes and lockstep supersteps pay off.
        ("heavy", bin_packing(7, 1.0, 3)),
    ]
}

/// The PDHG setting every first-order cell runs: a loose tolerance and a
/// low iteration cap. Exactness is not at stake — converged *and* capped
/// lanes both finish with an exact host-simplex cleanup, and the safe
/// dual bound is valid at any iterate — so the device's job is only to
/// move iterates far enough that cleanups are cheap and dominated lanes
/// prune at their first KKT check.
pub fn pdhg() -> PdhgConfig {
    PdhgConfig {
        tol: 1e-2,
        max_iters: 150,
        ..PdhgConfig::default()
    }
}

fn run_cell(family: &'static str, m: &MipInstance, lanes: usize) -> CrossCell {
    let per_lane = solve_concurrent(
        m,
        &ConcurrentConfig {
            lanes,
            ..Default::default()
        },
        gpu(MEM),
    )
    .expect("per-lane solve");
    let simplex = solve_batched_wave(
        m,
        &BatchedWaveConfig {
            lanes,
            ..Default::default()
        },
        gpu(MEM),
    )
    .expect("simplex wave solve");
    let fo = solve_first_order_wave(
        m,
        &FirstOrderWaveConfig {
            lanes,
            pdhg: pdhg(),
            ..Default::default()
        },
        gpu(MEM),
    )
    .expect("first-order wave solve");
    assert!(
        (per_lane.objective - simplex.objective).abs() < 1e-6
            && (simplex.objective - fo.objective).abs() < 1e-6,
        "{family} w{lanes}: engines disagree: per-lane {}, simplex {}, first-order {}",
        per_lane.objective,
        simplex.objective,
        fo.objective
    );
    CrossCell {
        family,
        nnz: nnz(m),
        lanes,
        perlane_ns: per_lane.makespan_ns,
        simplex_ns: simplex.makespan_ns,
        simplex_launches: simplex.device.kernel_launches,
        firstorder_ns: fo.makespan_ns,
        firstorder_launches: fo.device.kernel_launches,
        fo_supersteps: fo.supersteps,
        fo_pruned: fo.metrics.counter(names::FO_BOUND_PRUNED) as u64,
        objective: fo.objective,
    }
}

/// Runs the sweep, optionally restricted to the given lane counts.
pub fn sweep(lanes_filter: Option<&[usize]>) -> Vec<CrossCell> {
    let mut cells = Vec::new();
    for (family, m) in instances() {
        for &lanes in LANES {
            if lanes_filter.is_some_and(|f| !f.contains(&lanes)) {
                continue;
            }
            cells.push(run_cell(family, &m, lanes));
        }
    }
    cells
}

/// Asserts the E11 acceptance claims on `cells` (full sweep only).
fn assert_claims(cells: &[CrossCell]) {
    // The crossover: on the nnz-heavy family the first-order wave beats
    // the simplex wave in simulated ns at every lane count >= 64.
    for c in cells
        .iter()
        .filter(|c| c.family == "heavy" && c.lanes >= 64)
    {
        assert!(
            c.firstorder_ns < c.simplex_ns,
            "heavy w{}: first-order {} ns not below simplex {} ns",
            c.lanes,
            c.firstorder_ns,
            c.simplex_ns
        );
    }
    // And it got there with strictly fewer kernel launches (three fused
    // classes per superstep vs up to seven desynchronizing ones).
    for c in cells
        .iter()
        .filter(|c| c.family == "heavy" && c.lanes >= 64)
    {
        assert!(
            c.firstorder_launches < c.simplex_launches,
            "heavy w{}: {} first-order launches vs {} simplex",
            c.lanes,
            c.firstorder_launches,
            c.simplex_launches
        );
    }
    // Early safe-bound prunes are real, not incidental.
    assert!(
        cells
            .iter()
            .filter(|c| c.family == "heavy")
            .any(|c| c.fo_pruned > 0),
        "no lane ever retired on a safe dual bound"
    );
    // It is a genuine crossover, not uniform dominance: at the narrowest
    // width the simplex wave still wins on the heavy family...
    if let Some(c) = cells.iter().find(|c| c.family == "heavy" && c.lanes == 4) {
        assert!(
            c.firstorder_ns > c.simplex_ns,
            "heavy w4: expected the simplex wave to lead at narrow width \
             (first-order {} ns vs simplex {} ns)",
            c.firstorder_ns,
            c.simplex_ns
        );
    }
    // ...and on the nnz-light family it wins at every width.
    for c in cells.iter().filter(|c| c.family == "light") {
        assert!(
            c.firstorder_ns > c.simplex_ns,
            "light w{}: first-order {} ns unexpectedly beat simplex {} ns",
            c.lanes,
            c.firstorder_ns,
            c.simplex_ns
        );
    }
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str(
        "E11: node-LP engine crossover — simplex wave vs first-order wave vs per-lane\n\n",
    );
    for (family, m) in instances() {
        let exact = oracle_optimum(&m);
        out.push_str(&format!(
            "{family}: {} ({} rows, {} vars, {} nnz), exact optimum {exact}\n",
            m.name,
            m.num_cons(),
            m.num_vars(),
            nnz(&m)
        ));
    }
    out.push('\n');
    let cells = sweep(None);
    for c in &cells {
        let (_, m) = instances()
            .into_iter()
            .find(|(f, _)| *f == c.family)
            .expect("family exists");
        let exact = oracle_optimum(&m);
        assert!(
            (c.objective - exact).abs() < 1e-6,
            "{} w{}: optimum {} disagrees with the exact oracle {exact}",
            c.family,
            c.lanes,
            c.objective
        );
    }
    let mut t = Table::new(&[
        "family",
        "nnz",
        "lanes",
        "per-lane",
        "simplex wave",
        "launches",
        "first-order",
        "launches",
        "fo prunes",
        "fo/simplex",
    ]);
    for c in &cells {
        t.row(vec![
            c.family.to_string(),
            c.nnz.to_string(),
            c.lanes.to_string(),
            fmt_ns(c.perlane_ns),
            fmt_ns(c.simplex_ns),
            c.simplex_launches.to_string(),
            fmt_ns(c.firstorder_ns),
            c.firstorder_launches.to_string(),
            c.fo_pruned.to_string(),
            format!("{:.2}", c.firstorder_ns / c.simplex_ns),
        ]);
    }
    out.push_str(&t.render());
    assert_claims(&cells);
    out.push_str(
        "\nshape check: on the one-row knapsack the simplex wave stays ahead at\n\
         every width — warm-started pivots are almost free and PDHG supersteps\n\
         buy nothing. On the nnz-heavy bin packing the fo/simplex ratio falls\n\
         with lane count, starts above 1.0 at 4 lanes, and is decisively below\n\
         1.0 (in ns and in raw launches) at 64 and 128: three fused launches\n\
         per lockstep superstep plus first-check safe-bound prunes beat up to\n\
         seven desynchronizing pivot classes. Every optimum above matches the\n\
         gmip-verify exact oracle. (machine-readable copy: BENCH_e11.json)\n",
    );
    out
}

/// Machine-readable record of the sweep (`BENCH_e11.json`).
pub fn bench_json() -> String {
    cells_json(&sweep(None))
}

fn cells_json(cells: &[CrossCell]) -> String {
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-e11/1\",\n  \"metrics\": {\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let key = format!("e11.{}.w{:03}", c.family, c.lanes);
        s.push_str(&format!(
            "    \"{key}.perlane_ns\": {:.1},\n    \
             \"{key}.simplex_ns\": {:.1},\n    \
             \"{key}.simplex_launches\": {},\n    \
             \"{key}.firstorder_ns\": {:.1},\n    \
             \"{key}.firstorder_launches\": {},\n    \
             \"{key}.fo_supersteps\": {},\n    \
             \"{key}.fo_pruned\": {}{sep}\n",
            c.perlane_ns,
            c.simplex_ns,
            c.simplex_launches,
            c.firstorder_ns,
            c.firstorder_launches,
            c.fo_supersteps,
            c.fo_pruned,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    /// The acceptance bar, on the 64-lane cells only (the narrow-width
    /// cells — where the simplex wave still leads — take minutes in debug
    /// builds and are exercised by `run()` via the report binary and the
    /// CI `bench-regression` job, which also holds the full record to the
    /// 2% gate and so covers cross-run determinism).
    #[test]
    fn crossover_holds_and_json_is_deterministic() {
        let cells = super::sweep(Some(&[64]));
        super::assert_claims(&cells);
        let a = super::cells_json(&cells);
        assert!(a.contains("\"e11.heavy.w064.firstorder_ns\""));
        assert!(a.contains("\"e11.light.w064.simplex_ns\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        // Same-process determinism probe on the cheapest cell.
        let light = super::instances().swap_remove(0).1;
        assert_eq!(
            super::cells_json(&[super::run_cell("light", &light, 64)]),
            super::cells_json(&[super::run_cell("light", &light, 64)]),
            "cells must be deterministic"
        );
    }
}
