//! E1 — the four execution strategies across the paper's regimes.
//!
//! Paper source: Section 3. Claims reproduced:
//! * Strategies 2 (CPU-orchestrated) and 3 (Hybrid) are the effective
//!   designs when the LP matrix fits one device;
//! * Strategy 1 (GPU-only) degrades when the branch-and-cut tree outgrows
//!   device memory (spills) and lacks CPU-side machinery (no cuts → more
//!   nodes);
//! * Strategy 4 (Big-MIP) pays collective overhead — a loss when the matrix
//!   fits one device, but the **only** strategy that works at all when it
//!   does not.

use crate::table::{fmt_bytes, fmt_ns, Table};
use gmip_core::{plan, MipConfig, MipSolver, Strategy};
use gmip_gpu::CostModel;
use gmip_problems::generators::{knapsack, random_mip, RandomMipConfig};
use gmip_problems::MipInstance;

struct Regime {
    name: &'static str,
    instance: MipInstance,
    device_mem: usize,
    /// Certify the strategies' agreed optimum against the exact rational
    /// oracle. Off for the dense 60x60 regime: exact arithmetic on an
    /// LP-heavy instance that size is outside the oracle envelope, so the
    /// strategies there are held to mutual agreement only.
    oracle_check: bool,
}

fn regimes() -> Vec<Regime> {
    vec![
        Regime {
            name: "fits-device",
            instance: knapsack(24, 0.5, 31),
            device_mem: 1 << 30,
            oracle_check: true,
        },
        Regime {
            name: "tree>device",
            instance: knapsack(26, 0.5, 42),
            device_mem: 192 << 10,
            oracle_check: true,
        },
        Regime {
            name: "matrix>device",
            instance: random_mip(&RandomMipConfig {
                rows: 60,
                cols: 60,
                density: 0.8,
                integral_fraction: 0.3,
                seed: 77,
            }),
            device_mem: 96 << 10,
            oracle_check: false,
        },
    ]
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E1: execution strategies across regimes (paper Section 3)\n\n");
    for regime in regimes() {
        let ext_bytes = {
            // Extended matrix the engine uploads: m x (n_core + m).
            let m = regime.instance.num_cons();
            let n_core = regime.instance.num_vars()
                + regime
                    .instance
                    .cons
                    .iter()
                    .filter(|c| c.sense != gmip_problems::Sense::Eq)
                    .count();
            m * (n_core + m) * 8
        };
        out.push_str(&format!(
            "regime `{}`: {} ({} B LP matrix, {} B device)\n",
            regime.name, regime.instance.name, ext_bytes, regime.device_mem
        ));
        let mut t = Table::new(&[
            "strategy",
            "status",
            "objective",
            "nodes",
            "cuts",
            "spills",
            "H2D",
            "sim time",
        ]);
        let mut optima: Vec<f64> = Vec::new();
        for strategy in [
            Strategy::GpuOnly,
            Strategy::CpuOrchestrated,
            Strategy::Hybrid,
            Strategy::BigMip { devices: 4 },
        ] {
            let p = plan(
                strategy,
                MipConfig::default(),
                CostModel::gpu_pcie(),
                regime.device_mem,
            );
            let mut solver = MipSolver::with_plan(regime.instance.clone(), p);
            match solver.solve() {
                Ok(r) => {
                    optima.push(r.objective);
                    t.row(vec![
                        strategy.name().into(),
                        format!("{:?}", r.status),
                        format!("{:.1}", r.objective),
                        r.stats.nodes.to_string(),
                        r.stats.cuts.to_string(),
                        r.stats.gpu_spills.to_string(),
                        fmt_bytes(r.stats.device.h2d_bytes),
                        fmt_ns(r.stats.sim_time_ns),
                    ]);
                }
                Err(e) => {
                    t.row(vec![
                        strategy.name().into(),
                        "OOM".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}").chars().take(24).collect(),
                    ]);
                }
            }
        }
        // All successful strategies must agree — and where the exact
        // oracle is affordable, agree with the certified optimum.
        for w in optima.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "strategies disagree");
        }
        if regime.oracle_check {
            let exact = crate::experiments::oracle_optimum(&regime.instance);
            for (i, &obj) in optima.iter().enumerate() {
                assert!(
                    (obj - exact).abs() < 1e-6,
                    "regime `{}`: strategy #{i} optimum {obj} disagrees with \
                     the exact oracle {exact}",
                    regime.name
                );
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "shape check: strategy 2/3 fastest in-regime; strategy 1 spills when the tree \
         outgrows the device; strategy 4 alone survives matrix>device.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_all_strategies_and_regimes() {
        let s = super::run();
        assert!(s.contains("gpu-only"));
        assert!(s.contains("cpu-orchestrated"));
        assert!(s.contains("hybrid"));
        assert!(s.contains("big-mip"));
        assert!(s.contains("fits-device"));
        assert!(s.contains("matrix>device"));
        // The matrix>device regime must show OOM for single-device runs.
        assert!(s.contains("OOM"));
    }
}
