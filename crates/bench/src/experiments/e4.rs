//! E4 — concurrent solution of many small problems on one device.
//!
//! Paper source: Section 5.5. Claims reproduced:
//! * small node-LPs can be batched: "dozens of branch-and-cut nodes could
//!   be solved simultaneously by the GPU" — one batched kernel launch beats
//!   per-problem launches, with the win growing with batch size;
//! * the feasible batch is sized by `device_memory / matrix_memory`;
//! * the alternative structuring — multiple ranks each driving its own
//!   serial stream — is also measured (the "multiple ranks per processor
//!   core" option).

use crate::experiments::gpu;
use crate::table::{fmt_ns, Table};
use gmip_gpu::DEFAULT_STREAM as S;
use gmip_linalg::DenseMatrix;
use rand::{Rng, SeedableRng};

fn small_system(n: usize, rng: &mut impl Rng) -> (DenseMatrix, Vec<f64>) {
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a.set(
                i,
                j,
                if i == j {
                    n as f64 + rng.gen_range(1.0..3.0)
                } else {
                    rng.gen_range(-1.0..1.0)
                },
            );
        }
    }
    (a, (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E4: batched small-problem solving (paper Section 5.5)\n\n");
    let n = 32;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let mut t = Table::new(&["batch", "serial", "batched", "streams(4)", "speedup(batch)"]);
    for batch in [1usize, 4, 16, 64, 256] {
        let systems: Vec<(DenseMatrix, Vec<f64>)> =
            (0..batch).map(|_| small_system(n, &mut rng)).collect();

        // All three variants pre-stage the data (uploads amortized per
        // Section 5's reuse doctrine) and we time the *compute* phase only,
        // which is what batching accelerates.

        // Serial: one launch per factor-solve on one stream.
        let serial = gpu(1 << 30);
        let serial_ns = serial
            .with(|d| -> Result<f64, gmip_gpu::GpuError> {
                let mut hs = Vec::new();
                for (a, b) in &systems {
                    hs.push((d.upload_matrix(a, S)?, d.upload_vector(b, S)?));
                }
                let t0 = d.synchronize();
                for &(ah, bh) in &hs {
                    let f = d.lu_factor(ah, S)?;
                    d.lu_solve(f, bh, S)?;
                }
                Ok(d.synchronize() - t0)
            })
            .expect("serial");

        // Batched: single launch.
        let batched = gpu(1 << 30);
        let batched_ns = batched
            .with(|d| -> Result<f64, gmip_gpu::GpuError> {
                let mut hs = Vec::new();
                for (a, b) in &systems {
                    hs.push((d.upload_matrix(a, S)?, d.upload_vector(b, S)?));
                }
                let t0 = d.synchronize();
                d.batched_lu_solve(&hs, S)?;
                Ok(d.synchronize() - t0)
            })
            .expect("batched");

        // Streams: 4 concurrent streams, round-robin (the multi-rank
        // alternative: concurrency without a batch API).
        let streamed = gpu(1 << 30);
        let streamed_ns = streamed
            .with(|d| -> Result<f64, gmip_gpu::GpuError> {
                let streams: Vec<_> = (0..4)
                    .map(|k| if k == 0 { S } else { d.create_stream() })
                    .collect();
                let mut hs = Vec::new();
                for (a, b) in &systems {
                    hs.push((d.upload_matrix(a, S)?, d.upload_vector(b, S)?));
                }
                let t0 = d.synchronize();
                for (i, &(ah, bh)) in hs.iter().enumerate() {
                    let st = streams[i % streams.len()];
                    let f = d.lu_factor(ah, st)?;
                    d.lu_solve(f, bh, st)?;
                }
                Ok(d.synchronize() - t0)
            })
            .expect("streams");

        t.row(vec![
            batch.to_string(),
            fmt_ns(serial_ns),
            fmt_ns(batched_ns),
            fmt_ns(streamed_ns),
            format!("{:.1}x", serial_ns / batched_ns),
        ]);
    }
    out.push_str(&t.render());

    // Part B: the same mechanism inside branch and bound — `lanes`
    // independent engines (each with its own matrix copy and stream) on one
    // device, dispatched wave by wave.
    out.push_str("\npart B: concurrent node evaluation in branch and bound (one device)\n");
    use gmip_core::{solve_concurrent, ConcurrentConfig};
    use gmip_problems::generators::knapsack;
    let inst = knapsack(20, 0.5, 4);
    let mut t = Table::new(&[
        "lanes",
        "nodes",
        "waves",
        "makespan",
        "speedup",
        "peak dev mem",
    ]);
    let mut lane1_ns = 0.0;
    for lanes in [1usize, 2, 4, 8] {
        let r = solve_concurrent(
            &inst,
            &ConcurrentConfig {
                lanes,
                ..Default::default()
            },
            gpu(1 << 30),
        )
        .expect("concurrent solve");
        if lanes == 1 {
            lane1_ns = r.makespan_ns;
        }
        t.row(vec![
            lanes.to_string(),
            r.nodes.to_string(),
            r.waves.to_string(),
            fmt_ns(r.makespan_ns),
            format!("{:.2}x", lane1_ns / r.makespan_ns),
            crate::table::fmt_bytes(r.peak_device_bytes as u64),
        ]);
    }
    out.push_str(&t.render());

    // Part C: the batched wave evaluator — one shared device-resident
    // matrix, one fused launch per kernel class per lockstep superstep,
    // event-based retire-and-refill — against part B's per-lane engines.
    out.push_str(
        "\npart C: batched wave vs per-lane node evaluation \
         (shared matrix, fused launches)\n",
    );
    let sweep = wave_sweep();
    let mut t = Table::new(&[
        "width",
        "per-lane",
        "launches",
        "batched wave",
        "launches",
        "launch ratio",
        "time ratio",
    ]);
    for r in &sweep {
        t.row(vec![
            r.width.to_string(),
            fmt_ns(r.perlane_ns),
            r.perlane_launches.to_string(),
            fmt_ns(r.batched_ns),
            r.batched_launches.to_string(),
            format!(
                "{:.2}",
                r.perlane_launches as f64 / r.batched_launches as f64
            ),
            format!("{:.2}", r.perlane_ns / r.batched_ns),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "shape check: at every width >= 4 the fused wave issues strictly \
         fewer launches and finishes in less simulated time than the \
         per-lane evaluator (machine-readable copy: BENCH_e4.json).\n",
    );

    let per_mat = n * n * 8;
    let cap = 1usize << 30;
    out.push_str(&format!(
        "\nfeasible concurrent residency (paper's sizing rule): {} matrices of {} B in a {} GiB device\n",
        cap / per_mat,
        per_mat,
        cap >> 30
    ));
    out.push_str(
        "shape check: batching amortizes launch latency, growing with batch size; \
         4 streams sit between serial and fully batched.\n",
    );
    out
}

/// One width of the part-C sweep: the same branch-and-bound run evaluated
/// by the per-lane concurrent engines and by the batched wave.
pub struct WaveSweepRow {
    /// Requested (and, at 1 GiB, granted) wave width.
    pub width: usize,
    /// Per-lane evaluator makespan in simulated ns.
    pub perlane_ns: f64,
    /// Kernel launches charged by the per-lane evaluator.
    pub perlane_launches: u64,
    /// Batched-wave makespan in simulated ns.
    pub batched_ns: f64,
    /// Kernel launches charged by the batched wave (fused per class).
    pub batched_launches: u64,
    /// Lockstep supersteps the wave executed.
    pub batched_supersteps: usize,
}

/// Runs the part-C sweep: serial, per-lane, and batched-wave evaluation of
/// the same knapsack at widths 1/4/8/16. Deterministic (fixed seed, logical
/// clock), so the numbers double as the regression baseline.
pub fn wave_sweep() -> Vec<WaveSweepRow> {
    use gmip_core::{solve_batched_wave, solve_concurrent, BatchedWaveConfig, ConcurrentConfig};
    use gmip_problems::generators::knapsack;
    let inst = knapsack(20, 0.5, 4);
    [1usize, 4, 8, 16]
        .into_iter()
        .map(|width| {
            let per_lane = solve_concurrent(
                &inst,
                &ConcurrentConfig {
                    lanes: width,
                    ..Default::default()
                },
                gpu(1 << 30),
            )
            .expect("per-lane solve");
            let batched = solve_batched_wave(
                &inst,
                &BatchedWaveConfig {
                    lanes: width,
                    ..Default::default()
                },
                gpu(1 << 30),
            )
            .expect("batched wave solve");
            assert!(
                (per_lane.objective - batched.objective).abs() < 1e-6,
                "strategies disagree at width {width}"
            );
            WaveSweepRow {
                width,
                perlane_ns: per_lane.makespan_ns,
                perlane_launches: per_lane.device.kernel_launches,
                batched_ns: batched.makespan_ns,
                batched_launches: batched.device.kernel_launches,
                batched_supersteps: batched.supersteps,
            }
        })
        .collect()
}

/// Machine-readable record of the part-C sweep (`BENCH_e4.json`).
pub fn bench_json() -> String {
    let mut s = String::from(
        "{\n  \"schema\": \"gmip-bench-e4/1\",\n  \"instance\": \"knapsack-20/4\",\n  \"metrics\": {\n",
    );
    let rows = wave_sweep();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"e4.wave.w{w}.perlane_ns\": {:.1},\n    \
             \"e4.wave.w{w}.perlane_launches\": {},\n    \
             \"e4.wave.w{w}.batched_ns\": {:.1},\n    \
             \"e4.wave.w{w}.batched_launches\": {},\n    \
             \"e4.wave.w{w}.batched_supersteps\": {}{sep}\n",
            r.perlane_ns,
            r.perlane_launches,
            r.batched_ns,
            r.batched_launches,
            r.batched_supersteps,
            w = r.width,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn batching_speedup_grows() {
        let s = super::run();
        let speedups: Vec<f64> = s
            .lines()
            .filter(|l| l.trim_end().ends_with('x'))
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|v| v.trim_end_matches('x').parse().ok())
            })
            .collect();
        assert!(speedups.len() >= 4);
        let last = *speedups.last().expect("rows exist");
        let first = speedups[0];
        assert!(
            last > first && last > 3.0,
            "speedup should grow with batch: {speedups:?}"
        );
    }

    /// The acceptance bar for the batched wave: strictly fewer launches AND
    /// lower simulated ns than the per-lane evaluator at every width >= 4.
    #[test]
    fn batched_wave_beats_per_lane_at_every_width() {
        let sweep = super::wave_sweep();
        assert!(sweep.iter().any(|r| r.width >= 4), "sweep too narrow");
        for r in sweep.iter().filter(|r| r.width >= 4) {
            assert!(
                r.batched_launches < r.perlane_launches,
                "width {}: {} fused launches vs {} per-lane",
                r.width,
                r.batched_launches,
                r.perlane_launches
            );
            assert!(
                r.batched_ns < r.perlane_ns,
                "width {}: {} ns batched vs {} ns per-lane",
                r.width,
                r.batched_ns,
                r.perlane_ns
            );
        }
    }

    #[test]
    fn bench_json_is_deterministic_and_well_formed() {
        let a = super::bench_json();
        assert_eq!(a, super::bench_json(), "sweep must be deterministic");
        assert!(a.contains("\"e4.wave.w16.batched_ns\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
