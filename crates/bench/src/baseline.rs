//! Deterministic simulated-ns regression baseline.
//!
//! Every workload here runs on the logical clock with fixed seeds, so the
//! numbers are bit-reproducible across machines: the committed
//! `BENCH_baseline.json` is compared verbatim by the `bench-regression` CI
//! job, which fails if any tracked `*_ns` total regresses by more than 2%.

use crate::experiments::e4;

/// Collects every tracked metric as `(name, value)` pairs, in emission
/// order. Names ending in `_ns` are simulated-time totals and are the ones
/// the regression gate compares; the rest (launch/superstep counts) are
/// recorded for context and checked for exact equality.
pub fn collect() -> Vec<(String, f64)> {
    let mut m: Vec<(String, f64)> = Vec::new();

    // The E4 part-C sweep: per-lane vs batched-wave node evaluation.
    for r in e4::wave_sweep() {
        let w = r.width;
        m.push((format!("e4.wave.w{w}.perlane_ns"), r.perlane_ns));
        m.push((
            format!("e4.wave.w{w}.perlane_launches"),
            r.perlane_launches as f64,
        ));
        m.push((format!("e4.wave.w{w}.batched_ns"), r.batched_ns));
        m.push((
            format!("e4.wave.w{w}.batched_launches"),
            r.batched_launches as f64,
        ));
        m.push((
            format!("e4.wave.w{w}.batched_supersteps"),
            r.batched_supersteps as f64,
        ));
    }

    // Single simulated device driving the full branch-and-cut loop.
    {
        use gmip_core::{plan, MipConfig, MipSolver, Strategy};
        use gmip_gpu::CostModel;
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 30,
        );
        let mut s = MipSolver::with_plan(gmip_problems::generators::knapsack(18, 0.5, 99), p);
        let r = s.solve().expect("device solve");
        m.push(("mip.device.knapsack18.sim_ns".into(), r.stats.sim_time_ns));
        m.push((
            "mip.device.knapsack18.launches".into(),
            r.stats.device.kernel_launches as f64,
        ));
    }

    // The DES cluster, with and without batched-wave workers.
    {
        use gmip_parallel::{solve_parallel, ParallelConfig};
        let inst = gmip_problems::generators::knapsack(16, 0.5, 5);
        let plain = solve_parallel(
            &inst,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 26,
                ..Default::default()
            },
        )
        .expect("cluster solve");
        m.push(("cluster.des.w3.makespan_ns".into(), plain.stats.makespan_ns));
        let batched = solve_parallel(
            &inst,
            ParallelConfig {
                workers: 3,
                gpu_mem: 1 << 26,
                batched_lanes: Some(2),
                ..Default::default()
            },
        )
        .expect("batched cluster solve");
        m.push((
            "cluster.des.w3.batched2.makespan_ns".into(),
            batched.stats.makespan_ns,
        ));
        // The two-tier hierarchy on the same instance: tracks the makespan
        // and the root-link control-message count (the E10 quantity the
        // full BENCH_scale.json sweeps over rank counts).
        let hier = gmip_parallel::solve_hierarchical(
            &inst,
            ParallelConfig {
                workers: 8,
                gpu_mem: 1 << 26,
                ..Default::default()
            },
            gmip_parallel::HierarchyConfig {
                fanout: 4,
                ..Default::default()
            },
        )
        .expect("hier cluster solve");
        m.push((
            "cluster.hier.w8x4.makespan_ns".into(),
            hier.stats.makespan_ns,
        ));
        m.push((
            "cluster.hier.w8x4.root_msgs".into(),
            hier.hier.root_messages as f64,
        ));
    }

    m
}

/// Renders the collected metrics as the `BENCH_baseline.json` document.
pub fn to_json() -> String {
    let metrics = collect();
    let mut s = String::from("{\n  \"schema\": \"gmip-bench-baseline/1\",\n  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{sep}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn baseline_is_deterministic() {
        assert_eq!(super::to_json(), super::to_json());
    }

    #[test]
    fn baseline_tracks_wave_and_cluster_ns() {
        let j = super::to_json();
        for key in [
            "e4.wave.w4.batched_ns",
            "e4.wave.w16.perlane_ns",
            "mip.device.knapsack18.sim_ns",
            "cluster.des.w3.makespan_ns",
            "cluster.des.w3.batched2.makespan_ns",
            "cluster.hier.w8x4.makespan_ns",
            "cluster.hier.w8x4.root_msgs",
        ] {
            assert!(j.contains(key), "missing tracked metric {key}");
        }
    }
}
