//! Minimal fixed-width table rendering for experiment reports.

/// A right-aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are preformatted strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table (first column left-aligned, the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a nanosecond duration as adaptive µs/ms/s text.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a byte count as adaptive B/KiB/MiB text.
pub fn fmt_bytes(b: u64) -> String {
    if b >= (1 << 20) {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= (1 << 10) {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.5 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(2e9), "2.00 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }
}
