//! `gmip` — command-line MIP solving on the simulated accelerated platform.
//!
//! ```text
//! gmip solve <file.mps> [options]      solve an MPS instance
//! gmip generate <family> [options]     write a generated instance as MPS
//! gmip help                            this text
//! ```
//!
//! See `gmip help` for the option list.

use gmip_cli_impl::{run, HELP};
use std::process::ExitCode;

mod gmip_cli_impl;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
