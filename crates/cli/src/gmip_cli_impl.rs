//! Implementation of the `gmip` CLI: argument parsing, the `solve` and
//! `generate` subcommands, and result formatting.

use gmip_core::{
    choose_path, plan, presolve, solve_batched_wave, solve_first_order_wave, solve_with_dispatch,
    BatchedWaveConfig, FirstOrderWaveConfig, MipConfig, MipResult, MipSolver, MipStatus,
    PolicyKind, Strategy,
};
use gmip_gpu::{Accel, CostModel};
use gmip_lp::PricingRule;
use gmip_parallel::{
    solve_hierarchical, solve_parallel, ChaosConfig, HierarchyConfig, ParallelConfig, MAX_RANKS,
};
use gmip_problems::generators;
use gmip_problems::mps::{read_mps, write_mps};
use gmip_problems::MipInstance;
use gmip_tree::render;

/// The help text.
pub const HELP: &str = "\
gmip — MIP solving on a simulated GPU-accelerated platform

USAGE:
  gmip solve <file.mps> [options]
  gmip verify <file.mps> [options]
  gmip serve [options]
  gmip generate <family> [options]
  gmip help

SERVE:
  replay a seeded open-loop traffic tape (Poisson arrivals, heavy-tailed
  job sizes, duplicate and perturbed re-submissions) through the
  multi-tenant solve service: admission control, priority scheduling,
  rank sharding, and the solution-pool warm-start cache. Deterministic:
  the same --seed reproduces every answer and trace byte. Accepts
  --seed, --node-limit, --faults, --trace, --metrics, plus:
  --jobs <n>           jobs in the tape                 (default: 200)
  --ranks <n>          cluster ranks shared by jobs     (default: 8)
  --tenants <n>        tenants (priorities cycle 0,1,2) (default: 3)
  --mean-gap-us <f>    mean inter-arrival gap, µs       (default: 2000)
  --dup <frac>         exact-duplicate fraction         (default: 0.15)
  --perturb <frac>     perturbed-resubmission fraction  (default: 0.15)
  --max-items <n>      job size ceiling (knapsack items) (default: 14)
  --verify-sample <n>  audit n served answers against the exact oracle;
                       exits nonzero on any mismatch     (default: 0)
  --max-shed-rate <f>  exit nonzero if the shed+reject fraction exceeds f

VERIFY:
  solve with the float host path, then certify the result against the
  gmip-verify exact rational oracle: the proven optimum, exact incumbent
  re-evaluation, and exact validation of every collected dual-bound /
  Farkas certificate. Exits nonzero on any discrepancy. Accepts the
  solver-shaping SOLVE OPTIONS (--policy, --no-cuts, --gap, ...).

SOLVE OPTIONS:
  --strategy <s>     host | cpu-orchestrated | gpu-only | hybrid |
                     big-mip:<devices> | batched:<lanes> | firstorder:<lanes> |
                     cluster:<workers> | cluster:<ranks>x<fanout> | auto
                                              (default: cpu-orchestrated)
                     cluster:<ranks>x<fanout> groups the ranks under
                     sub-supervisors (<fanout> ranks each); the root
                     exchanges only aggregated summaries, incumbent
                     values, and deterministic work steals with them
                     batched:<lanes> evaluates up to <lanes> node LPs in a
                     lockstep wave on one device: one shared constraint
                     matrix, one fused kernel launch per class per step
                     (the width shrinks automatically if --gpu-mem is tight)
                     firstorder:<lanes> evaluates node LPs with restarted
                     PDHG lanes in lockstep against one shared CSR matrix:
                     three fused SpMV/axpy launches per superstep at any
                     width, safe dual bounds for early prunes, and exact
                     simplex cleanup of converged lanes before branching
  --gpu-mem <GiB>    device memory per GPU             (default: 1)
  --node-limit <n>   stop after n nodes                (default: 100000)
  --policy <p>       best | depth | breadth | reuse    (default: best)
  --pricing <r>      dantzig | devex — simplex entering-variable pricing
                     rule for all LP engines            (default: dantzig)
  --gap <frac>       accept a relative optimality gap (e.g. 0.01)
  --obj-limit <v>    stop at the first incumbent at least this good
  --no-cuts          disable root cutting planes
  --no-heur          disable primal heuristics
  --propagate        run iterated activity-based bound propagation on every
                     node before its LP (prop.* device kernels): infeasible
                     nodes settle without simplex/PDHG work, integer bounds
                     tighten. Works on every strategy including the wave
                     backends and cluster ranks
  --prop-rounds <n>  propagation fixpoint round cap      (default: 8)
  --heur-period <n>  run a fix-and-propagate dive every n nodes (waves: one
                     fused dive across the whole frontier); improving
                     feasible candidates become incumbents early (0 = off)
  --backend <b>      sim | native — who executes the fused lane kernels.
                     sim charges the cost model only; native additionally
                     runs them across host threads (RAYON_NUM_THREADS)
                     and reports real wall.* metrics. Simulated traces
                     and ns are bit-identical either way (default: sim)
  --presolve         presolve before solving
  --tree             print the solution tree (small instances)
  --stats            print the device/host cost ledger
  --trace <file>     write a Chrome trace-event JSON of the solve
                     (open at ui.perfetto.dev)
  --metrics          print the unified metrics summary table
  --faults <spec>    inject deterministic faults (cluster strategies only).
                     <spec> is a bare seed (\"7\") or key=value pairs:
                     seed=7,crashes=2,drop=0.02,delay=0.05,stragglers=1
                     hierarchy-only keys: sub-crash=<n>, root-slow=<f>,
                     kill-group=<g>, kill-group-at=<ns>
                     (see gmip-parallel chaos docs for all keys)

GENERATE OPTIONS:
  --out <file.mps>   output path                       (default: stdout)
  --seed <n>         RNG seed                          (default: 0)
  families and their parameters:
    knapsack <items>
    setcover <elements> <sets> <density>
    gap <agents> <tasks>
    ucommit <generators> <periods>
    netflow <nodes> <extra-arcs> <supply>
    binpack <items>
    facility <customers> <facilities> <open-cost>
";

/// Parsed option set shared by subcommands.
#[derive(Debug, Clone)]
pub struct Options {
    pub positional: Vec<String>,
    pub strategy: String,
    pub gpu_mem_gib: usize,
    pub node_limit: usize,
    pub policy: PolicyKind,
    pub pricing: PricingRule,
    pub cuts: bool,
    pub heuristics: bool,
    pub propagate: bool,
    pub prop_rounds: usize,
    pub heur_period: usize,
    pub backend: gmip_gpu::BackendKind,
    pub presolve: bool,
    pub gap: f64,
    pub obj_limit: Option<f64>,
    pub tree: bool,
    pub stats: bool,
    pub trace: Option<String>,
    pub metrics: bool,
    pub out: Option<String>,
    pub seed: u64,
    pub faults: Option<String>,
    pub jobs: usize,
    pub ranks: usize,
    pub tenants: usize,
    pub mean_gap_us: f64,
    pub dup: f64,
    pub perturb: f64,
    pub max_items: usize,
    pub verify_sample: usize,
    pub max_shed_rate: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            positional: Vec::new(),
            strategy: "cpu-orchestrated".into(),
            gpu_mem_gib: 1,
            node_limit: 100_000,
            policy: PolicyKind::BestFirst,
            pricing: PricingRule::Dantzig,
            cuts: true,
            heuristics: true,
            propagate: false,
            prop_rounds: 8,
            heur_period: 0,
            backend: gmip_gpu::BackendKind::Sim,
            presolve: false,
            gap: 0.0,
            obj_limit: None,
            tree: false,
            stats: false,
            trace: None,
            metrics: false,
            out: None,
            seed: 0,
            faults: None,
            jobs: 200,
            ranks: 8,
            tenants: 3,
            mean_gap_us: 2000.0,
            dup: 0.15,
            perturb: 0.15,
            max_items: 14,
            verify_sample: 0,
            max_shed_rate: None,
        }
    }
}

/// Parses `args` (after the subcommand) into [`Options`].
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--strategy" => o.strategy = take("--strategy")?,
            "--gpu-mem" => {
                o.gpu_mem_gib = take("--gpu-mem")?
                    .parse()
                    .map_err(|_| "--gpu-mem must be an integer (GiB)".to_string())?
            }
            "--node-limit" => {
                o.node_limit = take("--node-limit")?
                    .parse()
                    .map_err(|_| "--node-limit must be an integer".to_string())?
            }
            "--policy" => {
                o.policy = match take("--policy")?.as_str() {
                    "best" => PolicyKind::BestFirst,
                    "depth" => PolicyKind::DepthFirst,
                    "breadth" => PolicyKind::BreadthFirst,
                    "reuse" => PolicyKind::ReuseAffinity,
                    other => return Err(format!("unknown policy `{other}`")),
                }
            }
            "--pricing" => {
                o.pricing = match take("--pricing")?.as_str() {
                    "dantzig" => PricingRule::Dantzig,
                    "devex" => PricingRule::Devex,
                    other => return Err(format!("unknown pricing rule `{other}`")),
                }
            }
            "--gap" => {
                o.gap = take("--gap")?
                    .parse()
                    .map_err(|_| "--gap must be a number".to_string())?
            }
            "--obj-limit" => {
                o.obj_limit = Some(
                    take("--obj-limit")?
                        .parse()
                        .map_err(|_| "--obj-limit must be a number".to_string())?,
                )
            }
            "--no-cuts" => o.cuts = false,
            "--no-heur" => o.heuristics = false,
            "--propagate" => o.propagate = true,
            "--prop-rounds" => {
                o.prop_rounds = take("--prop-rounds")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| "--prop-rounds must be an integer >= 1".to_string())?
            }
            "--heur-period" => {
                o.heur_period = take("--heur-period")?
                    .parse()
                    .map_err(|_| "--heur-period must be an integer (0 = off)".to_string())?
            }
            "--backend" => {
                let v = take("--backend")?;
                o.backend = gmip_gpu::BackendKind::parse(&v)
                    .ok_or_else(|| format!("--backend must be sim or native, got `{v}`"))?
            }
            "--presolve" => o.presolve = true,
            "--tree" => o.tree = true,
            "--stats" => o.stats = true,
            "--trace" => o.trace = Some(take("--trace")?),
            "--metrics" => o.metrics = true,
            "--faults" => o.faults = Some(take("--faults")?),
            "--jobs" => {
                o.jobs = take("--jobs")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| "--jobs must be an integer >= 1".to_string())?
            }
            "--ranks" => {
                o.ranks = take("--ranks")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| "--ranks must be an integer >= 1".to_string())?
            }
            "--tenants" => {
                o.tenants = take("--tenants")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| "--tenants must be an integer >= 1".to_string())?
            }
            "--mean-gap-us" => {
                o.mean_gap_us = take("--mean-gap-us")?
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v > 0.0)
                    .ok_or_else(|| "--mean-gap-us must be a positive number".to_string())?
            }
            "--dup" => {
                o.dup = take("--dup")?
                    .parse()
                    .ok()
                    .filter(|&v: &f64| (0.0..=1.0).contains(&v))
                    .ok_or_else(|| "--dup must be a fraction in [0, 1]".to_string())?
            }
            "--perturb" => {
                o.perturb = take("--perturb")?
                    .parse()
                    .ok()
                    .filter(|&v: &f64| (0.0..=1.0).contains(&v))
                    .ok_or_else(|| "--perturb must be a fraction in [0, 1]".to_string())?
            }
            "--max-items" => {
                o.max_items = take("--max-items")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 3)
                    .ok_or_else(|| "--max-items must be an integer >= 3".to_string())?
            }
            "--verify-sample" => {
                o.verify_sample = take("--verify-sample")?
                    .parse()
                    .map_err(|_| "--verify-sample must be an integer".to_string())?
            }
            "--max-shed-rate" => {
                o.max_shed_rate = Some(
                    take("--max-shed-rate")?
                        .parse()
                        .ok()
                        .filter(|&v: &f64| (0.0..=1.0).contains(&v))
                        .ok_or_else(|| {
                            "--max-shed-rate must be a fraction in [0, 1]".to_string()
                        })?,
                )
            }
            "--out" => o.out = Some(take("--out")?),
            "--seed" => {
                o.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}` (see `gmip help`)"))
            }
            positional => o.positional.push(positional.to_string()),
        }
    }
    Ok(o)
}

fn mip_config(o: &Options) -> MipConfig {
    let mut cfg = MipConfig::default();
    cfg.node_limit = o.node_limit;
    cfg.policy = o.policy;
    cfg.lp.primal.pricing = o.pricing;
    cfg.cuts.enabled = o.cuts;
    cfg.heuristics.rounding = o.heuristics;
    cfg.propagate = o.propagate;
    cfg.propagate_rounds = o.prop_rounds;
    cfg.heuristics.fix_and_propagate_period = o.heur_period;
    cfg.gap_rel = o.gap;
    cfg.objective_limit = o.obj_limit;
    cfg
}

/// Runs a parsed command line; returns the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    match args[0].as_str() {
        "solve" => {
            let o = parse_options(&args[1..])?;
            let path = o.positional.first().ok_or("solve needs an MPS file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let instance = read_mps(&text).map_err(|e| format!("{e}"))?;
            solve(instance, &o)
        }
        "verify" => {
            let o = parse_options(&args[1..])?;
            let path = o
                .positional
                .first()
                .ok_or("verify needs an MPS file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let instance = read_mps(&text).map_err(|e| format!("{e}"))?;
            verify(instance, &o)
        }
        "serve" => {
            let o = parse_options(&args[1..])?;
            serve(&o)
        }
        "generate" => {
            let o = parse_options(&args[1..])?;
            let instance = generate(&o)?;
            let text = write_mps(&instance);
            match &o.out {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                    Ok(format!(
                        "wrote {} ({} vars, {} cons) to {path}\n",
                        instance.name,
                        instance.num_vars(),
                        instance.num_cons()
                    ))
                }
                None => Ok(text),
            }
        }
        other => Err(format!("unknown command `{other}` (see `gmip help`)")),
    }
}

/// Builds an instance from the `generate` arguments.
pub fn generate(o: &Options) -> Result<MipInstance, String> {
    let p = &o.positional;
    let family = p.first().ok_or("generate needs a family name")?;
    let num = |i: usize, what: &str| -> Result<usize, String> {
        p.get(i)
            .ok_or(format!("{family} needs {what}"))?
            .parse()
            .map_err(|_| format!("{what} must be an integer"))
    };
    let fnum = |i: usize, what: &str| -> Result<f64, String> {
        p.get(i)
            .ok_or(format!("{family} needs {what}"))?
            .parse()
            .map_err(|_| format!("{what} must be a number"))
    };
    Ok(match family.as_str() {
        "knapsack" => generators::knapsack(num(1, "<items>")?, 0.5, o.seed),
        "setcover" => generators::set_cover(
            num(1, "<elements>")?,
            num(2, "<sets>")?,
            fnum(3, "<density>")?,
            o.seed,
        ),
        "gap" => {
            generators::generalized_assignment(num(1, "<agents>")?, num(2, "<tasks>")?, o.seed)
        }
        "ucommit" => {
            generators::unit_commitment(num(1, "<generators>")?, num(2, "<periods>")?, o.seed)
        }
        "netflow" => generators::fixed_charge_flow(
            num(1, "<nodes>")?,
            num(2, "<extra-arcs>")?,
            fnum(3, "<supply>")?,
            o.seed,
        ),
        "binpack" => generators::bin_packing(num(1, "<items>")?, 1.0, o.seed),
        "facility" => generators::facility_location(
            num(1, "<customers>")?,
            num(2, "<facilities>")?,
            fnum(3, "<open-cost>")?,
            o.seed,
        ),
        other => return Err(format!("unknown family `{other}` (see `gmip help`)")),
    })
}

/// Finishes the trace session (if one is active) and writes the Chrome
/// trace-event JSON to the `--trace` path, noting it in the report.
fn write_trace(
    session: Option<gmip_trace::TraceSession>,
    o: &Options,
    out: &mut String,
) -> Result<(), String> {
    if let (Some(session), Some(path)) = (session, &o.trace) {
        let trace = session.finish();
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!(
            "trace: {} events written to {path} (load at ui.perfetto.dev)\n",
            trace.len()
        ));
    }
    Ok(())
}

/// Solves with the float host path and certifies the result against the
/// exact rational oracle; errors on any discrepancy so the process exits
/// nonzero.
pub fn verify(instance: MipInstance, o: &Options) -> Result<String, String> {
    const TOL: f64 = 1e-5;
    instance.validate().map_err(|e| format!("{e}"))?;
    let mut out = String::new();
    out.push_str(&format!(
        "instance: {} ({} vars / {} integral, {} cons)\n",
        instance.name,
        instance.num_vars(),
        instance.num_integral(),
        instance.num_cons()
    ));

    let mut cfg = mip_config(o);
    cfg.collect_certificates = true;
    let mut solver = MipSolver::host_baseline(instance.clone(), cfg);
    let r = solver.solve().map_err(|e| format!("{e}"))?;

    let oracle = gmip_verify::solve_oracle(&instance).map_err(|e| format!("oracle: {e}"))?;
    let exact = oracle.objective.as_ref().map(gmip_verify::Rat::approx);
    out.push_str(&format!("float host:   {:?}", r.status));
    if !r.x.is_empty() {
        out.push_str(&format!(", objective {}", r.objective));
    }
    out.push_str(&format!("\nexact oracle: {:?}", oracle.status));
    if let Some(v) = exact {
        out.push_str(&format!(
            ", proven optimum {v} ({} exact B&B nodes)",
            oracle.nodes
        ));
    }
    out.push('\n');

    let status_ok = matches!(
        (r.status, oracle.status),
        (MipStatus::Optimal, gmip_verify::OracleStatus::Optimal)
            | (MipStatus::Infeasible, gmip_verify::OracleStatus::Infeasible)
            | (MipStatus::Unbounded, gmip_verify::OracleStatus::Unbounded)
    );
    if !status_ok {
        return Err(format!(
            "status mismatch: float host {:?} vs exact oracle {:?}",
            r.status, oracle.status
        ));
    }
    if let Some(want) = exact {
        if (r.objective - want).abs() > TOL * (1.0 + want.abs()) {
            return Err(format!(
                "objective mismatch: float host {} vs proven optimum {want}",
                r.objective
            ));
        }
        gmip_verify::check_incumbent(&instance, &r.x, r.objective, TOL)
            .map_err(|e| format!("incumbent check: {e}"))?;
        out.push_str("incumbent: exactly feasible, objective certified\n");
    }
    let certs = gmip_verify::check_certificates(&instance, &r.stats.certificates, TOL);
    if !certs.failures.is_empty() {
        return Err(format!(
            "{} of {} certificates invalid:\n  {}",
            certs.failures.len(),
            certs.checked,
            certs.failures.join("\n  ")
        ));
    }
    out.push_str(&format!(
        "certificates: {} checked ({} dual bounds, {} Farkas), all exactly valid\n",
        certs.checked, certs.dual_bounds, certs.farkas
    ));
    out.push_str("VERIFIED\n");
    Ok(out)
}

/// Replays a seeded traffic tape through the multi-tenant solve service
/// and reports the SLO summary; optionally audits served answers against
/// the exact oracle and gates on the shed rate.
pub fn serve(o: &Options) -> Result<String, String> {
    let chaos = o
        .faults
        .as_deref()
        .map(ChaosConfig::parse)
        .transpose()
        .map_err(|e| format!("--faults: {e}"))?;
    let tcfg = gmip_serve::TrafficConfig {
        jobs: o.jobs,
        seed: o.seed,
        mean_interarrival_ns: o.mean_gap_us * 1e3,
        tenants: o.tenants,
        max_items: o.max_items,
        dup_prob: o.dup,
        perturb_prob: o.perturb,
    };
    let (tenants, jobs) = gmip_serve::generate(&tcfg);
    let mut out = String::new();
    out.push_str(&format!(
        "traffic: {} jobs, {} tenants, seed {}, mean gap {:.0} µs{}\n",
        o.jobs,
        o.tenants,
        o.seed,
        o.mean_gap_us,
        if o.faults.is_some() {
            " (chaos overlay)"
        } else {
            ""
        }
    ));
    let session = o.trace.as_ref().map(|_| gmip_trace::TraceSession::start());
    let scfg = gmip_serve::ServeConfig {
        ranks: o.ranks,
        node_limit: o.node_limit,
        chaos,
        ..Default::default()
    };
    let report = gmip_serve::Service::new(scfg, tenants).run(jobs.clone());
    write_trace(session, o, &mut out)?;
    out.push_str(&report.summary());
    if o.verify_sample > 0 {
        let audited = gmip_serve::spot_check(&jobs, &report, o.verify_sample, o.seed)
            .map_err(|e| format!("oracle spot-check FAILED: {e}"))?;
        out.push_str(&format!(
            "oracle spot-check: {audited} served answers audited, all match\n"
        ));
    }
    if let Some(cap) = o.max_shed_rate {
        let rate = report.shed_rate();
        if rate > cap {
            return Err(format!(
                "shed rate {rate:.3} exceeds the --max-shed-rate bound {cap:.3}"
            ));
        }
        out.push_str(&format!(
            "shed rate: {rate:.3} (within the {cap:.3} bound)\n"
        ));
    }
    if o.metrics {
        out.push('\n');
        out.push_str(&gmip_trace::export::summary(&report.metrics));
    }
    Ok(out)
}

/// Maps a solution on the (possibly presolve-reduced) instance back to the
/// original variable space.
fn postsolve_map(
    instance: &MipInstance,
    pre: &Option<gmip_core::PresolveResult>,
    objective: f64,
    x: &[f64],
) -> (f64, Vec<f64>) {
    match (pre, x.is_empty()) {
        (_, true) => (objective, x.to_vec()),
        (Some(pre), false) => {
            let full = pre.postsolve(x);
            (instance.objective_value(&full), full)
        }
        (None, false) => (objective, x.to_vec()),
    }
}

/// Solves an instance per the options; returns the formatted report.
pub fn solve(instance: MipInstance, o: &Options) -> Result<String, String> {
    instance.validate().map_err(|e| format!("{e}"))?;
    let mut out = String::new();
    out.push_str(&format!(
        "instance: {} ({} vars / {} integral, {} cons, density {:.3})\n",
        instance.name,
        instance.num_vars(),
        instance.num_integral(),
        instance.num_cons(),
        instance.density()
    ));

    // Optional presolve.
    let (work, pre) = if o.presolve {
        let pre = presolve(&instance, 5);
        if pre.infeasible {
            out.push_str("presolve: proven infeasible\n");
            return Ok(out);
        }
        out.push_str(&format!(
            "presolve: {} vars fixed, {} rows dropped, {} bounds tightened\n",
            pre.vars_fixed(),
            pre.rows_dropped,
            pre.bounds_tightened
        ));
        (pre.reduced.clone(), Some(pre))
    } else {
        (instance.clone(), None)
    };

    let cfg = mip_config(o);
    let gpu_mem = o.gpu_mem_gib << 30;
    // Start span recording before the solver is even constructed so device
    // warm-up (matrix upload, initial factorization) lands in the trace too.
    let session = o.trace.as_ref().map(|_| gmip_trace::TraceSession::start());

    // The cluster strategy goes through the discrete-event supervisor and
    // reports its own statistics shape, so it is handled apart from the
    // single-process MipResult paths below.
    if let Some(spec) = o.strategy.strip_prefix("cluster:") {
        // `cluster:<ranks>` is the flat star; `cluster:<ranks>x<fanout>`
        // groups the ranks under sub-supervisors of width <fanout>.
        let (ranks_spec, fanout) = match spec.split_once('x') {
            Some((r, f)) => {
                let fanout = f.parse().ok().filter(|&f: &usize| f >= 1).ok_or_else(|| {
                    "cluster fan-out needs a group width >= 1, e.g. cluster:64x8".to_string()
                })?;
                (r, Some(fanout))
            }
            None => (spec, None),
        };
        let workers = ranks_spec
            .parse()
            .ok()
            .filter(|&w: &usize| w >= 1)
            .ok_or_else(|| "cluster needs a worker count >= 1, e.g. cluster:4".to_string())?;
        if workers > MAX_RANKS {
            // Guard against absurd widths: the DES keeps O(ranks) state per
            // event round, so a typo like cluster:10000000 would exhaust
            // memory instead of producing a curve.
            return Err(format!(
                "cluster:{workers} exceeds the simulation ceiling of {MAX_RANKS} ranks"
            ));
        }
        let chaos = o
            .faults
            .as_deref()
            .map(ChaosConfig::parse)
            .transpose()
            .map_err(|e| format!("--faults: {e}"))?;
        let pcfg = ParallelConfig {
            workers,
            gpu_mem,
            node_limit: o.node_limit,
            chaos,
            propagate: o.propagate,
            heuristic_period: o.heur_period,
            backend: o.backend,
            ..Default::default()
        };
        if let Some(fanout) = fanout {
            let hcfg = HierarchyConfig {
                fanout,
                ..Default::default()
            };
            let r = solve_hierarchical(&work, pcfg, hcfg).map_err(|e| format!("{e}"))?;
            write_trace(session, o, &mut out)?;
            let (objective, x) = postsolve_map(&instance, &pre, r.objective, &r.x);
            out.push_str(&format!("status: {:?}\n", r.status));
            if !x.is_empty() {
                out.push_str(&format!("objective: {objective}\n"));
            }
            out.push_str(&format!(
                "nodes: {}   lp iterations: {}   messages: {} ({} B)   makespan: {:.3} ms\n",
                r.stats.nodes,
                r.stats.lp_iterations,
                r.stats.messages,
                r.stats.message_bytes,
                r.stats.makespan_ns / 1e6
            ));
            let h = &r.hier;
            out.push_str(&format!(
                "hierarchy: {} groups x {}   root messages: {} ({} B)   \
                 summaries: {}   steals: {} ({} subtrees, {} denied)\n",
                h.groups,
                h.fanout,
                h.root_messages,
                h.root_message_bytes,
                h.summaries,
                h.steals,
                h.stolen_subtrees,
                h.steal_denied
            ));
            if o.faults.is_some() {
                let f = &r.stats.faults;
                out.push_str(&format!(
                    "faults: {} crashes, {} sub-crashes, {} drops, {} delays, {} straggles   \
                     recovery: {} reassigned, {} group subtrees shipped, {} respawned, \
                     {} sub-respawned, {} ranks retired\n",
                    f.crashes,
                    f.sub_crashes,
                    f.drops,
                    f.delays,
                    f.straggles,
                    f.reassignments,
                    f.group_reassigned_subtrees,
                    f.respawns,
                    f.sub_respawns,
                    f.degraded_ranks
                ));
            }
            if o.metrics {
                out.push('\n');
                out.push_str(&gmip_trace::export::summary(&r.stats.metrics));
            }
            return Ok(out);
        }
        let r = solve_parallel(&work, pcfg).map_err(|e| format!("{e}"))?;
        write_trace(session, o, &mut out)?;
        let (objective, x) = postsolve_map(&instance, &pre, r.objective, &r.x);
        out.push_str(&format!("status: {:?}\n", r.status));
        if !x.is_empty() {
            out.push_str(&format!("objective: {objective}\n"));
        }
        out.push_str(&format!(
            "nodes: {}   lp iterations: {}   messages: {} ({} B)   makespan: {:.3} ms\n",
            r.stats.nodes,
            r.stats.lp_iterations,
            r.stats.messages,
            r.stats.message_bytes,
            r.stats.makespan_ns / 1e6
        ));
        if o.faults.is_some() {
            let f = &r.stats.faults;
            out.push_str(&format!(
                "faults: {} crashes, {} drops, {} delays, {} straggles   \
                 recovery: {} reassigned, {} respawned, {} ranks retired\n",
                f.crashes,
                f.drops,
                f.delays,
                f.straggles,
                f.reassignments,
                f.respawns,
                f.degraded_ranks
            ));
        }
        if o.metrics {
            out.push('\n');
            out.push_str(&gmip_trace::export::summary(&r.stats.metrics));
        }
        return Ok(out);
    }
    if o.faults.is_some() {
        return Err("--faults requires the cluster:<workers> strategy".to_string());
    }

    // The batched wave reports wave-level statistics (supersteps, retires,
    // refills) that have no slot in MipResult, so it too is handled apart.
    if let Some(spec) = o.strategy.strip_prefix("batched:") {
        let lanes = spec
            .parse()
            .ok()
            .filter(|&l: &usize| l >= 1)
            .ok_or_else(|| "batched needs a lane count >= 1, e.g. batched:8".to_string())?;
        let wcfg = BatchedWaveConfig {
            lanes,
            lp: cfg.lp.clone(),
            node_limit: o.node_limit,
            propagate: o.propagate,
            propagate_rounds: o.prop_rounds,
            heuristic_period: o.heur_period,
            backend: o.backend,
            ..Default::default()
        };
        let accel = Accel::gpu(o.gpu_mem_gib);
        let r = solve_batched_wave(&work, &wcfg, accel).map_err(|e| format!("{e}"))?;
        write_trace(session, o, &mut out)?;
        let (objective, x) = postsolve_map(&instance, &pre, r.objective, &r.x);
        out.push_str(&format!("status: {:?}\n", r.status));
        if !x.is_empty() {
            out.push_str(&format!("objective: {objective}\n"));
        }
        out.push_str(&format!(
            "nodes: {}   wave width: {}   supersteps: {}   retires: {}   refills: {}\n",
            r.nodes, r.width, r.supersteps, r.retires, r.refills
        ));
        out.push_str(&format!("makespan: {:.3} ms\n", r.makespan_ns / 1e6));
        if o.stats {
            let d = &r.device;
            out.push_str(&format!(
                "device: {} kernels, {} H2D ({} B), {} D2H ({} B), peak mem {} B\n",
                d.kernel_launches,
                d.h2d_transfers,
                d.h2d_bytes,
                d.d2h_transfers,
                d.d2h_bytes,
                r.peak_device_bytes
            ));
        }
        if o.metrics {
            out.push('\n');
            out.push_str(&gmip_trace::export::summary(&r.metrics));
        }
        return Ok(out);
    }

    // First-order wave: restarted PDHG lanes in lockstep, reported with
    // the same wave-level statistics plus the PDHG-specific counters.
    if let Some(spec) = o.strategy.strip_prefix("firstorder:") {
        let lanes = spec
            .parse()
            .ok()
            .filter(|&l: &usize| l >= 1)
            .ok_or_else(|| "firstorder needs a lane count >= 1, e.g. firstorder:64".to_string())?;
        let wcfg = FirstOrderWaveConfig {
            lanes,
            node_limit: o.node_limit,
            propagate: o.propagate,
            propagate_rounds: o.prop_rounds,
            heuristic_period: o.heur_period,
            backend: o.backend,
            ..Default::default()
        };
        let accel = Accel::gpu(o.gpu_mem_gib);
        let r = solve_first_order_wave(&work, &wcfg, accel).map_err(|e| format!("{e}"))?;
        write_trace(session, o, &mut out)?;
        let (objective, x) = postsolve_map(&instance, &pre, r.objective, &r.x);
        out.push_str(&format!("status: {:?}\n", r.status));
        if !x.is_empty() {
            out.push_str(&format!("objective: {objective}\n"));
        }
        out.push_str(&format!(
            "nodes: {}   wave width: {}   supersteps: {}   retires: {}   refills: {}\n",
            r.nodes, r.width, r.supersteps, r.retires, r.refills
        ));
        out.push_str(&format!(
            "pdhg: {} iterations, {} restarts, {} bound-pruned, {} cleanups\n",
            r.metrics.counter("fo.iterations"),
            r.metrics.counter("fo.restarts"),
            r.metrics.counter("fo.bound_pruned"),
            r.metrics.counter("fo.cleanups"),
        ));
        out.push_str(&format!("makespan: {:.3} ms\n", r.makespan_ns / 1e6));
        if o.stats {
            let d = &r.device;
            out.push_str(&format!(
                "device: {} kernels, {} H2D ({} B), {} D2H ({} B), peak mem {} B\n",
                d.kernel_launches,
                d.h2d_transfers,
                d.h2d_bytes,
                d.d2h_transfers,
                d.d2h_bytes,
                r.peak_device_bytes
            ));
        }
        if o.metrics {
            out.push('\n');
            out.push_str(&gmip_trace::export::summary(&r.metrics));
        }
        return Ok(out);
    }

    let result: MipResult = match o.strategy.as_str() {
        "host" => {
            let mut s = MipSolver::host_baseline(work, cfg);
            s.solve().map_err(|e| format!("{e}"))?
        }
        "auto" => {
            let accel = Accel::gpu(o.gpu_mem_gib);
            let path = choose_path(&work, &CostModel::gpu_pcie());
            out.push_str(&format!("dispatch: {path:?}\n"));
            let (_, r) = solve_with_dispatch(work, cfg, accel).map_err(|e| format!("{e}"))?;
            r
        }
        name => {
            let strategy = match name {
                "cpu-orchestrated" => Strategy::CpuOrchestrated,
                "gpu-only" => Strategy::GpuOnly,
                "hybrid" => Strategy::Hybrid,
                s if s.starts_with("big-mip:") => {
                    let devices = s["big-mip:".len()..]
                        .parse()
                        .ok()
                        .filter(|&d: &usize| d >= 1)
                        .ok_or_else(|| {
                            "big-mip needs a device count >= 1, e.g. big-mip:4".to_string()
                        })?;
                    Strategy::BigMip { devices }
                }
                other => return Err(format!("unknown strategy `{other}`")),
            };
            let p = plan(strategy, cfg, CostModel::gpu_pcie(), gpu_mem);
            let mut s = MipSolver::with_plan(work, p);
            s.solve().map_err(|e| format!("{e}"))?
        }
    };

    write_trace(session, o, &mut out)?;

    // Map back through presolve if needed.
    let (objective, x) = postsolve_map(&instance, &pre, result.objective, &result.x);

    out.push_str(&format!("status: {:?}\n", result.status));
    if !x.is_empty() {
        out.push_str(&format!("objective: {objective}\n"));
        let nonzero: Vec<String> = instance
            .vars
            .iter()
            .zip(&x)
            .filter(|(_, &v)| v.abs() > 1e-9)
            .take(25)
            .map(|(var, &v)| format!("{}={v}", var.name))
            .collect();
        out.push_str(&format!("solution (nonzeros): {}\n", nonzero.join(" ")));
    }
    out.push_str(&format!(
        "nodes: {}   lp iterations: {}   cuts: {}\n",
        result.stats.nodes, result.stats.lp_iterations, result.stats.cuts
    ));
    if o.stats {
        let d = &result.stats.device;
        out.push_str(&format!(
            "device: {} kernels, {} H2D ({} B), {} D2H ({} B), spills {}\n",
            d.kernel_launches,
            d.h2d_transfers,
            d.h2d_bytes,
            d.d2h_transfers,
            d.d2h_bytes,
            result.stats.gpu_spills
        ));
        out.push_str(&format!(
            "simulated time: {:.3} ms\n",
            result.stats.sim_time_ns / 1e6
        ));
    }
    if o.metrics {
        out.push('\n');
        out.push_str(&gmip_trace::export::summary(&result.stats.metrics));
    }
    if o.tree {
        out.push('\n');
        out.push_str(&render::render(&result.tree));
        out.push_str(render::LEGEND);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = parse_options(&s(&["file.mps"])).unwrap();
        assert_eq!(o.positional, vec!["file.mps"]);
        assert_eq!(o.strategy, "cpu-orchestrated");
        assert!(o.cuts);
        let o = parse_options(&s(&[
            "x.mps",
            "--strategy",
            "hybrid",
            "--no-cuts",
            "--policy",
            "reuse",
            "--node-limit",
            "42",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(o.strategy, "hybrid");
        assert!(!o.cuts);
        assert_eq!(o.policy, PolicyKind::ReuseAffinity);
        assert_eq!(o.node_limit, 42);
        assert!(o.stats);
    }

    #[test]
    fn parse_gap_and_obj_limit() {
        let o = parse_options(&s(&["x.mps", "--gap", "0.05", "--obj-limit", "12.5"])).unwrap();
        assert_eq!(o.gap, 0.05);
        assert_eq!(o.obj_limit, Some(12.5));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_options(&s(&["--bogus"])).is_err());
        assert!(parse_options(&s(&["--node-limit"])).is_err());
        assert!(parse_options(&s(&["--node-limit", "abc"])).is_err());
        assert!(parse_options(&s(&["--policy", "zigzag"])).is_err());
    }

    #[test]
    fn generate_families() {
        let mut o = Options::default();
        o.positional = s(&["knapsack", "8"]);
        let m = generate(&o).unwrap();
        assert_eq!(m.num_vars(), 8);
        o.positional = s(&["facility", "3", "2", "25"]);
        let m = generate(&o).unwrap();
        assert_eq!(m.num_vars(), 3 * 2 + 2);
        o.positional = s(&["unknown"]);
        assert!(generate(&o).is_err());
        o.positional = s(&["setcover", "5"]);
        assert!(generate(&o).is_err(), "missing parameters rejected");
    }

    #[test]
    fn end_to_end_generate_and_solve_roundtrip() {
        // generate → MPS text → read back → solve with several strategies.
        let mut o = Options::default();
        o.positional = s(&["knapsack", "10"]);
        o.seed = 3;
        let instance = generate(&o).unwrap();
        let text = write_mps(&instance);
        let back = read_mps(&text).unwrap();

        let mut host_opts = Options::default();
        host_opts.strategy = "host".into();
        host_opts.stats = true;
        let host_out = solve(back.clone(), &host_opts).unwrap();
        assert!(host_out.contains("status: Optimal"));

        let mut dev_opts = Options::default();
        dev_opts.strategy = "auto".into();
        let dev_out = solve(back.clone(), &dev_opts).unwrap();
        assert!(dev_out.contains("status: Optimal"));
        // Same objective line in both.
        let grab = |t: &str| {
            t.lines()
                .find(|l| l.starts_with("objective:"))
                .expect("objective line")
                .to_string()
        };
        assert_eq!(grab(&host_out), grab(&dev_out));
    }

    #[test]
    fn solve_with_presolve_and_tree() {
        let mut o = Options::default();
        o.strategy = "host".into();
        o.presolve = true;
        o.tree = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("presolve:"));
        assert!(out.contains("status: Optimal"));
        assert!(out.contains("objective: 14"));
        assert!(out.contains("root"));
    }

    #[test]
    fn solve_with_cluster_strategy() {
        let mut o = Options::default();
        o.strategy = "cluster:2".into();
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("makespan:"), "{out}");
        assert!(out.contains("cluster.messages"), "{out}");
        let mut bad = Options::default();
        bad.strategy = "cluster:x".into();
        assert!(solve(gmip_problems::catalog::figure1_knapsack(), &bad).is_err());
    }

    #[test]
    fn solve_cluster_with_faults() {
        let mut o = Options::default();
        o.strategy = "cluster:3".into();
        o.faults = Some("seed=5,crashes=2,drop=0.1".into());
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("recovery:"), "{out}");
        assert!(out.contains("fault.drops"), "metrics glossary rows:\n{out}");
        // Bad spec is a parse error, not a panic.
        let mut bad = Options::default();
        bad.strategy = "cluster:2".into();
        bad.faults = Some("drop=2.5".into());
        assert!(solve(gmip_problems::catalog::figure1_knapsack(), &bad).is_err());
        // --faults outside the cluster strategy is rejected.
        let mut wrong = Options::default();
        wrong.strategy = "host".into();
        wrong.faults = Some("7".into());
        let err = solve(gmip_problems::catalog::figure1_knapsack(), &wrong).unwrap_err();
        assert!(err.contains("cluster"), "{err}");
    }

    #[test]
    fn solve_with_hierarchical_cluster_strategy() {
        let mut o = Options::default();
        o.strategy = "cluster:8x2".into();
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("objective: 14"), "{out}");
        assert!(out.contains("hierarchy: 4 groups x 2"), "{out}");
        assert!(out.contains("root messages:"), "{out}");
        assert!(out.contains("hier.root.messages"), "{out}");
        // Same topology, same bytes.
        let again = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert_eq!(out, again, "hierarchical solve must be deterministic");
    }

    #[test]
    fn solve_hierarchical_with_faults() {
        let mut o = Options::default();
        o.strategy = "cluster:8x2".into();
        o.faults = Some("seed=5,sub-crash=1,root-slow=4,horizon=2e5".into());
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("sub-crashes"), "{out}");
        assert!(out.contains("group subtrees shipped"), "{out}");
    }

    #[test]
    fn absurd_cluster_widths_are_rejected_before_the_des() {
        // Satellite regression: `cluster:` parsing used to accept widths
        // that OOM the discrete-event simulation; anything past MAX_RANKS
        // must now fail fast with a clean error.
        let m = gmip_problems::catalog::figure1_knapsack;
        for bad in [
            "cluster:1000000",
            "cluster:4097",
            "cluster:1000000x8",
            "cluster:8x0",
            "cluster:8x",
            "cluster:0x8",
            "cluster:x8",
        ] {
            let mut o = Options::default();
            o.strategy = bad.into();
            let err = solve(m(), &o).unwrap_err();
            assert!(
                err.contains(">= 1") || err.contains("ceiling"),
                "strategy {bad}: got `{err}`"
            );
        }
        // The ceiling itself is inclusive: E10's largest cell must stay
        // legal, so cluster:1024x32 has to make it past the guard.
        let o = parse_options(&s(&["x.mps", "--strategy", "cluster:1024x32"])).unwrap();
        assert_eq!(o.strategy, "cluster:1024x32");
    }

    #[test]
    fn parse_propagation_flags() {
        let o = parse_options(&s(&["x.mps"])).unwrap();
        assert!(!o.propagate, "propagation is opt-in");
        assert_eq!(o.prop_rounds, 8);
        assert_eq!(o.heur_period, 0, "fix-and-propagate is opt-in");
        let o = parse_options(&s(&[
            "x.mps",
            "--propagate",
            "--prop-rounds",
            "4",
            "--heur-period",
            "3",
        ]))
        .unwrap();
        assert!(o.propagate);
        assert_eq!(o.prop_rounds, 4);
        assert_eq!(o.heur_period, 3);
        assert!(parse_options(&s(&["--prop-rounds", "0"])).is_err());
        assert!(parse_options(&s(&["--heur-period", "x"])).is_err());
    }

    #[test]
    fn solve_with_propagation_across_strategies() {
        // The same instance, the same proven optimum, with propagation and
        // the fix-and-propagate dive enabled on every backend family.
        for strategy in [
            "host",
            "cpu-orchestrated",
            "batched:4",
            "firstorder:4",
            "cluster:2",
        ] {
            let mut o = Options::default();
            o.strategy = strategy.into();
            o.propagate = true;
            o.heur_period = 2;
            o.metrics = true;
            let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
            assert!(out.contains("status: Optimal"), "{strategy}:\n{out}");
            assert!(out.contains("objective: 14"), "{strategy}:\n{out}");
            assert!(out.contains("prop.nodes"), "{strategy}:\n{out}");
            // Deterministic: a rerun produces byte-identical output.
            assert_eq!(
                out,
                solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap()
            );
        }
    }

    #[test]
    fn parse_pricing_flag() {
        let o = parse_options(&s(&["x.mps", "--pricing", "devex"])).unwrap();
        assert_eq!(o.pricing, PricingRule::Devex);
        let o = parse_options(&s(&["x.mps", "--pricing", "dantzig"])).unwrap();
        assert_eq!(o.pricing, PricingRule::Dantzig);
        assert!(parse_options(&s(&["x.mps", "--pricing", "steepest"])).is_err());
    }

    #[test]
    fn solve_with_batched_strategy() {
        let mut o = Options::default();
        o.strategy = "batched:4".into();
        o.stats = true;
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("objective: 14"), "{out}");
        assert!(out.contains("wave width:"), "{out}");
        assert!(out.contains("wave.fused_launches"), "{out}");
        // Devex pricing runs the same strategy to the same answer.
        let mut dv = Options::default();
        dv.strategy = "batched:4".into();
        dv.pricing = PricingRule::Devex;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &dv).unwrap();
        assert!(out.contains("objective: 14"), "{out}");
        // Bad lane counts are parse errors.
        let mut bad = Options::default();
        bad.strategy = "batched:0".into();
        assert!(solve(gmip_problems::catalog::figure1_knapsack(), &bad).is_err());
        bad.strategy = "batched:x".into();
        assert!(solve(gmip_problems::catalog::figure1_knapsack(), &bad).is_err());
    }

    #[test]
    fn solve_with_firstorder_strategy() {
        let mut o = Options::default();
        o.strategy = "firstorder:4".into();
        o.stats = true;
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("objective: 14"), "{out}");
        assert!(out.contains("wave width:"), "{out}");
        assert!(out.contains("pdhg:"), "{out}");
        assert!(out.contains("fo.fused_launches"), "{out}");
        // Deterministic: a rerun produces byte-identical output.
        let again = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert_eq!(out, again, "firstorder output must replay byte-identically");
    }

    #[test]
    fn backend_flag_parses_and_native_output_matches_sim() {
        let o = parse_options(&s(&["x.mps", "--backend", "native"])).unwrap();
        assert_eq!(o.backend, gmip_gpu::BackendKind::Native { threads: 0 });
        assert!(parse_options(&s(&["x.mps", "--backend", "cuda"])).is_err());
        assert!(parse_options(&s(&["x.mps", "--backend"])).is_err());

        // The native backend's report must match sim byte-for-byte once
        // the (real, run-dependent) wall.* lines are filtered out.
        let run = |backend| {
            let mut o = Options::default();
            o.strategy = "firstorder:4".into();
            o.propagate = true;
            o.metrics = true;
            o.backend = backend;
            let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
            out.lines()
                .filter(|l| !l.contains("wall."))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let sim = run(gmip_gpu::BackendKind::Sim);
        assert!(sim.contains("status: Optimal"), "{sim}");
        assert_eq!(run(gmip_gpu::BackendKind::Native { threads: 2 }), sim);
    }

    #[test]
    fn zero_or_garbage_strategy_widths_error_cleanly() {
        // Satellite: `cluster:0`, `batched:0`, `firstorder:0`, `big-mip:0`
        // and unparsable widths must come back as Err (the binary maps Err
        // to a nonzero exit), never as a panic.
        let m = gmip_problems::catalog::figure1_knapsack;
        for bad in [
            "cluster:0",
            "cluster:x",
            "cluster:",
            "batched:0",
            "batched:-1",
            "batched:",
            "firstorder:0",
            "firstorder:-1",
            "firstorder:",
            "firstorder:x",
            "big-mip:0",
            "big-mip:x",
            "big-mip:",
        ] {
            let mut o = Options::default();
            o.strategy = bad.into();
            let err = solve(m(), &o).unwrap_err();
            assert!(err.contains(">= 1"), "strategy {bad}: got `{err}`");
        }
    }

    #[test]
    fn serve_subcommand_runs_and_reports() {
        let mut o = Options::default();
        o.jobs = 30;
        o.seed = 9;
        o.ranks = 4;
        o.max_items = 9;
        o.verify_sample = 5;
        o.max_shed_rate = Some(0.5);
        o.metrics = true;
        let out = serve(&o).unwrap();
        assert!(out.contains("jobs submitted     30"), "{out}");
        assert!(out.contains("latency p50/p99"), "{out}");
        assert!(out.contains("oracle spot-check:"), "{out}");
        assert!(out.contains("serve.jobs.completed"), "{out}");
        // Same seed → byte-identical report.
        assert_eq!(out, serve(&o).unwrap());
    }

    #[test]
    fn serve_with_chaos_overlay_still_answers_correctly() {
        let mut o = Options::default();
        o.jobs = 20;
        o.seed = 4;
        o.ranks = 4;
        o.max_items = 8;
        o.faults = Some("seed=3,crashes=1,drop=0.05".into());
        o.verify_sample = 5;
        let out = serve(&o).unwrap();
        assert!(out.contains("chaos overlay"), "{out}");
        assert!(out.contains("all match"), "{out}");
    }

    #[test]
    fn parse_serve_flags() {
        let o = parse_options(&s(&[
            "--jobs",
            "50",
            "--ranks",
            "6",
            "--tenants",
            "2",
            "--dup",
            "0.2",
            "--verify-sample",
            "10",
            "--max-shed-rate",
            "0.25",
        ]))
        .unwrap();
        assert_eq!(o.jobs, 50);
        assert_eq!(o.ranks, 6);
        assert_eq!(o.tenants, 2);
        assert_eq!(o.dup, 0.2);
        assert_eq!(o.verify_sample, 10);
        assert_eq!(o.max_shed_rate, Some(0.25));
        assert!(parse_options(&s(&["--jobs", "0"])).is_err());
        assert!(parse_options(&s(&["--ranks", "x"])).is_err());
        assert!(parse_options(&s(&["--dup", "1.5"])).is_err());
        assert!(parse_options(&s(&["--max-shed-rate", "-0.1"])).is_err());
    }

    #[test]
    fn parse_faults_flag() {
        let o = parse_options(&s(&["x.mps", "--faults", "42"])).unwrap();
        assert_eq!(o.faults.as_deref(), Some("42"));
        assert!(parse_options(&s(&["--faults"])).is_err());
    }

    #[test]
    fn solve_with_trace_and_metrics() {
        let path = std::env::temp_dir().join("gmip_cli_trace_test.json");
        let mut o = Options::default();
        o.strategy = "auto".into();
        o.trace = Some(path.to_string_lossy().into_owned());
        o.metrics = true;
        let out = solve(gmip_problems::catalog::figure1_knapsack(), &o).unwrap();
        assert!(out.contains("trace:"), "trace line missing:\n{out}");
        assert!(
            out.contains("lp.simplex.iterations"),
            "summary missing:\n{out}"
        );
        assert!(out.contains("gpu.h2d.bytes"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"node\""), "solver node spans missing");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_dispatches_and_reports_errors() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&["solve"])).is_err());
        assert!(run(&s(&["solve", "/nonexistent/x.mps"])).is_err());
        // generate to stdout.
        let out = run(&s(&["generate", "knapsack", "5"])).unwrap();
        assert!(out.contains("NAME"));
        assert!(out.contains("ENDATA"));
    }
}
