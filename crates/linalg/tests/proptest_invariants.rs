//! Property-based invariants of the linear-algebra kernels.
//!
//! * `PA = LU` reconstruction for dense LU on random nonsingular matrices;
//! * solve correctness (`‖Ax − b‖` small) for dense and sparse LU;
//! * Cholesky `LLᵀ = A` reconstruction and solve residuals on random SPD
//!   matrices, agreeing with LU on the same system;
//! * eta-file FTRAN/BTRAN agreement with fresh factorizations through
//!   random update sequences;
//! * format-conversion round trips (dense ⇄ CSR ⇄ CSC);
//! * QR least-squares optimality (residual orthogonal to the column space).

use gmip_linalg::qr::QrFactors;
use gmip_linalg::{
    norms, CholeskyFactors, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, EtaFile, LuFactors,
    SparseEtaFile, SparseLu,
};
use proptest::prelude::*;

/// Random diagonally-dominant matrix: always nonsingular, well-conditioned.
fn dd_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(-1.0f64..1.0, n * n),
                proptest::collection::vec(0.5f64..2.0, n),
            )
        })
        .prop_map(|(n, off, diag)| {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        a.set(i, j, n as f64 + diag[i]);
                    } else {
                        a.set(i, j, off[i * n + j]);
                    }
                }
            }
            a
        })
}

/// Random sparse diagonally-dominant matrix (entries kept with prob ~p).
fn sparse_dd_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    (2usize..=max_n, 0.05f64..0.5)
        .prop_flat_map(|(n, p)| {
            (
                Just(n),
                proptest::collection::vec((0.0f64..1.0, -1.0f64..1.0), n * n),
                Just(p),
            )
        })
        .prop_map(|(n, cells, p)| {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let (coin, v) = cells[i * n + j];
                    if i == j {
                        a.set(i, j, n as f64 + 1.0 + v.abs());
                    } else if coin < p {
                        a.set(i, j, v);
                    }
                }
            }
            a
        })
}

/// Random symmetric positive-definite matrix: symmetrizing a strictly
/// diagonally-dominant matrix with positive diagonal preserves dominance,
/// and a symmetric strictly-dd matrix with positive diagonal is SPD.
fn spd_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    dd_matrix(max_n).prop_map(|a| {
        let n = a.rows();
        let mut s = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn dense_lu_reconstructs_pa(a in dd_matrix(9)) {
        let f = LuFactors::factorize(&a).expect("dd nonsingular");
        let pa_rows: Vec<Vec<f64>> = f.perm().iter().map(|&p| a.row(p).to_vec()).collect();
        let pa = DenseMatrix::from_rows(&pa_rows).expect("rows");
        let lu = f.reconstruct_permuted();
        prop_assert!(norms::max_abs_diff(pa.as_slice(), lu.as_slice()) < 1e-9);
    }

    #[test]
    fn dense_lu_solves(a in dd_matrix(9)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let x = LuFactors::factorize(&a).expect("dd").solve(&b).expect("solve");
        let ax = a.matvec(&x).expect("dims");
        prop_assert!(norms::relative_residual(&ax, &b) < 1e-8);
        // Transposed solve too.
        let y = LuFactors::factorize(&a).expect("dd").solve_transposed(&b).expect("solve_t");
        let aty = a.transpose().matvec(&y).expect("dims");
        prop_assert!(norms::relative_residual(&aty, &b) < 1e-8);
    }

    /// Cholesky on random SPD systems: `LLᵀ` reconstructs `A`, the solve
    /// residual is bounded, and the solution agrees with LU's.
    #[test]
    fn cholesky_reconstructs_and_solves_spd(a in spd_matrix(9)) {
        let n = a.rows();
        let f = CholeskyFactors::factorize(&a).expect("SPD by construction");
        // LLᵀ = A.
        let l = f.l();
        let mut llt = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    acc += l.get(i, k) * l.get(j, k);
                }
                llt.set(i, j, acc);
            }
        }
        prop_assert!(norms::max_abs_diff(llt.as_slice(), a.as_slice()) < 1e-9);
        // Factor → solve residual bound.
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 2.0).collect();
        let x = f.solve(&b).expect("solve");
        let ax = a.matvec(&x).expect("dims");
        prop_assert!(norms::relative_residual(&ax, &b) < 1e-8);
        // Same system through LU lands on the same solution.
        let x_lu = LuFactors::factorize(&a).expect("nonsingular").solve(&b).expect("lu solve");
        prop_assert!(norms::max_abs_diff(&x, &x_lu) < 1e-8);
    }

    #[test]
    fn sparse_lu_matches_dense(a in sparse_dd_matrix(10)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 - 0.3 * i as f64).collect();
        let dense_x = LuFactors::factorize(&a).expect("dd").solve(&b).expect("solve");
        let csc = CscMatrix::from_dense(&a);
        let sf = SparseLu::factorize(&csc).expect("dd sparse");
        let sparse_x = sf.solve(&b).expect("sparse solve");
        prop_assert!(norms::max_abs_diff(&dense_x, &sparse_x) < 1e-8);
        let dense_y = LuFactors::factorize(&a).expect("dd").solve_transposed(&b).expect("t");
        let sparse_y = sf.solve_transposed(&b).expect("sparse t");
        prop_assert!(norms::max_abs_diff(&dense_y, &sparse_y) < 1e-8);
    }

    /// Random basis-exchange sequences: eta files (dense and sparse base)
    /// stay consistent with a fresh factorization of the explicit basis.
    #[test]
    fn eta_files_track_refactorization(
        b0 in dd_matrix(7),
        exchanges in proptest::collection::vec(
            (0usize..7, proptest::collection::vec(-2.0f64..2.0, 7)), 1..5),
    ) {
        let n = b0.rows();
        let mut explicit = b0.clone();
        let mut dense_file = EtaFile::factorize(&b0).expect("factorize");
        let mut sparse_file = SparseEtaFile::factorize(&CscMatrix::from_dense(&b0))
            .expect("sparse factorize");
        for (pos_raw, col_raw) in exchanges {
            let pos = pos_raw % n;
            // Make the new column strongly pivoted at `pos` so the exchange
            // keeps the basis comfortably nonsingular.
            let mut col: Vec<f64> = col_raw[..n].to_vec();
            col[pos] += 3.0 * n as f64;
            let alpha = dense_file.ftran(&col).expect("ftran");
            if alpha[pos].abs() < 1e-6 {
                continue; // degenerate exchange; skip
            }
            dense_file.update(pos, alpha.clone()).expect("dense update");
            let alpha_s = sparse_file.ftran(&col).expect("sparse ftran");
            sparse_file.update(pos, alpha_s).expect("sparse update");
            for i in 0..n {
                explicit.set(i, pos, col[i]);
            }
            let fresh = LuFactors::factorize(&explicit).expect("explicit basis");
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let x_eta = dense_file.ftran(&rhs).expect("ftran");
            let x_fresh = fresh.solve(&rhs).expect("solve");
            prop_assert!(norms::max_abs_diff(&x_eta, &x_fresh) < 1e-6);
            let x_sparse = sparse_file.ftran(&rhs).expect("sparse ftran");
            prop_assert!(norms::max_abs_diff(&x_sparse, &x_fresh) < 1e-6);
            let y_eta = dense_file.btran(&rhs).expect("btran");
            let y_fresh = fresh.solve_transposed(&rhs).expect("solve_t");
            prop_assert!(norms::max_abs_diff(&y_eta, &y_fresh) < 1e-6);
        }
    }

    /// Dense → CSR → CSC → dense round trip is exact for exactly-representable
    /// values above the zero tolerance.
    #[test]
    fn sparse_format_roundtrip(a in sparse_dd_matrix(12)) {
        let csr = CsrMatrix::from_dense(&a);
        let csc = csr.to_csc();
        prop_assert_eq!(csc.to_dense(), a.clone());
        prop_assert_eq!(csc.to_csr(), csr.clone());
        // SpMV agreement between all three representations.
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let yd = a.matvec(&x).expect("dense");
        let yr = csr.matvec(&x).expect("csr");
        let yc = csc.matvec(&x).expect("csc");
        prop_assert!(norms::max_abs_diff(&yd, &yr) < 1e-12);
        prop_assert!(norms::max_abs_diff(&yd, &yc) < 1e-12);
    }

    /// COO duplicate accumulation equals dense accumulation.
    #[test]
    fn coo_accumulation_matches_dense(
        triplets in proptest::collection::vec(
            (0usize..5, 0usize..5, -2.0f64..2.0), 0..30),
    ) {
        let mut coo = CooMatrix::new(5, 5);
        let mut dense = DenseMatrix::zeros(5, 5);
        for &(i, j, v) in &triplets {
            coo.push(i, j, v).expect("in range");
            dense.set(i, j, dense.get(i, j) + v);
        }
        let from_coo = coo.to_csr().to_dense();
        prop_assert!(norms::max_abs_diff(from_coo.as_slice(), dense.as_slice()) < 1e-12);
    }

    /// QR least squares: the residual is orthogonal to every column of A.
    #[test]
    fn qr_residual_orthogonality(
        n in 2usize..5,
        extra_rows in 1usize..4,
        seedvals in proptest::collection::vec(-2.0f64..2.0, 64),
    ) {
        let m = n + extra_rows;
        let mut a = DenseMatrix::zeros(m, n);
        let mut idx = 0;
        for i in 0..m {
            for j in 0..n {
                let v = seedvals[idx % seedvals.len()] + if i == j { 3.0 } else { 0.0 };
                a.set(i, j, v);
                idx += 1;
            }
        }
        let b: Vec<f64> = (0..m).map(|i| seedvals[(7 * i + 3) % seedvals.len()]).collect();
        let f = QrFactors::factorize(&a).expect("full rank by construction");
        let x = match f.solve_least_squares(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // rank-deficient draw: skip
        };
        let ax = a.matvec(&x).expect("dims");
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = a.matvec_transposed(&r).expect("dims");
        // ‖Aᵀr‖ ≈ 0 is the least-squares optimality condition.
        prop_assert!(norms::norm_inf(&atr) < 1e-7 * (1.0 + norms::norm_inf(&b)));
    }
}
