//! Batched operations over many small independent matrices.
//!
//! Section 4.3 / 5.5 of the paper: modern GPUs are fed most efficiently by
//! *batch* routines that apply the same BLAS/LAPACK operation to a large
//! number of small matrices at once (MAGMA's batched mode, Rennich et al.'s
//! batched assembly for sparse Cholesky). Here the batch is executed with
//! `rayon` data parallelism on the host; the simulated device in `gmip-gpu`
//! charges a *single* kernel-launch latency for the whole batch, which is
//! what makes batching win in experiment E4.

use crate::dense::DenseMatrix;
use crate::lu::LuFactors;
use crate::Result;
use rayon::prelude::*;

/// Factorizes every matrix in the batch. The `i`-th result corresponds to
/// the `i`-th input; an individual singular matrix yields an `Err` in its
/// slot without failing the rest of the batch.
pub fn lu_factorize_batch(mats: &[DenseMatrix]) -> Vec<Result<LuFactors>> {
    mats.par_iter().map(LuFactors::factorize).collect()
}

/// Solves `Aᵢ xᵢ = bᵢ` for every factored system in the batch.
pub fn lu_solve_batch(factors: &[LuFactors], rhs: &[Vec<f64>]) -> Vec<Result<Vec<f64>>> {
    factors
        .par_iter()
        .zip(rhs.par_iter())
        .map(|(f, b)| f.solve(b))
        .collect()
}

/// One-shot batched factor+solve: returns `xᵢ` with `Aᵢ xᵢ = bᵢ`.
///
/// This is the granularity at which Section 5.5's "dozens of branch-and-cut
/// nodes solved simultaneously" maps onto a single batched kernel launch.
pub fn lu_factor_solve_batch(mats: &[DenseMatrix], rhs: &[Vec<f64>]) -> Vec<Result<Vec<f64>>> {
    mats.par_iter()
        .zip(rhs.par_iter())
        .map(|(a, b)| LuFactors::factorize(a)?.solve(b))
        .collect()
}

/// Batched matrix–vector products `yᵢ = Aᵢ xᵢ`.
pub fn matvec_batch(mats: &[DenseMatrix], xs: &[Vec<f64>]) -> Vec<Result<Vec<f64>>> {
    mats.par_iter()
        .zip(xs.par_iter())
        .map(|(a, x)| a.matvec(x))
        .collect()
}

/// Total bytes of a batch of matrices (device memory accounting: Section 5.5
/// sizes the feasible batch as `device_mem / matrix_mem`).
pub fn batch_size_bytes(mats: &[DenseMatrix]) -> usize {
    mats.iter().map(DenseMatrix::size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn spd_like(seed: f64) -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0 + seed, 1.0, 0.5],
            vec![1.0, 5.0 + seed, 2.0],
            vec![0.5, 2.0, 6.0 + seed],
        ])
        .unwrap()
    }

    #[test]
    fn batch_factor_solve_matches_individual() {
        let mats: Vec<_> = (0..8).map(|i| spd_like(i as f64 * 0.25)).collect();
        let rhs: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![1.0 + i as f64, -1.0, 0.5 * i as f64])
            .collect();
        let batch = lu_factor_solve_batch(&mats, &rhs);
        for ((a, b), x) in mats.iter().zip(&rhs).zip(&batch) {
            let x = x.as_ref().unwrap();
            let individual = LuFactors::factorize(a).unwrap().solve(b).unwrap();
            assert!(max_abs_diff(x, &individual) < 1e-12);
        }
    }

    #[test]
    fn singular_slot_does_not_poison_batch() {
        let good = spd_like(0.0);
        let singular = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let results = lu_factorize_batch(&[good.clone(), singular, good]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn separate_factor_then_solve() {
        let mats: Vec<_> = (0..4).map(|i| spd_like(i as f64)).collect();
        let factors: Vec<LuFactors> = lu_factorize_batch(&mats)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let rhs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64, 1.0, 2.0]).collect();
        let xs = lu_solve_batch(&factors, &rhs);
        for ((a, b), x) in mats.iter().zip(&rhs).zip(&xs) {
            let ax = a.matvec(x.as_ref().unwrap()).unwrap();
            assert!(max_abs_diff(&ax, b) < 1e-10);
        }
    }

    #[test]
    fn batched_matvec() {
        let mats = vec![DenseMatrix::identity(2), spd_like(1.0)];
        let xs = vec![vec![3.0, 4.0], vec![1.0, 0.0, 0.0]];
        let ys = matvec_batch(&mats, &xs);
        assert_eq!(ys[0].as_ref().unwrap(), &vec![3.0, 4.0]);
        assert_eq!(ys[1].as_ref().unwrap(), &vec![5.0, 1.0, 0.5]);
    }

    #[test]
    fn size_accounting() {
        let mats = vec![DenseMatrix::zeros(2, 2), DenseMatrix::zeros(3, 3)];
        assert_eq!(batch_size_bytes(&mats), (4 + 9) * 8);
        assert_eq!(batch_size_bytes(&[]), 0);
    }
}
