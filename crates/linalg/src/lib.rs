//! # gmip-linalg
//!
//! Dense and sparse linear-algebra kernels for the `gmip` MIP solver stack.
//!
//! This crate is the software analogue of the GPU linear-algebra substrate the
//! paper surveys in Section 4 (cuBLAS/cuSOLVER/MAGMA-class dense routines,
//! cuSPARSE-class sparse routines, and the batched small-matrix operations of
//! Section 4.3). It provides:
//!
//! * [`dense`] — row-major dense matrices and vectors with BLAS-1/2/3
//!   style operations (`axpy`, `gemv`, `gemm`, ...);
//! * [`cholesky`] — Cholesky factorization for SPD systems (normal
//!   equations of interior-point methods);
//! * [`lu`] — LU factorization with partial pivoting and solves;
//! * [`triangular`] — forward/backward substitution primitives;
//! * [`qr`] — Householder QR for least-squares style uses;
//! * [`batch`] — batched factor/solve over many small independent matrices
//!   (the MAGMA-style batch mode that Section 5.5 builds on);
//! * [`sparse`] — COO/CSR/CSC storage, sparse-matrix/vector products,
//!   and format conversions;
//! * [`sparse_lu`] — left-looking (Gilbert–Peierls) sparse LU with partial
//!   pivoting, the KLU/GLU-class routine referenced in Section 4.2;
//! * [`eta`] — product-form-of-inverse eta files with FTRAN/BTRAN, the basis
//!   update representation from the revised simplex literature (Section 4.3's
//!   "modified product form of inverse");
//! * [`update`] — rank-1 update helpers (Sherman–Morrison) for the
//!   "iterative updates, incremental updates and reuse" the paper says GPU
//!   vendors' libraries lack;
//! * [`norms`] — residual and norm helpers used by tests and accuracy checks.
//!
//! Everything is pure, deterministic CPU code: the simulated accelerator in
//! `gmip-gpu` calls into these kernels for the *numerics* while charging
//! simulated device time from its cost model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cholesky;
pub mod dense;
pub mod eta;
pub mod eta_sparse;
pub mod lu;
pub mod norms;
pub mod qr;
pub mod scalar;
pub mod sparse;
pub mod sparse_lu;
pub mod triangular;
pub mod update;

pub use cholesky::CholeskyFactors;
pub use dense::{DenseMatrix, DenseVector};
pub use eta::{EtaFactor, EtaFile};
pub use eta_sparse::SparseEtaFile;
pub use lu::LuFactors;
pub use scalar::{Scalar, APPROX_TOL, PIVOT_TOL, ZERO_TOL};
pub use sparse::{CooMatrix, CscMatrix, CsrMatrix};
pub use sparse_lu::SparseLu;

/// Crate-wide error type for linear-algebra failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the two mismatched shapes.
        context: String,
    },
    /// The matrix is singular (or numerically singular) at the given column.
    Singular {
        /// Column (or pivot step) at which factorization broke down.
        column: usize,
    },
    /// Index out of bounds.
    OutOfBounds {
        /// Offending index.
        index: usize,
        /// Bound that was violated.
        bound: usize,
    },
    /// Input matrix was not in the required format (e.g. unsorted indices).
    InvalidFormat {
        /// What was wrong.
        context: String,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::Singular { column } => {
                write!(f, "singular matrix at pivot column {column}")
            }
            LinalgError::OutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds ({bound})")
            }
            LinalgError::InvalidFormat { context } => write!(f, "invalid format: {context}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
