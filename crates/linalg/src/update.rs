//! Rank-1 update helpers.
//!
//! Section 4.3 of the paper: after `Ax = b` has been solved once, the MIP
//! solver needs to re-solve *slightly updated* versions — rank-1 updates from
//! basis exchanges, appended cut rows, and per-child bound changes. Vendor
//! BLAS libraries don't offer "update the factorization" primitives, so the
//! solver layer uses the Sherman–Morrison identity against a frozen
//! factorization, or the eta file of [`crate::eta`].

use crate::lu::LuFactors;
use crate::{LinalgError, Result, PIVOT_TOL};

/// Solves `(A + u vᵀ) x = b` given a factorization of `A`, via the
/// Sherman–Morrison formula:
///
/// `x = A⁻¹b − (vᵀA⁻¹b / (1 + vᵀA⁻¹u)) · A⁻¹u`
///
/// Cost: two triangular solves against the existing factors instead of a
/// fresh O(n³) factorization — the "reuse" mode of Section 5.1.
pub fn sherman_morrison_solve(
    factors: &LuFactors,
    u: &[f64],
    v: &[f64],
    b: &[f64],
) -> Result<Vec<f64>> {
    let n = factors.dim();
    if u.len() != n || v.len() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: format!(
                "sherman_morrison: n={n}, u={}, v={}, b={}",
                u.len(),
                v.len(),
                b.len()
            ),
        });
    }
    let ainv_b = factors.solve(b)?;
    let ainv_u = factors.solve(u)?;
    let denom = 1.0 + dotp(v, &ainv_u);
    if denom.abs() < PIVOT_TOL {
        // The update makes the matrix singular.
        return Err(LinalgError::Singular { column: 0 });
    }
    let scale = dotp(v, &ainv_b) / denom;
    let mut x = ainv_b;
    for (xi, ui) in x.iter_mut().zip(ainv_u.iter()) {
        *xi -= scale * ui;
    }
    Ok(x)
}

/// Solves the system after *k* successive rank-1 updates
/// `(A + Σ uᵢvᵢᵀ) x = b` by recursive Sherman–Morrison (a small
/// Sherman–Morrison–Woodbury specialization that avoids forming the k×k
/// capacitance matrix; adequate for the handful of bound-change updates a
/// child tree node applies, Section 5.3).
pub fn sequential_rank1_solve(
    factors: &LuFactors,
    updates: &[(Vec<f64>, Vec<f64>)],
    b: &[f64],
) -> Result<Vec<f64>> {
    // Build solution iteratively: maintain solve(·) against A_k. We implement
    // it by materializing the action of A_k⁻¹ on the needed vectors only.
    // For small k this is k+1 base solves plus O(k²n) vector work.
    let n = factors.dim();
    for (u, v) in updates {
        if u.len() != n || v.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "sequential_rank1: update vector length".into(),
            });
        }
    }
    // ainv_u[i] starts as A⁻¹ uᵢ, then gets corrected through previous updates.
    let mut corrected_u: Vec<Vec<f64>> = Vec::with_capacity(updates.len());
    let mut x = factors.solve(b)?;
    for (i, (u, v)) in updates.iter().enumerate() {
        let mut au = factors.solve(u)?;
        // Correct au through updates 0..i.
        for j in 0..i {
            let (_, vj) = &updates[j];
            let denom = 1.0 + dotp(vj, &corrected_u[j]);
            let scale = dotp(vj, &au) / denom;
            for (a, c) in au.iter_mut().zip(corrected_u[j].iter()) {
                *a -= scale * c;
            }
        }
        let denom = 1.0 + dotp(v, &au);
        if denom.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { column: i });
        }
        let scale = dotp(v, &x) / denom;
        for (xi, ai) in x.iter_mut().zip(au.iter()) {
            *xi -= scale * ai;
        }
        corrected_u.push(au);
    }
    Ok(x)
}

#[inline]
fn dotp(a: &[f64], b: &[f64]) -> f64 {
    crate::dense::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::DenseMatrix;

    fn base() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 5.0, 2.0],
            vec![0.0, 2.0, 6.0],
        ])
        .unwrap()
    }

    /// Forms A + u vᵀ explicitly.
    fn updated(a: &DenseMatrix, u: &[f64], v: &[f64]) -> DenseMatrix {
        let n = a.rows();
        let mut m = a.clone();
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, m.get(i, j) + u[i] * v[j]);
            }
        }
        m
    }

    #[test]
    fn sherman_morrison_matches_direct_solve() {
        let a = base();
        let f = LuFactors::factorize(&a).unwrap();
        let u = vec![1.0, 0.0, 2.0];
        let v = vec![0.5, 1.0, 0.0];
        let b = vec![1.0, 2.0, 3.0];
        let x = sherman_morrison_solve(&f, &u, &v, &b).unwrap();
        let direct = LuFactors::factorize(&updated(&a, &u, &v))
            .unwrap()
            .solve(&b)
            .unwrap();
        assert!(max_abs_diff(&x, &direct) < 1e-9);
    }

    #[test]
    fn singular_update_detected() {
        // A = I, u = -e1, v = e1 → A + uvᵀ has a zero row ⇒ singular.
        let a = DenseMatrix::identity(2);
        let f = LuFactors::factorize(&a).unwrap();
        assert!(matches!(
            sherman_morrison_solve(&f, &[-1.0, 0.0], &[1.0, 0.0], &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let f = LuFactors::factorize(&base()).unwrap();
        assert!(sherman_morrison_solve(&f, &[1.0], &[1.0, 0.0, 0.0], &[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn sequential_rank1_matches_direct() {
        let a = base();
        let f = LuFactors::factorize(&a).unwrap();
        let updates = vec![
            (vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]),
            (vec![0.0, 2.0, 1.0], vec![1.0, 0.0, 0.5]),
            (vec![0.5, 0.5, 0.5], vec![0.0, 0.0, 1.0]),
        ];
        let b = vec![3.0, -1.0, 2.0];
        let x = sequential_rank1_solve(&f, &updates, &b).unwrap();
        let mut m = a.clone();
        for (u, v) in &updates {
            m = updated(&m, u, v);
        }
        let direct = LuFactors::factorize(&m).unwrap().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &direct) < 1e-8);
    }

    #[test]
    fn sequential_with_no_updates_is_plain_solve() {
        let a = base();
        let f = LuFactors::factorize(&a).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        let x = sequential_rank1_solve(&f, &[], &b).unwrap();
        assert!(max_abs_diff(&x, &f.solve(&b).unwrap()) < 1e-12);
    }
}
