//! Householder QR factorization.
//!
//! `A = Q R` with `Q` orthogonal and `R` upper triangular. Listed in
//! Section 4 among the factorization classes ("Cholesky, LU, and QR
//! decomposition") a MIP-oriented linear-algebra substrate must offer; in the
//! solver stack it backs least-squares subproblems (e.g. steepest-edge
//! reference weights) and serves as an accuracy cross-check for LU solves.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result, PIVOT_TOL};

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// Stores `R` in the upper triangle and the Householder vectors in compact
/// form below the diagonal (LAPACK `geqrf` layout, with separate `tau`).
#[derive(Debug, Clone)]
pub struct QrFactors {
    qr: DenseMatrix,
    tau: Vec<f64>,
}

impl QrFactors {
    /// Factorizes `a` (`m × n`, `m ≥ n`).
    pub fn factorize(a: &DenseMatrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("QR requires m >= n, got {m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm < PIVOT_TOL {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, normalized so v[k] = 1.
            let v_k = qr.get(k, k) - alpha;
            for i in k + 1..m {
                let scaled = qr.get(i, k) / v_k;
                qr.set(i, k, scaled);
            }
            tau[k] = -v_k / alpha;
            qr.set(k, k, alpha);

            // Apply the reflector to the trailing columns: A ← (I − tau v vᵀ) A.
            for j in k + 1..n {
                // w = vᵀ a_j  (v[k] = 1 implicitly)
                let mut w = qr.get(k, j);
                for i in k + 1..m {
                    w += qr.get(i, k) * qr.get(i, j);
                }
                w *= tau[k];
                let new_kj = qr.get(k, j) - w;
                qr.set(k, j, new_kj);
                for i in k + 1..m {
                    let new = qr.get(i, j) - qr.get(i, k) * w;
                    qr.set(i, j, new);
                }
            }
        }
        Ok(Self { qr, tau })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector in place.
    pub fn apply_q_transpose(&self, b: &mut [f64]) -> Result<()> {
        let m = self.rows();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                context: format!("apply_q_transpose: {} vs {}", b.len(), m),
            });
        }
        for k in 0..self.cols() {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in k + 1..m {
                w += self.qr.get(i, k) * b[i];
            }
            w *= self.tau[k];
            b[k] -= w;
            for i in k + 1..m {
                b[i] -= self.qr.get(i, k) * w;
            }
        }
        Ok(())
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`, returning `x`
    /// (length `n`). For square nonsingular `A` this is the exact solve.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.cols();
        let mut y = b.to_vec();
        self.apply_q_transpose(&mut y)?;
        // Back substitution on the R factor (top n rows of qr).
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.qr.get(i, j) * x[j];
            }
            let diag = self.qr.get(i, i);
            if diag.abs() < PIVOT_TOL {
                return Err(LinalgError::Singular { column: i });
            }
            x[i] = acc / diag;
        }
        Ok(x)
    }

    /// The `R` factor as an explicit `n × n` upper-triangular matrix.
    pub fn r(&self) -> DenseMatrix {
        let n = self.cols();
        let mut r = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r.set(i, j, self.qr.get(i, j));
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_matches_direct() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap();
        let f = QrFactors::factorize(&a).unwrap();
        let b = vec![5.0, -2.0, 9.0];
        let x = f.solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn overdetermined_least_squares() {
        // Fit y = c0 + c1 t through points (0,1), (1,3), (2,5): exact line 1 + 2t.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let f = QrFactors::factorize(&a).unwrap();
        let x = f.solve_least_squares(&[1.0, 3.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn inconsistent_least_squares_minimizes() {
        // Points (0,0), (1,1), (2,1): LS line via normal equations is
        // c = (1/6, 1/2).
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let f = QrFactors::factorize(&a).unwrap();
        let x = f.solve_least_squares(&[0.0, 1.0, 1.0]).unwrap();
        assert!((x[0] - 1.0 / 6.0).abs() < 1e-10);
        assert!((x[1] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular_with_correct_norms() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 1.0], vec![4.0, 2.0]]).unwrap();
        let f = QrFactors::factorize(&a).unwrap();
        let r = f.r();
        // |r00| = column norm of first column = 5.
        assert!((r.get(0, 0).abs() - 5.0).abs() < 1e-10);
        assert_eq!(r.get(1, 0), 0.0);
        // QR preserves Frobenius norm: ‖R‖F = ‖A‖F.
        assert!((r.norm_frobenius() - a.norm_frobenius()).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(QrFactors::factorize(&a).is_err());
    }

    #[test]
    fn rank_deficient_detected_at_solve() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let f = QrFactors::factorize(&a).unwrap();
        assert!(f.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }
}
