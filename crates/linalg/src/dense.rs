//! Dense matrices and vectors with BLAS-style operations.
//!
//! [`DenseMatrix`] is stored row-major in a single contiguous `Vec<f64>`,
//! which matches the access pattern of the blocked kernels in [`crate::lu`]
//! and keeps host↔device transfers in `gmip-gpu` a single contiguous copy.

use crate::{LinalgError, Result};

/// A dense column vector of `f64` entries.
///
/// Thin wrapper over `Vec<f64>` adding the BLAS-1 operations the simplex and
/// factorization kernels need, with checked dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector {
    data: Vec<f64>,
}

impl DenseVector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector from existing data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &DenseVector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("dot: {} vs {}", self.len(), other.len()),
            });
        }
        Ok(dot(&self.data, &other.data))
    }

    /// `self ← self + alpha * other` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f64, other: &DenseVector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("axpy: {} vs {}", self.len(), other.len()),
            });
        }
        axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (largest absolute entry); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }
}

impl std::ops::Index<usize> for DenseVector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for DenseVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

/// Raw slice dot product; the hot inner loop of pricing and FTRAN/BTRAN.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Manual 4-way unroll: keeps independent accumulator chains so the
    // compiler can vectorize without needing -ffast-math style reassociation.
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// `y ← y + alpha * x` on raw slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// A dense row-major matrix of `f64` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data. `data.len()` must equal
    /// `rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "from_row_major: {} entries for {}x{} matrix",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows (each row a `Vec<f64>` of equal
    /// length). Convenient in tests.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::InvalidFormat {
                    context: "ragged rows".into(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry accessor (checked in debug builds only; hot path).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of bytes occupied by the value data (used by the device memory
    /// accounting in `gmip-gpu`).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Swap rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(a < self.rows && b < self.rows);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Matrix transpose (allocates).
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix–vector product `y = A x` (BLAS `gemv` with alpha=1, beta=0).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "matvec: A is {}x{}, x has {}",
                    self.rows,
                    self.cols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            y[i] = dot(self.row(i), x);
        }
        Ok(y)
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "matvec_transposed: A is {}x{}, x has {}",
                    self.rows,
                    self.cols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            axpy(x[i], self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Matrix–matrix product `C = A B` (BLAS `gemm` with alpha=1, beta=0).
    ///
    /// Uses the i-k-j loop order so the inner loop streams both `B`'s row and
    /// `C`'s row contiguously.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, b.rows, b.cols
                ),
            });
        }
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                let crow = &mut c.data[i * b.cols..(i + 1) * b.cols];
                axpy(aik, brow, crow);
            }
        }
        Ok(c)
    }

    /// Appends a row to the bottom of the matrix (used when cuts are added to
    /// the constraint matrix, Section 5.2).
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows > 0 && row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("push_row: row of {} onto {} cols", row.len(), self.cols),
            });
        }
        if self.rows == 0 {
            self.cols = row.len();
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Appends a column on the right of the matrix (used when a cut's slack
    /// variable extends the equality-form system).
    pub fn push_col(&mut self, col: &[f64]) -> Result<()> {
        if self.rows > 0 && col.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!("push_col: column of {} onto {} rows", col.len(), self.rows),
            });
        }
        if self.rows == 0 {
            self.rows = col.len();
            self.cols = 1;
            self.data = col.to_vec();
            return Ok(());
        }
        let new_cols = self.cols + 1;
        let mut data = Vec::with_capacity(self.rows * new_cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.push(col[i]);
        }
        self.data = data;
        self.cols = new_cols;
        Ok(())
    }

    /// Fraction of entries whose magnitude exceeds [`crate::ZERO_TOL`];
    /// drives the dense/sparse runtime dispatch of Section 5.4.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self
            .data
            .iter()
            .filter(|x| x.abs() > crate::ZERO_TOL)
            .count();
        nnz as f64 / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |acc: f64, x| acc.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let mut v = DenseVector::zeros(3);
        assert_eq!(v.len(), 3);
        v[1] = 2.0;
        assert_eq!(v.as_slice(), &[0.0, 2.0, 0.0]);
        v.scale(2.0);
        assert_eq!(v[1], 4.0);
    }

    #[test]
    fn vector_dot_and_axpy() {
        let a = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = DenseVector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn vector_dim_mismatch() {
        let a = DenseVector::zeros(2);
        let b = DenseVector::zeros(3);
        assert!(a.dot(&b).is_err());
        let mut a = a;
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        // Length 11 exercises both the unrolled body and the remainder loop.
        let a: Vec<f64> = (0..11).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..11).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn matrix_identity_and_get_set() {
        let mut m = DenseMatrix::identity(3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert!(m.is_square());
    }

    #[test]
    fn matrix_from_rows_and_ragged() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
        let z = m.matvec_transposed(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(z, vec![9.0, 12.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_against_identity_and_hand_case() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn swap_rows_works_both_orders() {
        let mut a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        a.swap_rows(0, 1);
        assert_eq!(a.row(0), &[3.0, 4.0]);
        a.swap_rows(1, 0);
        assert_eq!(a.row(0), &[1.0, 2.0]);
        a.swap_rows(1, 1); // no-op
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = DenseMatrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn push_col_grows_matrix() {
        let mut m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        m.push_col(&[9.0, 8.0]).unwrap();
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 8.0]);
        assert!(m.push_col(&[1.0]).is_err());
        // From empty.
        let mut e = DenseMatrix::zeros(0, 0);
        e.push_col(&[5.0, 6.0]).unwrap();
        assert_eq!((e.rows(), e.cols()), (2, 1));
    }

    #[test]
    fn density_counts_structural_nonzeros() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.density(), 0.0);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1e-15); // below ZERO_TOL: not counted
        assert!((m.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!((m.norm_frobenius() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
        let v = DenseVector::from_vec(vec![3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
        assert_eq!(v.norm_inf(), 4.0);
    }
}
