//! Product-form-of-inverse over a **sparse** base factorization.
//!
//! The sparse twin of [`crate::eta::EtaFile`]: the initial basis is
//! factorized with the left-looking sparse LU of [`crate::sparse_lu`]
//! (the KLU/GLU-class routine of Section 4.2), and subsequent basis
//! exchanges append dense eta columns exactly as in the dense file. This is
//! the representation a sparse-path MIP solver (Section 5.4) keeps on the
//! device.

use crate::eta::EtaFactor;
use crate::sparse::CscMatrix;
use crate::sparse_lu::SparseLu;
use crate::{LinalgError, Result, PIVOT_TOL};

/// A factored sparse basis: sparse LU of the initial basis plus a file of
/// dense eta updates.
#[derive(Debug, Clone)]
pub struct SparseEtaFile {
    base: SparseLu,
    etas: Vec<EtaFactor>,
}

impl SparseEtaFile {
    /// Factorizes the initial basis matrix (square CSC).
    pub fn factorize(b0: &CscMatrix) -> Result<Self> {
        Ok(Self {
            base: SparseLu::factorize(b0)?,
            etas: Vec::new(),
        })
    }

    /// Basis dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Number of accumulated eta factors.
    #[inline]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Stored nonzeros of the base factorization (cost-model input).
    #[inline]
    pub fn fill_nnz(&self) -> usize {
        self.base.fill_nnz()
    }

    /// FTRAN: solves `B x = b`.
    pub fn ftran(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = self.base.solve(b)?;
        for e in &self.etas {
            e.apply_inverse(&mut x);
        }
        Ok(x)
    }

    /// BTRAN: solves `Bᵀ y = c`.
    pub fn btran(&self, c: &[f64]) -> Result<Vec<f64>> {
        let mut y = c.to_vec();
        for e in self.etas.iter().rev() {
            e.apply_inverse_transposed(&mut y);
        }
        self.base.solve_transposed(&y)
    }

    /// Records a basis exchange (same contract as
    /// [`crate::eta::EtaFile::update`]).
    pub fn update(&mut self, leaving_pos: usize, alpha: Vec<f64>) -> Result<()> {
        if alpha.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "sparse eta update: basis {}, alpha {}",
                    self.dim(),
                    alpha.len()
                ),
            });
        }
        if leaving_pos >= self.dim() {
            return Err(LinalgError::OutOfBounds {
                index: leaving_pos,
                bound: self.dim(),
            });
        }
        if alpha[leaving_pos].abs() < PIVOT_TOL {
            return Err(LinalgError::Singular {
                column: leaving_pos,
            });
        }
        self.etas.push(EtaFactor {
            col: leaving_pos,
            eta: alpha,
        });
        Ok(())
    }

    /// Fresh sparse factorization of `b`; clears the eta file.
    pub fn refactorize(&mut self, b: &CscMatrix) -> Result<()> {
        self.base = SparseLu::factorize(b)?;
        self.etas.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::{DenseMatrix, EtaFile};

    fn sparse_basis() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 0.0, -1.0, 0.0],
            vec![0.0, 5.0, 0.0, -2.0],
            vec![-1.0, 0.0, 6.0, 0.0],
            vec![0.0, -2.0, 0.0, 7.0],
        ])
        .unwrap()
    }

    #[test]
    fn matches_dense_eta_file_through_updates() {
        let dense_b0 = sparse_basis();
        let csc = CscMatrix::from_dense(&dense_b0);
        let mut sparse = SparseEtaFile::factorize(&csc).unwrap();
        let mut dense = EtaFile::factorize(&dense_b0).unwrap();
        assert_eq!(sparse.dim(), 4);
        assert_eq!(sparse.eta_count(), 0);
        assert!(sparse.fill_nnz() >= 4);

        let new_cols = [
            (1usize, vec![0.5, 2.0, 0.0, 1.0]),
            (3usize, vec![1.0, 0.0, 3.0, 0.5]),
        ];
        for (pos, col) in new_cols {
            let alpha_s = sparse.ftran(&col).unwrap();
            let alpha_d = dense.ftran(&col).unwrap();
            assert!(max_abs_diff(&alpha_s, &alpha_d) < 1e-9);
            sparse.update(pos, alpha_s).unwrap();
            dense.update(pos, alpha_d).unwrap();
            let rhs = vec![1.0, -1.0, 2.0, 0.5];
            let xs = sparse.ftran(&rhs).unwrap();
            let xd = dense.ftran(&rhs).unwrap();
            assert!(max_abs_diff(&xs, &xd) < 1e-9, "ftran diverged");
            let ys = sparse.btran(&rhs).unwrap();
            let yd = dense.btran(&rhs).unwrap();
            assert!(max_abs_diff(&ys, &yd) < 1e-9, "btran diverged");
        }
        assert_eq!(sparse.eta_count(), 2);
    }

    #[test]
    fn refactorize_clears() {
        let csc = CscMatrix::from_dense(&sparse_basis());
        let mut f = SparseEtaFile::factorize(&csc).unwrap();
        let alpha = f.ftran(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        f.update(0, alpha).unwrap();
        assert_eq!(f.eta_count(), 1);
        f.refactorize(&csc).unwrap();
        assert_eq!(f.eta_count(), 0);
    }

    #[test]
    fn update_validation() {
        let csc = CscMatrix::from_dense(&sparse_basis());
        let mut f = SparseEtaFile::factorize(&csc).unwrap();
        assert!(matches!(
            f.update(0, vec![0.0, 1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
        assert!(f.update(0, vec![1.0]).is_err());
        assert!(f.update(9, vec![1.0; 4]).is_err());
    }
}
