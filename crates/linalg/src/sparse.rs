//! Sparse matrix storage: COO (builder), CSR (row-oriented products), and
//! CSC (column-oriented factorization).
//!
//! These mirror the formats supported by cuSPARSE/rocSPARSE (Section 4.2).
//! The MIP constraint matrices the paper targets are sparse in MIPLIB-style
//! instances, so the solver's sparse code path (Section 5.4) runs on these
//! structures, while the dense path converts to [`crate::DenseMatrix`].

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result, ZERO_TOL};

/// Coordinate-format builder for sparse matrices.
///
/// Accumulates `(row, col, value)` triplets in any order (duplicates are
/// summed on conversion), then converts to [`CsrMatrix`] or [`CscMatrix`].
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates are summed at conversion time.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows {
            return Err(LinalgError::OutOfBounds {
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(LinalgError::OutOfBounds {
                index: col,
                bound: self.cols,
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Number of accumulated triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, merging duplicates and dropping entries that cancel
    /// to below [`ZERO_TOL`].
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        let mut it = entries.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            if v.abs() > ZERO_TOL {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(v);
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to CSC via CSR transposition.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csr().to_csc()
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the structure.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(LinalgError::InvalidFormat {
                context: format!("row_ptr length {} != rows+1 {}", row_ptr.len(), rows + 1),
            });
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::InvalidFormat {
                context: "col_idx/values length mismatch".into(),
            });
        }
        if *row_ptr.last().unwrap_or(&0) != col_idx.len() {
            return Err(LinalgError::InvalidFormat {
                context: "row_ptr end != nnz".into(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(LinalgError::InvalidFormat {
                    context: "row_ptr not monotone".into(),
                });
            }
        }
        for r in 0..rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinalgError::InvalidFormat {
                        context: format!("row {r} column indices not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = seg.last() {
                if last >= cols {
                    return Err(LinalgError::OutOfBounds {
                        index: last,
                        bound: cols,
                    });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `nnz / (rows*cols)`; the quantity the Section 5.4 dispatch inspects.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(i, j)` (binary search within the row; 0.0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// In-place sparse matrix–vector product `y = A x` (no allocation).
    ///
    /// This is the single row-SpMV kernel every consumer routes through —
    /// the sparse simplex engine, the first-order PDHG engine, and the
    /// kernel-level benches — so the arithmetic (and therefore bit-exact
    /// determinism) is defined in exactly one place.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "spmv: A {}x{}, x {}, y {}",
                    self.rows,
                    self.cols,
                    x.len(),
                    y.len()
                ),
            });
        }
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (j, v) in self.row_iter(i) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        Ok(())
    }

    /// Transposed product `y = Aᵀ x`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transposed_into(x, &mut y)?;
        Ok(y)
    }

    /// In-place transposed product `y = Aᵀ x` (no allocation).
    ///
    /// Row-major scatter: deterministic accumulation order regardless of
    /// how many lanes share the matrix.
    pub fn matvec_transposed_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "spmv_t: A {}x{}, x {}, y {}",
                    self.rows,
                    self.cols,
                    x.len(),
                    y.len()
                ),
            });
        }
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row_iter(i) {
                y[j] += v * xi;
            }
        }
        Ok(())
    }

    /// Frobenius norm `‖A‖_F = sqrt(Σ aᵢⱼ²)` — an upper bound on the
    /// spectral norm `‖A‖₂`, which makes `1/‖A‖_F` a guaranteed-safe (and
    /// deterministically computable) primal-dual step-size scale.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Converts to CSC (a transpose-style counting pass).
    pub fn to_csc(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            col_ptr[c + 1] += 1;
        }
        for j in 0..self.cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = self.nnz();
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut next = col_ptr.clone();
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                let slot = next[j];
                row_idx[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Expands to a dense matrix (for the dense code path and for tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Builds a CSR matrix from a dense one, dropping entries below
    /// [`ZERO_TOL`].
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for (j, &v) in d.row(i).iter().enumerate() {
                if v.abs() > ZERO_TOL {
                    coo.push(i, j, v).expect("in-bounds by construction");
                }
            }
        }
        coo.to_csr()
    }

    /// Appends a sparse row (used when cuts are added; Section 5.2). The row
    /// is given as sorted `(col, value)` pairs.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) -> Result<()> {
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(LinalgError::InvalidFormat {
                    context: "push_row entries not sorted by column".into(),
                });
            }
        }
        for &(c, _) in entries {
            if c >= self.cols {
                return Err(LinalgError::OutOfBounds {
                    index: c,
                    bound: self.cols,
                });
            }
        }
        for &(c, v) in entries {
            if v.abs() > ZERO_TOL {
                self.col_idx.push(c);
                self.values.push(v);
            }
        }
        self.rows += 1;
        self.row_ptr.push(self.col_idx.len());
        Ok(())
    }

    /// Appends a row **and grows the column count** to `new_cols` — the
    /// cut-incorporation shape where the cut row arrives together with its
    /// fresh slack column (whose single entry sits in the new row).
    pub fn push_row_grow(&mut self, entries: &[(usize, f64)], new_cols: usize) -> Result<()> {
        if new_cols < self.cols {
            return Err(LinalgError::InvalidFormat {
                context: format!("push_row_grow: shrinking cols {} -> {new_cols}", self.cols),
            });
        }
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(LinalgError::InvalidFormat {
                    context: "push_row_grow entries not sorted by column".into(),
                });
            }
        }
        if let Some(&(c, _)) = entries.last() {
            if c >= new_cols {
                return Err(LinalgError::OutOfBounds {
                    index: c,
                    bound: new_cols,
                });
            }
        }
        self.cols = new_cols;
        for &(c, v) in entries {
            if v.abs() > ZERO_TOL {
                self.col_idx.push(c);
                self.values.push(v);
            }
        }
        self.rows += 1;
        self.row_ptr.push(self.col_idx.len());
        Ok(())
    }

    /// Bytes of value+index payload (for device-memory accounting).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }
}

/// Compressed sparse column matrix (the natural format for left-looking
/// sparse LU, [`crate::sparse_lu`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(row, value)` pairs of column `j`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Copies column `j` into a dense scratch vector of length `rows`.
    pub fn scatter_col(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for x in out.iter_mut() {
            *x = 0.0;
        }
        for (i, v) in self.col_iter(j) {
            out[i] = v;
        }
    }

    /// Sparse matrix–vector product `y = A x` (column-oriented accumulate).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("csc spmv: A {}x{}, x {}", self.rows, self.cols, x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, v) in self.col_iter(j) {
                y[i] += v * xj;
            }
        }
        Ok(y)
    }

    /// Gathers a subset of columns into a new CSC matrix (the device-side
    /// basis-assembly operation of the sparse code path; column `k` of the
    /// result is column `cols[k]` of `self`).
    pub fn select_columns(&self, cols: &[usize]) -> Result<CscMatrix> {
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for &c in cols {
            if c >= self.cols {
                return Err(LinalgError::OutOfBounds {
                    index: c,
                    bound: self.cols,
                });
            }
            for (i, v) in self.col_iter(c) {
                row_idx.push(i);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(CscMatrix {
            rows: self.rows,
            cols: cols.len(),
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut next = row_ptr.clone();
        for j in 0..self.cols {
            for (i, v) in self.col_iter(j) {
                let slot = next[i];
                col_idx[slot] = j;
                values[slot] = v;
                next[i] += 1;
            }
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Expands to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for (i, v) in self.col_iter(j) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Builds from dense, dropping sub-tolerance entries.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        CsrMatrix::from_dense(d).to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        coo
    }

    #[test]
    fn coo_bounds_checked() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
        assert_eq!(coo.len(), 1);
    }

    #[test]
    fn coo_duplicates_summed_and_cancellation_dropped() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 1, 5.0).unwrap();
        coo.push(0, 1, -5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn csr_get_and_density() {
        let csr = sample_coo().to_csr();
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.get(0, 2), 2.0);
        assert_eq!(csr.get(1, 0), 0.0);
        assert!((csr.density() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn csr_matvec_and_transpose_product() {
        let csr = sample_coo().to_csr();
        let y = csr.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
        let z = csr.matvec_transposed(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(z, vec![5.0, 3.0, 7.0]);
        assert!(csr.matvec(&[1.0]).is_err());
        assert!(csr.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn csr_matvec_into_matches_allocating_and_checks_shapes() {
        let csr = sample_coo().to_csr();
        let x = [2.0, -1.0, 0.5];
        let mut y = vec![7.0; 3];
        csr.matvec_into(&x, &mut y).unwrap();
        assert_eq!(y, csr.matvec(&x).unwrap());
        let mut z = vec![7.0; 3];
        csr.matvec_transposed_into(&x, &mut z).unwrap();
        assert_eq!(z, csr.matvec_transposed(&x).unwrap());
        // Output-shape mismatches are rejected, not silently truncated.
        let mut short = vec![0.0; 2];
        assert!(csr.matvec_into(&x, &mut short).is_err());
        assert!(csr.matvec_transposed_into(&x, &mut short).is_err());
    }

    #[test]
    fn frobenius_norm_dominates_spectral_action() {
        let csr = sample_coo().to_csr();
        let f = csr.frobenius_norm();
        assert!((f - (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt()).abs() < 1e-12);
        // ‖Ax‖ ≤ ‖A‖_F ‖x‖ on a few deterministic probes.
        for x in [[1.0, 0.0, 0.0], [1.0, -1.0, 2.0], [0.3, 0.3, 0.3]] {
            let y = csr.matvec(&x).unwrap();
            let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(ny <= f * nx + 1e-12);
        }
    }

    #[test]
    fn csr_csc_roundtrip() {
        let csr = sample_coo().to_csr();
        let csc = csr.to_csc();
        assert_eq!(csc.nnz(), csr.nnz());
        let back = csc.to_csr();
        assert_eq!(back, csr);
    }

    #[test]
    fn csc_matvec_matches_csr() {
        let csr = sample_coo().to_csr();
        let csc = csr.to_csc();
        let x = [2.0, -1.0, 0.5];
        assert_eq!(csr.matvec(&x).unwrap(), csc.matvec(&x).unwrap());
    }

    #[test]
    fn dense_roundtrip() {
        let csr = sample_coo().to_csr();
        let dense = csr.to_dense();
        assert_eq!(dense.get(2, 2), 5.0);
        let back = CsrMatrix::from_dense(&dense);
        assert_eq!(back, csr);
        let csc = CscMatrix::from_dense(&dense);
        assert_eq!(csc.to_dense(), dense);
    }

    #[test]
    fn from_parts_validation() {
        // Bad row_ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-monotone row_ptr.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Unsorted columns within a row.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Valid.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn push_row_appends_cut() {
        let mut csr = sample_coo().to_csr();
        csr.push_row(&[(0, 1.0), (1, 1.0)]).unwrap();
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.get(3, 0), 1.0);
        assert_eq!(csr.get(3, 2), 0.0);
        // Unsorted rejected.
        assert!(csr.push_row(&[(1, 1.0), (0, 1.0)]).is_err());
        // Out of bounds rejected.
        assert!(csr.push_row(&[(9, 1.0)]).is_err());
    }

    #[test]
    fn select_columns_gathers_basis() {
        let csc = sample_coo().to_csc();
        // Pick columns 2 and 0 (in that order).
        let b = csc.select_columns(&[2, 0]).unwrap();
        assert_eq!(b.cols(), 2);
        assert_eq!(b.rows(), 3);
        let d = b.to_dense();
        assert_eq!(d.col(0), vec![2.0, 0.0, 5.0]); // col 2 of A
        assert_eq!(d.col(1), vec![1.0, 0.0, 4.0]); // col 0 of A
                                                   // Repetition is allowed (a degenerate basis attempt — caller's
                                                   // factorization will reject it).
        let rep = csc.select_columns(&[1, 1]).unwrap();
        assert_eq!(rep.nnz(), 2);
        assert!(csc.select_columns(&[9]).is_err());
    }

    #[test]
    fn push_row_grow_extends_both_dims() {
        let mut csr = sample_coo().to_csr();
        // Cut row over structural cols 0,1 plus its new slack at column 3.
        csr.push_row_grow(&[(0, 1.0), (1, 2.0), (3, 1.0)], 4)
            .unwrap();
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.get(3, 3), 1.0);
        assert_eq!(csr.get(0, 3), 0.0);
        // Shrinking or unsorted input rejected.
        assert!(csr.push_row_grow(&[(0, 1.0)], 2).is_err());
        assert!(csr.push_row_grow(&[(2, 1.0), (1, 1.0)], 5).is_err());
        assert!(csr.push_row_grow(&[(9, 1.0)], 5).is_err());
    }

    #[test]
    fn scatter_col() {
        let csc = sample_coo().to_csc();
        let mut buf = vec![9.0; 3];
        csc.scatter_col(0, &mut buf);
        assert_eq!(buf, vec![1.0, 0.0, 4.0]);
    }

    #[test]
    fn zeros_matrix() {
        let z = CsrMatrix::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0; 4]).unwrap(), vec![0.0; 3]);
        assert_eq!(z.density(), 0.0);
    }
}
