//! Forward and backward substitution on dense triangular systems.
//!
//! These are the building blocks of every LU-based solve in the crate and of
//! the FTRAN/BTRAN operations in the revised simplex method ([`crate::eta`]).

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result, PIVOT_TOL};

/// Solves `L y = b` in place, where `L` is the *unit* lower-triangular factor
/// stored in the strictly-lower part of `lu` (diagonal implicitly 1).
///
/// This is the layout produced by [`crate::lu::LuFactors`], which packs both
/// factors into one matrix.
pub fn forward_subst_unit(lu: &DenseMatrix, b: &mut [f64]) -> Result<()> {
    let n = lu.rows();
    check_square_and_len(lu, b.len())?;
    for i in 0..n {
        let row = lu.row(i);
        let mut acc = b[i];
        for (j, lij) in row[..i].iter().enumerate() {
            acc -= lij * b[j];
        }
        b[i] = acc;
    }
    Ok(())
}

/// Solves `U x = y` in place, where `U` is the upper-triangular part of `lu`
/// (including the diagonal).
pub fn backward_subst(lu: &DenseMatrix, y: &mut [f64]) -> Result<()> {
    let n = lu.rows();
    check_square_and_len(lu, y.len())?;
    for i in (0..n).rev() {
        let row = lu.row(i);
        let mut acc = y[i];
        for (j, uij) in row[i + 1..].iter().enumerate() {
            acc -= uij * y[i + 1 + j];
        }
        let diag = row[i];
        if diag.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { column: i });
        }
        y[i] = acc / diag;
    }
    Ok(())
}

/// Solves `Lᵀ x = b` in place for the unit lower factor packed in `lu`.
pub fn forward_subst_unit_transposed(lu: &DenseMatrix, b: &mut [f64]) -> Result<()> {
    let n = lu.rows();
    check_square_and_len(lu, b.len())?;
    // Lᵀ is unit upper triangular: iterate rows bottom-up.
    for i in (0..n).rev() {
        let xi = b[i];
        // Subtract contribution of x_i from earlier equations: (Lᵀ)_{j,i} = L_{i,j}.
        let row = lu.row(i);
        for (j, lij) in row[..i].iter().enumerate() {
            b[j] -= lij * xi;
        }
    }
    Ok(())
}

/// Solves `Uᵀ y = c` in place for the upper factor packed in `lu`.
pub fn backward_subst_transposed(lu: &DenseMatrix, c: &mut [f64]) -> Result<()> {
    let n = lu.rows();
    check_square_and_len(lu, c.len())?;
    // Uᵀ is lower triangular: iterate rows top-down.
    for i in 0..n {
        let diag = lu.get(i, i);
        if diag.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { column: i });
        }
        let yi = c[i] / diag;
        c[i] = yi;
        let row = lu.row(i);
        for (j, uij) in row[i + 1..].iter().enumerate() {
            c[i + 1 + j] -= uij * yi;
        }
    }
    Ok(())
}

fn check_square_and_len(m: &DenseMatrix, len: usize) -> Result<()> {
    if !m.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: format!("triangular solve on {}x{} matrix", m.rows(), m.cols()),
        });
    }
    if m.rows() != len {
        return Err(LinalgError::DimensionMismatch {
            context: format!(
                "triangular solve: matrix {}x{}, rhs {}",
                m.rows(),
                m.cols(),
                len
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    /// Packed LU for L = [[1,0],[0.5,1]], U = [[2,1],[0,3]].
    fn packed() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![0.5, 3.0]]).unwrap()
    }

    #[test]
    fn forward_unit() {
        let lu = packed();
        let mut b = vec![2.0, 4.0];
        forward_subst_unit(&lu, &mut b).unwrap();
        // y0 = 2; y1 = 4 - 0.5*2 = 3
        assert_eq!(b, vec![2.0, 3.0]);
    }

    #[test]
    fn backward() {
        let lu = packed();
        let mut y = vec![2.0, 3.0];
        backward_subst(&lu, &mut y).unwrap();
        // x1 = 3/3 = 1; x0 = (2 - 1*1)/2 = 0.5
        assert_eq!(y, vec![0.5, 1.0]);
    }

    #[test]
    fn transposed_solves_match_explicit_transpose() {
        let lu = packed();
        // Solve LT x = b where L = [[1,0],[0.5,1]] so LT = [[1,0.5],[0,1]].
        let mut b = vec![2.0, 4.0];
        forward_subst_unit_transposed(&lu, &mut b).unwrap();
        // x1 = 4; x0 = 2 - 0.5*4 = 0
        assert_eq!(b, vec![0.0, 4.0]);

        // Solve UT y = c where U = [[2,1],[0,3]] so UT = [[2,0],[1,3]].
        let mut c = vec![2.0, 4.0];
        backward_subst_transposed(&lu, &mut c).unwrap();
        // y0 = 1; y1 = (4 - 1*1)/3 = 1
        assert_eq!(c, vec![1.0, 1.0]);
    }

    #[test]
    fn singular_diagonal_detected() {
        let lu = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![0.5, 3.0]]).unwrap();
        let mut y = vec![1.0, 1.0];
        assert!(matches!(
            backward_subst(&lu, &mut y),
            Err(LinalgError::Singular { column: 0 })
        ));
        let mut c = vec![1.0, 1.0];
        assert!(backward_subst_transposed(&lu, &mut c).is_err());
    }

    #[test]
    fn dimension_checks() {
        let lu = packed();
        let mut b = vec![1.0; 3];
        assert!(forward_subst_unit(&lu, &mut b).is_err());
        let rect = DenseMatrix::zeros(2, 3);
        let mut b2 = vec![1.0; 2];
        assert!(backward_subst(&rect, &mut b2).is_err());
    }
}
