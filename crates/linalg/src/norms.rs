//! Norm and residual helpers used by accuracy checks and tests.

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length (programmer error in tests).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff on unequal lengths");
    a.iter()
        .zip(b.iter())
        .fold(0.0, |acc, (x, y)| acc.max((x - y).abs()))
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a slice (0 for empty input).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |acc, x| acc.max(x.abs()))
}

/// Relative residual `‖Ax − b‖∞ / max(1, ‖b‖∞)` given a precomputed `Ax`.
pub fn relative_residual(ax: &[f64], b: &[f64]) -> f64 {
    max_abs_diff(ax, b) / norm_inf(b).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_and_norms() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn residual_scales_by_rhs() {
        // ‖Ax−b‖∞ = 1, ‖b‖∞ = 10 → 0.1
        assert!((relative_residual(&[11.0], &[10.0]) - 0.1).abs() < 1e-12);
        // Small rhs: denominator clamps at 1.
        assert!((relative_residual(&[0.5], &[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn unequal_lengths_panic() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }
}
