//! Numerical tolerances and scalar helpers shared across the crate.

/// Values with absolute magnitude below this are treated as exact zero when
/// classifying entries (e.g. when counting structural nonzeros or dropping
/// fill-in produced by cancellation).
pub const ZERO_TOL: f64 = 1e-12;

/// Minimum acceptable pivot magnitude during LU factorization. Pivots below
/// this threshold cause the factorization to report the matrix as singular.
pub const PIVOT_TOL: f64 = 1e-10;

/// Tolerance used by tests and residual checks when comparing floating-point
/// results that went through a factorization (accumulated rounding).
pub const APPROX_TOL: f64 = 1e-7;

/// Returns `true` if `x` is within `tol` of zero.
#[inline]
pub fn is_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// Returns `true` if `a` and `b` agree to within an absolute tolerance of
/// `tol` *or* a relative tolerance of `tol` (whichever is looser). Suitable
/// for comparing quantities whose scale is not known a priori.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Clamps tiny values to exact zero; used to suppress cancellation noise when
/// building sparse results.
#[inline]
pub fn snap_zero(x: f64, tol: f64) -> f64 {
    if x.abs() <= tol {
        0.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_classification() {
        assert!(is_zero(0.0, ZERO_TOL));
        assert!(is_zero(1e-13, ZERO_TOL));
        assert!(!is_zero(1e-9, ZERO_TOL));
    }

    #[test]
    fn approx_equality_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-7));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-9), 1e-7));
        assert!(!approx_eq(1.0, 1.1, 1e-7));
        assert!(approx_eq(0.0, 0.0, 1e-12));
    }

    #[test]
    fn snapping_suppresses_noise() {
        assert_eq!(snap_zero(1e-15, ZERO_TOL), 0.0);
        assert_eq!(snap_zero(0.5, ZERO_TOL), 0.5);
        assert_eq!(snap_zero(-1e-15, ZERO_TOL), 0.0);
    }
}
