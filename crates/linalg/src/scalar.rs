//! Numerical tolerances and scalar helpers shared across the crate, plus
//! the [`Scalar`] abstraction that lets kernels run over either `f64` or an
//! exact (rational) arithmetic supplied by a downstream crate.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A field scalar the elimination-style kernels can run over.
///
/// `f64` implements this trait for the production float path; `gmip-verify`
/// implements it for its exact rational type so the same pivoting logic can
/// be checked with zero rounding. Implementations must form an ordered
/// field: exact arithmetic types return bit-true results, while `f64`
/// rounds as usual.
pub trait Scalar:
    Sized
    + Clone
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + std::fmt::Debug
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational, so exact types return `Some` for all finite
    /// inputs); `None` for NaN/±∞.
    fn from_f64(v: f64) -> Option<Self>;
    /// Nearest-double approximation (exact for `f64` itself).
    fn to_f64(&self) -> f64;
    /// Whether the value is exactly the additive identity.
    fn is_zero_exact(&self) -> bool {
        *self == Self::zero()
    }
    /// `|self|`.
    fn abs_val(&self) -> Self {
        if *self < Self::zero() {
            -self.clone()
        } else {
            self.clone()
        }
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Option<Self> {
        v.is_finite().then_some(v)
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

/// Dot product over any [`Scalar`] — the generic sibling of the float
/// kernels in [`crate::dense`], usable with exact arithmetic.
pub fn dot_generic<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    let mut acc = S::zero();
    for (x, y) in a.iter().zip(b) {
        acc = acc + x.clone() * y.clone();
    }
    acc
}

/// Values with absolute magnitude below this are treated as exact zero when
/// classifying entries (e.g. when counting structural nonzeros or dropping
/// fill-in produced by cancellation).
pub const ZERO_TOL: f64 = 1e-12;

/// Minimum acceptable pivot magnitude during LU factorization. Pivots below
/// this threshold cause the factorization to report the matrix as singular.
pub const PIVOT_TOL: f64 = 1e-10;

/// Tolerance used by tests and residual checks when comparing floating-point
/// results that went through a factorization (accumulated rounding).
pub const APPROX_TOL: f64 = 1e-7;

/// Returns `true` if `x` is within `tol` of zero.
#[inline]
pub fn is_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// Returns `true` if `a` and `b` agree to within an absolute tolerance of
/// `tol` *or* a relative tolerance of `tol` (whichever is looser). Suitable
/// for comparing quantities whose scale is not known a priori.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Clamps tiny values to exact zero; used to suppress cancellation noise when
/// building sparse results.
#[inline]
pub fn snap_zero(x: f64, tol: f64) -> f64 {
    if x.abs() <= tol {
        0.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_classification() {
        assert!(is_zero(0.0, ZERO_TOL));
        assert!(is_zero(1e-13, ZERO_TOL));
        assert!(!is_zero(1e-9, ZERO_TOL));
    }

    #[test]
    fn approx_equality_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-7));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-9), 1e-7));
        assert!(!approx_eq(1.0, 1.1, 1e-7));
        assert!(approx_eq(0.0, 0.0, 1e-12));
    }

    #[test]
    fn snapping_suppresses_noise() {
        assert_eq!(snap_zero(1e-15, ZERO_TOL), 0.0);
        assert_eq!(snap_zero(0.5, ZERO_TOL), 0.5);
        assert_eq!(snap_zero(-1e-15, ZERO_TOL), 0.0);
    }

    #[test]
    fn f64_scalar_impl() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5), Some(2.5));
        assert_eq!(<f64 as Scalar>::from_f64(f64::NAN), None);
        assert_eq!(<f64 as Scalar>::from_f64(f64::INFINITY), None);
        assert!((-3.0f64).abs_val() == 3.0);
        assert!(0.0f64.is_zero_exact());
        assert_eq!(dot_generic(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
