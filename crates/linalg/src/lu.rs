//! Dense LU factorization with partial pivoting.
//!
//! `PA = LU` with `L` unit lower triangular and `U` upper triangular, packed
//! into a single matrix as LAPACK's `getrf` does. This is the workhorse dense
//! factorization of Section 4.1 (cuSOLVER/MAGMA `getrf`-class routine); the
//! simulated accelerator charges its cost model for calls into this kernel.

use crate::dense::DenseMatrix;
use crate::triangular;
use crate::{LinalgError, Result, PIVOT_TOL};

/// The result of an LU factorization with partial pivoting.
///
/// Both factors are packed into `lu`: the strictly lower part holds `L`
/// (unit diagonal implied) and the upper part (with diagonal) holds `U`.
/// `perm[i]` gives the original row index that ended up in position `i`,
/// i.e. `(PA)[i][j] = A[perm[i]][j]`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
    /// Number of row interchanges performed (parity gives the determinant
    /// sign flip).
    swaps: usize,
}

impl LuFactors {
    /// Factorizes `a` (which must be square) with partial pivoting.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot below [`PIVOT_TOL`] is
    /// encountered.
    pub fn factorize(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("LU of {}x{} matrix", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at or
            // below the diagonal.
            let mut piv_row = k;
            let mut piv_val = lu.get(k, k).abs();
            for i in k + 1..n {
                let v = lu.get(i, k).abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val < PIVOT_TOL {
                return Err(LinalgError::Singular { column: k });
            }
            if piv_row != k {
                lu.swap_rows(piv_row, k);
                perm.swap(piv_row, k);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            // Eliminate below the pivot; the multiplier is stored in place
            // (that is the L entry).
            for i in k + 1..n {
                let m = lu.get(i, k) / pivot;
                lu.set(i, k, m);
                if m == 0.0 {
                    continue;
                }
                // row_i ← row_i − m · row_k for columns k+1..n.
                // Split borrows: row k is strictly before row i.
                let cols = lu.cols();
                let data = lu.as_mut_slice();
                let (head, tail) = data.split_at_mut(i * cols);
                let row_k = &head[k * cols..(k + 1) * cols];
                let row_i = &mut tail[..cols];
                for j in k + 1..cols {
                    row_i[j] -= m * row_k[j];
                }
            }
        }
        Ok(Self { lu, perm, swaps })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// The packed LU matrix (L strictly lower with unit diagonal, U upper).
    #[inline]
    pub fn packed(&self) -> &DenseMatrix {
        &self.lu
    }

    /// Row permutation: position `i` of the permuted system holds original
    /// row `perm()[i]`.
    #[inline]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b`, returning `x`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("solve: system of {}, rhs of {}", n, b.len()),
            });
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        triangular::forward_subst_unit(&self.lu, &mut x)?;
        triangular::backward_subst(&self.lu, &mut x)?;
        Ok(x)
    }

    /// Solves `Aᵀ x = b`, returning `x`. Needed for BTRAN in the revised
    /// simplex method (computing dual prices).
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("solve_transposed: system of {}, rhs of {}", n, b.len()),
            });
        }
        // Aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P⁻ᵀ, so solve Uᵀ z = b, then Lᵀ w = z,
        // then x = Pᵀ w (scatter w back through the permutation).
        let mut z = b.to_vec();
        triangular::backward_subst_transposed(&self.lu, &mut z)?;
        triangular::forward_subst_unit_transposed(&self.lu, &mut z)?;
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = z[i];
        }
        Ok(x)
    }

    /// Solves for multiple right-hand sides, each a column of `b`.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "solve_matrix: system {}, rhs {}x{}",
                    self.dim(),
                    b.rows(),
                    b.cols()
                ),
            });
        }
        let mut out = DenseMatrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix, computed from the product of `U`'s
    /// diagonal and the permutation parity.
    pub fn determinant(&self) -> f64 {
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Explicit inverse (for tests and small matrices only; solves against
    /// the identity column by column).
    pub fn inverse(&self) -> Result<DenseMatrix> {
        self.solve_matrix(&DenseMatrix::identity(self.dim()))
    }

    /// Reconstructs `P A` as `L U` — used by property tests to verify the
    /// factorization invariant.
    pub fn reconstruct_permuted(&self) -> DenseMatrix {
        let n = self.dim();
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // (LU)[i][j] = sum_k L[i][k] U[k][j], k <= min(i, j)
                let kmax = i.min(j);
                let mut acc = 0.0;
                for k in 0..=kmax {
                    let l = if k == i { 1.0 } else { self.lu.get(i, k) };
                    let u = if k <= j { self.lu.get(k, j) } else { 0.0 };
                    acc += l * u;
                }
                out.set(i, j, acc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn well_conditioned_3x3() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn factorize_and_solve() {
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        let b = vec![5.0, -2.0, 9.0];
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10, "Ax={ax:?} b={b:?}");
        }
    }

    #[test]
    fn reconstruction_matches_permuted_a() {
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        let pa_rows: Vec<Vec<f64>> = f.perm().iter().map(|&p| a.row(p).to_vec()).collect();
        let pa = DenseMatrix::from_rows(&pa_rows).unwrap();
        let lu = f.reconstruct_permuted();
        assert!(max_abs_diff(pa.as_slice(), lu.as_slice()) < 1e-12);
    }

    #[test]
    fn transposed_solve() {
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = f.solve_transposed(&b).unwrap();
        let atx = a.transpose().matvec(&x).unwrap();
        for (got, want) in atx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn determinant_of_known_matrix() {
        // det = 2*(-6*2 - 0*7) - 1*(4*2 - 0*(-2)) + 1*(4*7 - (-6)*(-2)) = -16
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        assert!((f.determinant() - (-16.0)).abs() < 1e-9);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        let inv = f.inverse().unwrap();
        let prod = inv.matmul(&a).unwrap();
        let id = DenseMatrix::identity(3);
        assert!(max_abs_diff(prod.as_slice(), id.as_slice()) < 1e-9);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactors::factorize(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(LuFactors::factorize(&a).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let f = LuFactors::factorize(&a).unwrap();
        let x = f.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = well_conditioned_3x3();
        let f = LuFactors::factorize(&a).unwrap();
        let rhs =
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let x = f.solve_matrix(&rhs).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(max_abs_diff(ax.as_slice(), rhs.as_slice()) < 1e-9);
    }
}
