//! Left-looking (Gilbert–Peierls) sparse LU factorization with partial
//! pivoting.
//!
//! This is the KLU/GLU-class routine that Section 4.2 identifies as the weak
//! point of GPU vendor libraries: it has irregular, data-dependent memory
//! access and produces fill-in, which is exactly why the simulated GPU's cost
//! model charges sparse factorization at a much lower effective throughput
//! than dense factorization (Section 5.4's dense-vs-sparse considerations).
//!
//! The factorization computes `P A = L U` column by column: each column of
//! `A` is solved against the already-computed columns of `L`, then a partial
//! pivot is chosen among the not-yet-pivotal rows.

use crate::sparse::CscMatrix;
use crate::{LinalgError, Result, PIVOT_TOL, ZERO_TOL};

/// Sparse LU factors of a square matrix, `P A = L U`.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Columns of L (unit diagonal implicit); entries are `(original_row, value)`
    /// for rows that were *not yet pivotal* when the column was formed.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Columns of U; entries are `(pivot_position, value)` with the diagonal
    /// entry last.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// `perm[k]` = original row chosen as the pivot of step `k`.
    perm: Vec<usize>,
    /// Inverse permutation: `pinv[original_row]` = pivot position.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Factorizes a square CSC matrix.
    pub fn factorize(a: &CscMatrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("sparse LU of {}x{}", a.rows(), a.cols()),
            });
        }
        const UNSET: usize = usize::MAX;
        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut perm = vec![UNSET; n];
        let mut pinv = vec![UNSET; n];
        // Dense scratch for the current column, indexed by original row.
        let mut x = vec![0.0; n];

        for j in 0..n {
            // Scatter A[:, j].
            for (i, v) in a.col_iter(j) {
                x[i] = v;
            }
            let mut u_j: Vec<(usize, f64)> = Vec::new();
            // Left-looking update: apply previous columns of L in pivot order.
            for k in 0..j {
                let piv_row = perm[k];
                let xk = x[piv_row];
                if xk.abs() <= ZERO_TOL {
                    x[piv_row] = 0.0;
                    continue;
                }
                u_j.push((k, xk));
                x[piv_row] = 0.0;
                for &(r, lv) in &l_cols[k] {
                    x[r] -= xk * lv;
                }
            }
            // Partial pivot among not-yet-pivotal rows.
            let mut piv_row = UNSET;
            let mut piv_val = 0.0;
            for r in 0..n {
                if pinv[r] == UNSET && x[r].abs() > piv_val {
                    piv_val = x[r].abs();
                    piv_row = r;
                }
            }
            if piv_row == UNSET || piv_val < PIVOT_TOL {
                return Err(LinalgError::Singular { column: j });
            }
            let pivot = x[piv_row];
            u_j.push((j, pivot));
            x[piv_row] = 0.0;
            perm[j] = piv_row;
            pinv[piv_row] = j;
            // Gather L column (below-diagonal part), normalized by the pivot.
            let mut l_j: Vec<(usize, f64)> = Vec::new();
            for r in 0..n {
                if pinv[r] == UNSET && x[r].abs() > ZERO_TOL {
                    l_j.push((r, x[r] / pivot));
                }
                x[r] = 0.0;
            }
            l_cols.push(l_j);
            u_cols.push(u_j);
        }
        Ok(Self {
            n,
            l_cols,
            u_cols,
            perm,
            pinv,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros in `L` (excluding the unit diagonal) plus `U` —
    /// the fill-in measure the GPU cost model charges for.
    pub fn fill_nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("sparse solve: system {}, rhs {}", self.n, b.len()),
            });
        }
        // Forward: L y = P b, y indexed by pivot position.
        let mut y: Vec<f64> = self.perm.iter().map(|&r| b[r]).collect();
        for k in 0..self.n {
            let yk = y[k];
            if yk == 0.0 {
                continue;
            }
            for &(r, lv) in &self.l_cols[k] {
                y[self.pinv[r]] -= yk * lv;
            }
        }
        // Backward: U x = y. Columns processed right to left.
        let mut xout = y;
        for j in (0..self.n).rev() {
            let col = &self.u_cols[j];
            // Diagonal is the last entry by construction.
            let &(dj, dv) = col.last().expect("U column has a diagonal");
            debug_assert_eq!(dj, j);
            let xj = xout[j] / dv;
            xout[j] = xj;
            if xj == 0.0 {
                continue;
            }
            for &(k, uv) in &col[..col.len() - 1] {
                xout[k] -= uv * xj;
            }
        }
        Ok(xout)
    }

    /// Solves `Aᵀ x = b` (the BTRAN direction for a sparse-factored basis).
    ///
    /// `Aᵀ = Uᵀ Lᵀ P`, so solve `Uᵀ z = b`, then `Lᵀ w = z`, then scatter
    /// `x[perm[k]] = w[k]`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("sparse solve_t: system {}, rhs {}", self.n, b.len()),
            });
        }
        // Uᵀ is lower triangular over pivot positions; U stored by columns
        // means Uᵀ's row j = U's column j. Forward solve: for j ascending,
        // z_j = (b_j − Σ_{k<j} U[k][j] z_k) / U[j][j].
        let mut z = b.to_vec();
        for j in 0..self.n {
            let col = &self.u_cols[j];
            let &(dj, dv) = col.last().expect("U column has a diagonal");
            debug_assert_eq!(dj, j);
            let mut acc = z[j];
            for &(k, uv) in &col[..col.len() - 1] {
                acc -= uv * z[k];
            }
            z[j] = acc / dv;
        }
        // Lᵀ is unit upper triangular: backward solve. L's column k holds
        // L[i][k] for rows i (original indices) with pivot position
        // pinv[i] > k; Lᵀ row k = those entries.
        for k in (0..self.n).rev() {
            let mut acc = z[k];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * z[self.pinv[r]];
            }
            z[k] = acc;
        }
        // x = Pᵀ w: row perm[k] of A maps to pivot position k.
        let mut x = vec![0.0; self.n];
        for (k, &orig_row) in self.perm.iter().enumerate() {
            x[orig_row] = z[k];
        }
        Ok(x)
    }

    /// Reconstructs the dense product `L U` re-permuted back to `A`'s row
    /// order (property-test helper).
    pub fn reconstruct(&self) -> crate::DenseMatrix {
        let n = self.n;
        // Dense L (positions) and U.
        let mut l = crate::DenseMatrix::identity(n);
        for (k, col) in self.l_cols.iter().enumerate() {
            for &(r, v) in col {
                l.set(self.pinv[r], k, v);
            }
        }
        let mut u = crate::DenseMatrix::zeros(n, n);
        for (j, col) in self.u_cols.iter().enumerate() {
            for &(k, v) in col {
                u.set(k, j, v);
            }
        }
        let pa = l.matmul(&u).expect("square product");
        // Undo the row permutation: row pinv[r] of PA is row r of A.
        let mut a = crate::DenseMatrix::zeros(n, n);
        for r in 0..n {
            let src = pa.row(self.pinv[r]).to_vec();
            a.row_mut(r).copy_from_slice(&src);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::sparse::CooMatrix;
    use crate::DenseMatrix;

    fn circuit_like() -> CscMatrix {
        // A sparse, diagonally-dominant-ish matrix with off-diagonal couplings.
        let mut coo = CooMatrix::new(5, 5);
        let entries = [
            (0, 0, 4.0),
            (0, 2, -1.0),
            (1, 1, 5.0),
            (1, 3, -2.0),
            (2, 0, -1.0),
            (2, 2, 6.0),
            (2, 4, -1.0),
            (3, 1, -2.0),
            (3, 3, 7.0),
            (4, 2, -1.0),
            (4, 4, 3.0),
        ];
        for (i, j, v) in entries {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn factorize_and_solve_sparse_system() {
        let a = circuit_like();
        let f = SparseLu::factorize(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = circuit_like();
        let f = SparseLu::factorize(&a).unwrap();
        let rebuilt = f.reconstruct();
        let dense = a.to_dense();
        assert!(max_abs_diff(rebuilt.as_slice(), dense.as_slice()) < 1e-9);
    }

    #[test]
    fn agrees_with_dense_lu() {
        let a = circuit_like();
        let f_sparse = SparseLu::factorize(&a).unwrap();
        let f_dense = crate::LuFactors::factorize(&a.to_dense()).unwrap();
        let b = vec![0.5, -1.0, 2.0, 0.0, 1.0];
        let xs = f_sparse.solve(&b).unwrap();
        let xd = f_dense.solve(&b).unwrap();
        assert!(max_abs_diff(&xs, &xd) < 1e-9);
    }

    #[test]
    fn transposed_solve_matches_dense() {
        let a = circuit_like();
        let f = SparseLu::factorize(&a).unwrap();
        let fd = crate::LuFactors::factorize(&a.to_dense()).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.0];
        let xs = f.solve_transposed(&b).unwrap();
        let xd = fd.solve_transposed(&b).unwrap();
        assert!(max_abs_diff(&xs, &xd) < 1e-9);
        // Verify Aᵀ x = b directly.
        let at = a.to_dense().transpose();
        let atx = at.matvec(&xs).unwrap();
        assert!(max_abs_diff(&atx, &b) < 1e-9);
        // Wrong length rejected.
        assert!(f.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn pivoting_required_matrix() {
        // Leading entry zero forces a row interchange.
        let d = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 1.0]]).unwrap();
        let a = CscMatrix::from_dense(&d);
        let f = SparseLu::factorize(&a).unwrap();
        let x = f.solve(&[4.0, 5.0]).unwrap();
        // 2y=... system: x = [1, 2]
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let a = CscMatrix::from_dense(&d);
        assert!(matches!(
            SparseLu::factorize(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let d = DenseMatrix::zeros(2, 3);
        let a = CscMatrix::from_dense(&d);
        assert!(SparseLu::factorize(&a).is_err());
    }

    #[test]
    fn fill_nnz_at_least_input_nnz() {
        let a = circuit_like();
        let f = SparseLu::factorize(&a).unwrap();
        // L (strict) + U (incl. diagonal) must cover at least the original
        // pattern's information content.
        assert!(f.fill_nnz() >= a.nnz() - a.rows() + a.rows());
    }

    #[test]
    fn identity_has_no_fill() {
        let a = CscMatrix::from_dense(&DenseMatrix::identity(4));
        let f = SparseLu::factorize(&a).unwrap();
        // U holds just the 4 diagonal entries; L is empty.
        assert_eq!(f.fill_nnz(), 4);
        let x = f.solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
