//! Product-form-of-inverse (PFI) basis representation with FTRAN/BTRAN.
//!
//! The revised simplex method replaces one basis column per iteration. Rather
//! than refactorizing the basis matrix `B` each time, the PFI represents
//! `B⁻¹ = Eₖ⁻¹ ⋯ E₁⁻¹ B₀⁻¹`, where `B₀` has a full LU factorization and each
//! `Eᵢ` is an *eta matrix* — the identity with a single column replaced.
//!
//! Section 5.1 of the paper: "the GPU linear algebra will be exercised in
//! this portion with rank-1 updates and resolving the updated matrix
//! repeatedly with no data transfer from host to device". The eta file is the
//! classic realization of that, and the one used by the GPU simplex
//! implementations the paper cites (\[28\], \[31\] use a *modified* product form
//! of inverse). The number of accumulated eta factors is the refactorization
//! trigger knob exposed to the solver.

use crate::lu::LuFactors;
use crate::{DenseMatrix, LinalgError, Result, PIVOT_TOL};

/// One eta matrix: the identity with column [`col`](Self::col) replaced by
/// [`eta`](Self::eta).
#[derive(Debug, Clone)]
pub struct EtaFactor {
    /// The replaced column index.
    pub col: usize,
    /// The replacement column (length = basis dimension). The diagonal entry
    /// `eta[col]` must be bounded away from zero.
    pub eta: Vec<f64>,
}

impl EtaFactor {
    /// Applies `E⁻¹` to `x` in place.
    ///
    /// With `E = I + (η − e_r) e_rᵀ`, the inverse application is
    /// `x_r ← x_r / η_r`, then `x_i ← x_i − η_i · x_r` for `i ≠ r`.
    pub fn apply_inverse(&self, x: &mut [f64]) {
        let r = self.col;
        let xr = x[r] / self.eta[r];
        for (i, (&ei, xi)) in self.eta.iter().zip(x.iter_mut()).enumerate() {
            if i != r {
                *xi -= ei * xr;
            }
        }
        x[r] = xr;
    }

    /// Applies `E⁻ᵀ` to `y` in place:
    /// `y_r ← (y_r − Σ_{i≠r} η_i y_i) / η_r`, other entries unchanged.
    pub fn apply_inverse_transposed(&self, y: &mut [f64]) {
        let r = self.col;
        let mut acc = y[r];
        for (i, (&ei, &yi)) in self.eta.iter().zip(y.iter()).enumerate() {
            if i != r {
                acc -= ei * yi;
            }
        }
        y[r] = acc / self.eta[r];
    }
}

/// A factored basis: LU of the initial basis plus a file of eta updates.
#[derive(Debug, Clone)]
pub struct EtaFile {
    base: LuFactors,
    etas: Vec<EtaFactor>,
}

impl EtaFile {
    /// Factorizes the initial basis matrix `b0`.
    pub fn factorize(b0: &DenseMatrix) -> Result<Self> {
        Ok(Self {
            base: LuFactors::factorize(b0)?,
            etas: Vec::new(),
        })
    }

    /// Basis dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Number of accumulated eta factors since the last refactorization —
    /// the solver refactorizes when this passes its threshold, trading
    /// FTRAN/BTRAN cost against factorization cost.
    #[inline]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// FTRAN: solves `B x = b` through the base LU and the eta file.
    pub fn ftran(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = self.base.solve(b)?;
        for e in &self.etas {
            e.apply_inverse(&mut x);
        }
        Ok(x)
    }

    /// BTRAN: solves `Bᵀ y = c` (eta transposes in reverse, then base).
    pub fn btran(&self, c: &[f64]) -> Result<Vec<f64>> {
        let mut y = c.to_vec();
        for e in self.etas.iter().rev() {
            e.apply_inverse_transposed(&mut y);
        }
        self.base.solve_transposed(&y)
    }

    /// Records the basis change "column `leaving_pos` replaced by a column
    /// whose FTRAN image is `alpha`" (i.e. `alpha = B⁻¹ a_entering`, computed
    /// *before* the update).
    ///
    /// Fails if the pivot element `alpha[leaving_pos]` is numerically zero —
    /// such an exchange would make the basis singular.
    pub fn update(&mut self, leaving_pos: usize, alpha: Vec<f64>) -> Result<()> {
        if alpha.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("eta update: basis {}, alpha {}", self.dim(), alpha.len()),
            });
        }
        if leaving_pos >= self.dim() {
            return Err(LinalgError::OutOfBounds {
                index: leaving_pos,
                bound: self.dim(),
            });
        }
        if alpha[leaving_pos].abs() < PIVOT_TOL {
            return Err(LinalgError::Singular {
                column: leaving_pos,
            });
        }
        self.etas.push(EtaFactor {
            col: leaving_pos,
            eta: alpha,
        });
        Ok(())
    }

    /// Replaces the factorization with a fresh LU of `b` and clears the eta
    /// file (periodic refactorization for numerical hygiene).
    pub fn refactorize(&mut self, b: &DenseMatrix) -> Result<()> {
        self.base = LuFactors::factorize(b)?;
        self.etas.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    /// Builds B0 = I(3) and then swaps in columns one at a time, checking the
    /// eta-file solves against a fresh dense LU of the explicit basis.
    #[test]
    fn eta_updates_agree_with_refactorization() {
        let n = 3;
        let mut explicit = DenseMatrix::identity(n);
        let mut file = EtaFile::factorize(&explicit).unwrap();

        let new_cols = [
            (0usize, vec![2.0, 1.0, 0.0]),
            (2usize, vec![0.5, 0.0, 3.0]),
            (1usize, vec![1.0, 4.0, 1.0]),
        ];
        for (pos, col) in new_cols {
            // alpha = B⁻¹ a_new computed with the *current* representation.
            let alpha = file.ftran(&col).unwrap();
            file.update(pos, alpha).unwrap();
            for i in 0..n {
                explicit.set(i, pos, col[i]);
            }
            let fresh = LuFactors::factorize(&explicit).unwrap();
            let b = vec![1.0, -2.0, 0.5];
            let x_eta = file.ftran(&b).unwrap();
            let x_lu = fresh.solve(&b).unwrap();
            assert!(
                max_abs_diff(&x_eta, &x_lu) < 1e-9,
                "ftran diverged after update at {pos}"
            );
            let y_eta = file.btran(&b).unwrap();
            let y_lu = fresh.solve_transposed(&b).unwrap();
            assert!(
                max_abs_diff(&y_eta, &y_lu) < 1e-9,
                "btran diverged after update at {pos}"
            );
        }
        assert_eq!(file.eta_count(), 3);
    }

    #[test]
    fn refactorize_clears_etas() {
        let b0 = DenseMatrix::identity(2);
        let mut file = EtaFile::factorize(&b0).unwrap();
        let alpha = file.ftran(&[3.0, 1.0]).unwrap();
        file.update(0, alpha).unwrap();
        assert_eq!(file.eta_count(), 1);
        let mut b1 = DenseMatrix::identity(2);
        b1.set(0, 0, 3.0);
        b1.set(1, 0, 1.0);
        file.refactorize(&b1).unwrap();
        assert_eq!(file.eta_count(), 0);
        let x = file.ftran(&[3.0, 1.0]).unwrap();
        assert!(max_abs_diff(&x, &[1.0, 0.0]) < 1e-12);
    }

    #[test]
    fn zero_pivot_update_rejected() {
        let b0 = DenseMatrix::identity(2);
        let mut file = EtaFile::factorize(&b0).unwrap();
        // alpha with zero at the leaving position → singular basis.
        assert!(matches!(
            file.update(0, vec![0.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
        // Wrong length.
        assert!(file.update(0, vec![1.0]).is_err());
        // Out-of-range position.
        assert!(file.update(5, vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn eta_factor_inverse_roundtrip() {
        // E x, then E⁻¹ should restore x.
        let e = EtaFactor {
            col: 1,
            eta: vec![0.5, 2.0, -1.0],
        };
        let x0 = [1.0, 2.0, 3.0];
        // Compute E x0 explicitly: (E x)_i = x_i + eta_i * x_r for i != r,
        // (E x)_r = eta_r * x_r.
        let mut ex = [0.0; 3];
        for i in 0..3 {
            if i == e.col {
                ex[i] = e.eta[i] * x0[i];
            } else {
                ex[i] = x0[i] + e.eta[i] * x0[e.col];
            }
        }
        let mut back = ex;
        e.apply_inverse(&mut back);
        assert!(max_abs_diff(&back, &x0) < 1e-12);
    }

    #[test]
    fn eta_transpose_consistent_with_inverse() {
        // For any x, y: (E⁻ᵀ y) · x == y · (E⁻¹ x).
        let e = EtaFactor {
            col: 0,
            eta: vec![4.0, 1.0, -2.0],
        };
        let x = [1.0, -1.0, 2.0];
        let y = [0.5, 3.0, 1.0];
        let mut ex = x;
        e.apply_inverse(&mut ex);
        let mut ey = y;
        e.apply_inverse_transposed(&mut ey);
        let lhs: f64 = ey.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        let rhs: f64 = y.iter().zip(ex.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
