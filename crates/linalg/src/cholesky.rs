//! Dense Cholesky factorization for symmetric positive-definite systems.
//!
//! The first of the paper's Section 4 factorization classes ("Cholesky, LU,
//! and QR decomposition is one of the most important computing routines").
//! In a MIP/LP stack, SPD systems arise in least-squares subproblems and in
//! the normal equations `A Aᵀ y = b` of interior-point methods — the
//! alternative LP algorithm the paper's related work surveys; this routine
//! is the substrate a future interior-point backend would sit on (and the
//! operation Rennich et al.'s batched-Cholesky work accelerates).

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result, PIVOT_TOL};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactors {
    l: DenseMatrix,
}

impl CholeskyFactors {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Fails with [`LinalgError::Singular`] when a diagonal pivot is not
    /// strictly positive (the matrix is not positive definite). Symmetry is
    /// trusted from the lower triangle; the upper triangle is ignored.
    pub fn factorize(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("Cholesky of {}x{} matrix", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            // Diagonal: l_jj = sqrt(a_jj − Σ_k l_jk²).
            let mut d = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                d -= v * v;
            }
            if d < PIVOT_TOL {
                return Err(LinalgError::Singular { column: j });
            }
            let ljj = d.sqrt();
            l.set(j, j, ljj);
            // Below-diagonal column.
            for i in j + 1..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / ljj);
            }
        }
        Ok(Self { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("cholesky solve: system {}, rhs {}", n, b.len()),
            });
        }
        // L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l.get(i, k) * y[k];
            }
            y[i] = acc / self.l.get(i, i);
        }
        // Lᵀ x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= self.l.get(k, i) * y[k];
            }
            y[i] = acc / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Log-determinant of `A` (numerically stable via `2 Σ ln l_jj`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|j| self.l.get(j, j).ln()).sum::<f64>() * 2.0
    }
}

/// Forms the SPD normal-equations matrix `A Aᵀ` of an `m × n` matrix — the
/// interior-point building block mentioned above.
pub fn normal_equations(a: &DenseMatrix) -> DenseMatrix {
    let m = a.rows();
    let mut aat = DenseMatrix::zeros(m, m);
    for i in 0..m {
        for j in i..m {
            let v = crate::dense::dot(a.row(i), a.row(j));
            aat.set(i, j, v);
            aat.set(j, i, v);
        }
    }
    aat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    fn spd3() -> DenseMatrix {
        // L0 · L0ᵀ for L0 = [[2,0,0],[1,3,0],[0.5,1,1.5]].
        DenseMatrix::from_rows(&[
            vec![4.0, 2.0, 1.0],
            vec![2.0, 10.0, 3.5],
            vec![1.0, 3.5, 3.5],
        ])
        .unwrap()
    }

    #[test]
    fn factorize_reconstructs() {
        let a = spd3();
        let f = CholeskyFactors::factorize(&a).unwrap();
        let l = f.l();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        assert!(max_abs_diff(rebuilt.as_slice(), a.as_slice()) < 1e-10);
        // Known factor.
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let f = CholeskyFactors::factorize(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = f.solve(&b).unwrap();
        let lu = crate::LuFactors::factorize(&a).unwrap().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &lu) < 1e-9);
        assert!(f.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_matches_lu_determinant() {
        let a = spd3();
        let f = CholeskyFactors::factorize(&a).unwrap();
        let det = crate::LuFactors::factorize(&a).unwrap().determinant();
        assert!((f.log_det() - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn indefinite_rejected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyFactors::factorize(&a),
            Err(LinalgError::Singular { column: 1 })
        ));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(CholeskyFactors::factorize(&rect).is_err());
    }

    #[test]
    fn normal_equations_are_spd() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![2.0, 0.0, 1.0, 1.0],
        ])
        .unwrap();
        let aat = normal_equations(&a);
        assert_eq!(aat.rows(), 3);
        // Symmetric…
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(aat.get(i, j), aat.get(j, i));
            }
        }
        // …and Cholesky-factorizable (full row rank).
        let f = CholeskyFactors::factorize(&aat).unwrap();
        // Solve A Aᵀ y = b and verify.
        let b = vec![3.0, 1.0, 2.0];
        let y = f.solve(&b).unwrap();
        let ay = aat.matvec(&y).unwrap();
        assert!(max_abs_diff(&ay, &b) < 1e-9);
    }
}
