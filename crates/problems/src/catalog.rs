//! Named instance catalog used by tests, examples, and the experiment
//! harness.

use crate::generators::{
    bin_packing, facility_location, fixed_charge_flow, generalized_assignment, knapsack,
    random_mip, set_cover, unit_commitment, RandomMipConfig,
};
use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};

/// The tiny instance used to render Figure 1's solution tree: a 4-item
/// knapsack whose branch-and-bound tree exhibits feasible, infeasible, and
/// pruned leaves.
///
/// maximize `10x₀ + 6x₁ + 4x₂ + 3x₃`
/// s.t. `5x₀ + 4x₁ + 3x₂ + 2x₃ ≤ 8`, `x` binary. The LP relaxation is
/// fractional (x₀ = 1, x₁ = 3/4), so real branching occurs.
/// Optimum: 14 (x₀ = x₂ = 1).
pub fn figure1_knapsack() -> MipInstance {
    let mut m = MipInstance::new("figure1", Objective::Maximize);
    m.add_var(Variable::binary("x0", 10.0));
    m.add_var(Variable::binary("x1", 6.0));
    m.add_var(Variable::binary("x2", 4.0));
    m.add_var(Variable::binary("x3", 3.0));
    m.add_con(Constraint::new(
        "cap",
        vec![(0, 5.0), (1, 4.0), (2, 3.0), (3, 2.0)],
        Sense::Le,
        8.0,
    ));
    m
}

/// A 2-variable LP-textbook instance with a fractional LP optimum, solvable
/// by hand. maximize `5x + 4y` s.t. `6x + 4y ≤ 24`, `x + 2y ≤ 6`,
/// `x, y ≥ 0` continuous. LP optimum 21 at `(3, 1.5)`.
pub fn textbook_lp() -> MipInstance {
    let mut m = MipInstance::new("textbook-lp", Objective::Maximize);
    m.add_var(Variable::continuous("x", 0.0, f64::INFINITY, 5.0));
    m.add_var(Variable::continuous("y", 0.0, f64::INFINITY, 4.0));
    m.add_con(Constraint::new(
        "c0",
        vec![(0, 6.0), (1, 4.0)],
        Sense::Le,
        24.0,
    ));
    m.add_con(Constraint::new(
        "c1",
        vec![(0, 1.0), (1, 2.0)],
        Sense::Le,
        6.0,
    ));
    m
}

/// The same instance with integrality imposed; MIP optimum 20 at `(4, 0)`
/// (LP rounding (3,1) or (3,2) is infeasible/suboptimal, so branching is
/// exercised).
pub fn textbook_mip() -> MipInstance {
    let mut m = MipInstance::new("textbook-mip", Objective::Maximize);
    m.add_var(Variable::integer("x", 0.0, 10.0, 5.0));
    m.add_var(Variable::integer("y", 0.0, 10.0, 4.0));
    m.add_con(Constraint::new(
        "c0",
        vec![(0, 6.0), (1, 4.0)],
        Sense::Le,
        24.0,
    ));
    m.add_con(Constraint::new(
        "c1",
        vec![(0, 1.0), (1, 2.0)],
        Sense::Le,
        6.0,
    ));
    m
}

/// An infeasible instance (`x ≥ 2` and `x ≤ 1`), for error-path coverage.
pub fn infeasible_instance() -> MipInstance {
    let mut m = MipInstance::new("infeasible", Objective::Maximize);
    m.add_var(Variable::continuous("x", 0.0, 10.0, 1.0));
    m.add_con(Constraint::new("ge2", vec![(0, 1.0)], Sense::Ge, 2.0));
    m.add_con(Constraint::new("le1", vec![(0, 1.0)], Sense::Le, 1.0));
    m
}

/// An unbounded instance (maximize x with no finite upper bound), for
/// error-path coverage.
pub fn unbounded_instance() -> MipInstance {
    let mut m = MipInstance::new("unbounded", Objective::Maximize);
    m.add_var(Variable::continuous("x", 0.0, f64::INFINITY, 1.0));
    m.add_con(Constraint::new("dummy", vec![(0, -1.0)], Sense::Le, 0.0));
    m
}

/// A descriptor in the benchmark suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Short identifier used in report tables.
    pub id: &'static str,
    /// The instance.
    pub instance: MipInstance,
}

/// The standard small benchmark suite: one instance per generator family,
/// sized to solve in well under a second so sweeps stay fast.
pub fn small_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            id: "knapsack-20",
            instance: knapsack(20, 0.5, 101),
        },
        SuiteEntry {
            id: "setcover-15x12",
            instance: set_cover(15, 12, 0.3, 102),
        },
        SuiteEntry {
            id: "gap-3x6",
            instance: generalized_assignment(3, 6, 103),
        },
        SuiteEntry {
            id: "ucommit-3x4",
            instance: unit_commitment(3, 4, 104),
        },
        SuiteEntry {
            id: "netflow-8",
            instance: fixed_charge_flow(8, 4, 10.0, 105),
        },
        SuiteEntry {
            id: "binpack-4",
            instance: bin_packing(4, 1.0, 107),
        },
        SuiteEntry {
            id: "facility-4x3",
            instance: facility_location(4, 3, 40.0, 108),
        },
        SuiteEntry {
            id: "random-12x24",
            instance: random_mip(&RandomMipConfig {
                rows: 12,
                cols: 24,
                density: 0.5,
                integral_fraction: 0.5,
                seed: 106,
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_instance_is_well_formed() {
        let m = figure1_knapsack();
        assert!(m.validate().is_ok());
        // Known optimum by enumeration: x0=x2=1 → value 14, weight 8.
        assert!(m.is_integer_feasible(&[1.0, 0.0, 1.0, 0.0], 1e-9));
        assert_eq!(m.objective_value(&[1.0, 0.0, 1.0, 0.0]), 14.0);
        // x0 and x1 together exceed the capacity.
        assert!(!m.is_feasible(&[1.0, 1.0, 0.0, 0.0], 1e-9));
        // The LP relaxation is fractional: x0=1, x1=3/4 is LP-feasible.
        assert!(m.is_feasible(&[1.0, 0.75, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn textbook_instances() {
        let lp = textbook_lp();
        assert!(lp.is_feasible(&[3.0, 1.5], 1e-9));
        assert_eq!(lp.objective_value(&[3.0, 1.5]), 21.0);
        let mip = textbook_mip();
        assert!(mip.is_integer_feasible(&[4.0, 0.0], 1e-9));
        assert_eq!(mip.objective_value(&[4.0, 0.0]), 20.0);
        // The LP optimum is not integral.
        assert!(!mip.is_integer_feasible(&[3.0, 1.5], 1e-9));
    }

    #[test]
    fn pathological_instances() {
        let inf = infeasible_instance();
        assert!(!inf.is_feasible(&[1.5], 1e-9));
        let unb = unbounded_instance();
        assert!(unb.is_feasible(&[1e9], 1e-9));
    }

    #[test]
    fn suite_is_valid_and_diverse() {
        let suite = small_suite();
        assert_eq!(suite.len(), 8);
        for e in &suite {
            assert!(e.instance.validate().is_ok(), "{} invalid", e.id);
            assert!(e.instance.num_vars() > 0);
        }
        // Mixed continuous/integer present in at least one entry.
        assert!(suite
            .iter()
            .any(|e| e.instance.num_integral() < e.instance.num_vars()
                && e.instance.num_integral() > 0));
    }
}
