//! Uncapacitated facility-location instances.
//!
//! Open facilities and assign every customer to one open facility,
//! minimizing opening plus service costs. The canonical mixed 0/1 family
//! with big-M-free "strong" linking rows (`x_{c,f} ≤ y_f`), whose LP
//! relaxations are famously tight — a contrast to the weak-linking
//! unit-commitment family.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates an uncapacitated facility-location instance:
///
/// * `x[c][f]` binary assignment (index `c * facilities + f`), service cost
///   from random 2-D locations (rectilinear distance);
/// * `y[f]` binary opening (index `customers * facilities + f`) with cost
///   `open_cost`;
/// * `Σ_f x[c][f] = 1` per customer; `x[c][f] ≤ y[f]` per pair.
///
/// # Panics
/// Panics if `customers == 0` or `facilities == 0`.
pub fn facility_location(
    customers: usize,
    facilities: usize,
    open_cost: f64,
    seed: u64,
) -> MipInstance {
    assert!(
        customers > 0 && facilities > 0,
        "need customers and facilities"
    );
    let mut rng = super::rng(seed);
    let cust_pos: Vec<(f64, f64)> = (0..customers)
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect();
    let fac_pos: Vec<(f64, f64)> = (0..facilities)
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect();

    let mut m = MipInstance::new(
        format!("facility-{customers}x{facilities}-s{seed}"),
        Objective::Minimize,
    );
    for c in 0..customers {
        for f in 0..facilities {
            let d = (cust_pos[c].0 - fac_pos[f].0).abs() + (cust_pos[c].1 - fac_pos[f].1).abs();
            m.add_var(Variable::binary(format!("x_{c}_{f}"), d.round()));
        }
    }
    for f in 0..facilities {
        m.add_var(Variable::binary(format!("y_{f}"), open_cost));
    }
    let x_idx = |c: usize, f: usize| c * facilities + f;
    let y_idx = |f: usize| customers * facilities + f;

    for c in 0..customers {
        m.add_con(Constraint::new(
            format!("serve{c}"),
            (0..facilities).map(|f| (x_idx(c, f), 1.0)).collect(),
            Sense::Eq,
            1.0,
        ));
    }
    for c in 0..customers {
        for f in 0..facilities {
            m.add_con(Constraint::new(
                format!("link_{c}_{f}"),
                vec![(x_idx(c, f), 1.0), (y_idx(f), -1.0)],
                Sense::Le,
                0.0,
            ));
        }
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_everything_is_feasible() {
        let (c, f) = (4, 3);
        let m = facility_location(c, f, 50.0, 7);
        let mut x = vec![0.0; m.num_vars()];
        for ci in 0..c {
            x[ci * f] = 1.0; // everyone served by facility 0
        }
        for fi in 0..f {
            x[c * f + fi] = 1.0; // all open
        }
        assert!(m.is_integer_feasible(&x, 1e-9));
        // Serving from a closed facility violates the link row.
        let mut bad = x.clone();
        bad[c * f] = 0.0; // close facility 0 while customers use it
        assert!(!m.is_feasible(&bad, 1e-9));
    }

    #[test]
    fn shape_and_sparsity() {
        let m = facility_location(6, 4, 30.0, 2);
        assert_eq!(m.num_vars(), 6 * 4 + 4);
        assert_eq!(m.num_cons(), 6 + 24);
        // Strong-linking rows make the matrix very sparse.
        assert!(m.density() < 0.2);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            facility_location(3, 2, 10.0, 5),
            facility_location(3, 2, 10.0, 5)
        );
    }
}
