//! Set-cover instances.
//!
//! Minimize the cost of chosen sets such that every element is covered —
//! the classic sparse, ≥-constrained binary family. Its constraint matrix
//! density is directly controllable, which drives the dense/sparse
//! dispatch experiments (Section 5.4).

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a set-cover instance with `elements` rows and `sets` columns:
/// minimize `Σ cⱼ xⱼ` subject to `Σ_{j : element i ∈ set j} xⱼ ≥ 1` for all
/// `i`, `x` binary.
///
/// Each set covers each element independently with probability `density`;
/// rows left uncovered are patched with a random set so the instance is
/// always feasible. Costs are uniform in `[1, 10]`.
///
/// # Panics
/// Panics if `elements == 0`, `sets == 0`, or `density` is not in `(0, 1]`.
pub fn set_cover(elements: usize, sets: usize, density: f64, seed: u64) -> MipInstance {
    assert!(elements > 0 && sets > 0, "need elements and sets");
    assert!(density > 0.0 && density <= 1.0, "density in (0,1]");
    let mut rng = super::rng(seed);

    // covers[i] = set indices covering element i.
    let mut covers: Vec<Vec<usize>> = vec![Vec::new(); elements];
    for (i, row) in covers.iter_mut().enumerate() {
        for j in 0..sets {
            if rng.gen_bool(density) {
                row.push(j);
            }
        }
        if row.is_empty() {
            row.push(rng.gen_range(0..sets));
        }
        let _ = i;
    }

    let mut m = MipInstance::new(
        format!("setcover-{elements}x{sets}-d{density}-s{seed}"),
        Objective::Minimize,
    );
    for j in 0..sets {
        let cost = rng.gen_range(1..=10) as f64;
        m.add_var(Variable::binary(format!("s{j}"), cost));
    }
    for (i, row) in covers.iter().enumerate() {
        m.add_con(Constraint::new(
            format!("cover{i}"),
            row.iter().map(|&j| (j, 1.0)).collect(),
            Sense::Ge,
            1.0,
        ));
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_feasible_with_all_sets() {
        let m = set_cover(20, 10, 0.2, 42);
        assert!(m.is_integer_feasible(&[1.0; 10], 1e-9));
        assert!(m.validate().is_ok());
        assert_eq!(m.objective, Objective::Minimize);
    }

    #[test]
    fn density_controls_matrix_density() {
        let sparse = set_cover(50, 50, 0.05, 1);
        let dense = set_cover(50, 50, 0.6, 1);
        assert!(sparse.density() < 0.15);
        assert!(dense.density() > 0.4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(set_cover(10, 5, 0.3, 9), set_cover(10, 5, 0.3, 9));
    }

    #[test]
    fn empty_rows_patched() {
        // Extremely low density: every row still has ≥ 1 coefficient.
        let m = set_cover(30, 30, 0.001, 5);
        for c in &m.cons {
            assert!(!c.coeffs.is_empty());
        }
    }
}
