//! Unit-commitment instances (simplified).
//!
//! The paper's opening motivates MIP with "many significant sectors" and
//! cites the unit-commitment formulation of Ostrowski et al. \[26\]. This
//! generator produces the core of that model: binary on/off decisions per
//! generator per period, continuous dispatch levels linked to commitment by
//! min/max output constraints, and per-period demand coverage. It is the
//! repo's canonical *mixed* (binary + continuous) family.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a unit-commitment instance over `generators` units and
/// `periods` time steps.
///
/// Variables (indexed `g * periods + t` within each block):
/// * `u[g][t]` binary commitment, fixed cost `f_g`;
/// * `p[g][t]` continuous dispatch, marginal cost `c_g` (block offset
///   `generators * periods`).
///
/// Constraints per `(g, t)`: `p ≤ Pmax_g · u` and `p ≥ Pmin_g · u`; per `t`:
/// `Σ_g p[g][t] ≥ D_t`. Demand is drawn so the fleet can always cover it
/// (`D_t ≤ 0.8 Σ Pmax`). Objective: minimize total cost.
///
/// # Panics
/// Panics if `generators == 0` or `periods == 0`.
pub fn unit_commitment(generators: usize, periods: usize, seed: u64) -> MipInstance {
    assert!(generators > 0 && periods > 0, "need generators and periods");
    let mut rng = super::rng(seed);

    let pmax: Vec<f64> = (0..generators)
        .map(|_| rng.gen_range(50..=200) as f64)
        .collect();
    let pmin: Vec<f64> = pmax.iter().map(|&p| (0.2 * p).round()).collect();
    let fixed: Vec<f64> = (0..generators)
        .map(|_| rng.gen_range(100..=500) as f64)
        .collect();
    let marginal: Vec<f64> = (0..generators)
        .map(|_| rng.gen_range(5..=30) as f64)
        .collect();
    let total_pmax: f64 = pmax.iter().sum();
    let demand: Vec<f64> = (0..periods)
        .map(|_| (rng.gen_range(0.3..0.8) * total_pmax).round())
        .collect();

    let mut m = MipInstance::new(
        format!("ucommit-g{generators}-t{periods}-s{seed}"),
        Objective::Minimize,
    );
    // Block 1: commitment binaries.
    for g in 0..generators {
        for t in 0..periods {
            m.add_var(Variable::binary(format!("u_{g}_{t}"), fixed[g]));
        }
    }
    // Block 2: dispatch continuums.
    let p_base = generators * periods;
    for g in 0..generators {
        for t in 0..periods {
            m.add_var(Variable::continuous(
                format!("p_{g}_{t}"),
                0.0,
                pmax[g],
                marginal[g],
            ));
        }
    }
    let u_idx = |g: usize, t: usize| g * periods + t;
    let p_idx = |g: usize, t: usize| p_base + g * periods + t;

    for g in 0..generators {
        for t in 0..periods {
            // p - Pmax·u ≤ 0
            m.add_con(Constraint::new(
                format!("max_{g}_{t}"),
                vec![(p_idx(g, t), 1.0), (u_idx(g, t), -pmax[g])],
                Sense::Le,
                0.0,
            ));
            // Pmin·u - p ≤ 0
            m.add_con(Constraint::new(
                format!("min_{g}_{t}"),
                vec![(u_idx(g, t), pmin[g]), (p_idx(g, t), -1.0)],
                Sense::Le,
                0.0,
            ));
        }
    }
    for (t, &d) in demand.iter().enumerate() {
        m.add_con(Constraint::new(
            format!("demand{t}"),
            (0..generators).map(|g| (p_idx(g, t), 1.0)).collect(),
            Sense::Ge,
            d,
        ));
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_on_full_dispatch_is_feasible() {
        let g = 3;
        let t = 4;
        let m = unit_commitment(g, t, 17);
        // u = 1 everywhere, p = Pmax everywhere: satisfies max/min links and
        // demand (≤ 0.8 total Pmax by construction).
        let mut x = vec![0.0; m.num_vars()];
        for i in 0..g * t {
            x[i] = 1.0;
        }
        for gi in 0..g {
            for ti in 0..t {
                let p = g * t + gi * t + ti;
                // Recover Pmax from the variable's upper bound.
                x[p] = m.vars[p].ub;
            }
        }
        assert!(
            m.is_integer_feasible(&x, 1e-9),
            "all-on dispatch infeasible"
        );
    }

    #[test]
    fn shape() {
        let m = unit_commitment(2, 3, 5);
        assert_eq!(m.num_vars(), 2 * 3 * 2);
        // 2 link constraints per (g,t) + 1 demand per t.
        assert_eq!(m.num_cons(), 2 * 2 * 3 + 3);
        assert_eq!(m.num_integral(), 6);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn all_off_violates_demand() {
        let m = unit_commitment(2, 2, 1);
        let x = vec![0.0; m.num_vars()];
        assert!(!m.is_feasible(&x, 1e-9));
    }

    #[test]
    fn deterministic() {
        assert_eq!(unit_commitment(2, 2, 9), unit_commitment(2, 2, 9));
    }
}
