//! Random MIP instances with controllable shape and density.
//!
//! The workhorse of the density sweeps (experiment E2) and the matrix-size
//! sweeps (E1/E8): every structural knob the paper's strategy analysis
//! depends on — rows, columns, density, integrality fraction — is a direct
//! parameter. Feasibility is guaranteed by construction: the right-hand
//! side is set to leave slack around a planted feasible point.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Configuration for [`random_mip`].
#[derive(Debug, Clone)]
pub struct RandomMipConfig {
    /// Constraint rows.
    pub rows: usize,
    /// Variables.
    pub cols: usize,
    /// Probability that any matrix entry is nonzero.
    pub density: f64,
    /// Fraction of variables that are integral (binary).
    pub integral_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomMipConfig {
    fn default() -> Self {
        Self {
            rows: 10,
            cols: 20,
            density: 0.5,
            integral_fraction: 0.5,
            seed: 0,
        }
    }
}

/// Uniform draw quantized to multiples of 1/64 (see [`random_mip`] docs).
fn dyadic<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 64.0).round() / 64.0
}

/// Generates a feasible random MIP:
/// maximize `cᵀx` subject to `Ax ≤ b`, `0 ≤ x ≤ 1`, a leading block of
/// binaries followed by continuous variables.
///
/// Entries of `A` are uniform in `[0.5, 2]` (nonnegative keeps `x = 0`
/// trivially feasible); a planted point `x*` with roughly half the
/// variables at 1 sets `b = A x* + slack`, so instances are feasible but
/// the LP bound is not trivially tight.
///
/// All sampled values are quantized to multiples of 1/64: full-mantissa
/// doubles are dyadic rationals with ~2⁵² denominators, which makes the
/// exact-rational verification oracle pay determinant-sized integers for
/// no extra test coverage. Low-precision coefficients are the norm for
/// benchmark corpora (cf. MIPLIB) and keep exact arithmetic polynomial.
///
/// # Panics
/// Panics if `rows == 0`, `cols == 0`, or `density ∉ (0, 1]`, or
/// `integral_fraction ∉ [0, 1]`.
pub fn random_mip(config: &RandomMipConfig) -> MipInstance {
    let RandomMipConfig {
        rows,
        cols,
        density,
        integral_fraction,
        seed,
    } = *config;
    assert!(rows > 0 && cols > 0, "need rows and cols");
    assert!(density > 0.0 && density <= 1.0, "density in (0,1]");
    assert!(
        (0.0..=1.0).contains(&integral_fraction),
        "integral fraction in [0,1]"
    );
    let mut rng = super::rng(seed);

    let n_int = ((cols as f64) * integral_fraction).round() as usize;
    let mut m = MipInstance::new(
        format!("random-{rows}x{cols}-d{density}-i{integral_fraction}-s{seed}"),
        Objective::Maximize,
    );
    for j in 0..cols {
        let obj = dyadic(&mut rng, 1.0, 10.0);
        if j < n_int {
            m.add_var(Variable::binary(format!("z{j}"), obj));
        } else {
            m.add_var(Variable::continuous(format!("x{j}"), 0.0, 1.0, obj));
        }
    }
    // Planted point: ~half the variables at 1.
    let planted: Vec<f64> = (0..cols)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
        .collect();
    for i in 0..rows {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for j in 0..cols {
            if rng.gen_bool(density) {
                coeffs.push((j, dyadic(&mut rng, 0.5, 2.0)));
            }
        }
        if coeffs.is_empty() {
            // Keep every row structurally nonempty.
            let j = rng.gen_range(0..cols);
            coeffs.push((j, dyadic(&mut rng, 0.5, 2.0)));
        }
        let at_planted: f64 = coeffs.iter().map(|&(j, v)| v * planted[j]).sum();
        let slack = dyadic(&mut rng, 0.1, 1.0);
        m.add_con(Constraint::new(
            format!("r{i}"),
            coeffs,
            Sense::Le,
            at_planted + slack,
        ));
    }
    debug_assert!(m.validate().is_ok());
    debug_assert!(m.is_feasible(&planted, 1e-9));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_feasible() {
        let m = random_mip(&RandomMipConfig::default());
        assert!(m.is_integer_feasible(&vec![0.0; m.num_vars()], 1e-9));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn density_knob_works() {
        let sparse = random_mip(&RandomMipConfig {
            rows: 40,
            cols: 40,
            density: 0.05,
            ..Default::default()
        });
        let dense = random_mip(&RandomMipConfig {
            rows: 40,
            cols: 40,
            density: 0.95,
            ..Default::default()
        });
        assert!(sparse.density() < 0.15);
        assert!(dense.density() > 0.85);
    }

    #[test]
    fn integral_fraction_knob_works() {
        let m = random_mip(&RandomMipConfig {
            cols: 20,
            integral_fraction: 0.25,
            ..Default::default()
        });
        assert_eq!(m.num_integral(), 5);
        let pure_lp = random_mip(&RandomMipConfig {
            integral_fraction: 0.0,
            ..Default::default()
        });
        assert_eq!(pure_lp.num_integral(), 0);
    }

    #[test]
    fn deterministic() {
        let c = RandomMipConfig {
            seed: 33,
            ..Default::default()
        };
        assert_eq!(random_mip(&c), random_mip(&c));
    }
}
