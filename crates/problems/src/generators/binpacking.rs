//! Bin-packing instances.
//!
//! Pack `items` of given sizes into the fewest unit-capacity bins:
//! a classic all-binary family with equality assignment rows and knapsack
//! capacity rows — structurally between the GAP and set-cover families, and
//! a traditional branch-and-bound stress test (symmetric, so pruning and
//! incumbents matter).

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a bin-packing instance with `items` items and `bins`
/// candidate bins of capacity `capacity`:
///
/// * `x[i][b]` binary: item `i` placed in bin `b` (index `i * bins + b`);
/// * `y[b]` binary: bin `b` opened (index `items * bins + b`), objective 1;
/// * `Σ_b x[i][b] = 1` per item;
/// * `Σ_i size_i · x[i][b] ≤ capacity · y[b]` per bin.
///
/// Item sizes are uniform in `[0.2, 0.7]·capacity`, so 2–4 items share a
/// bin. `bins` defaults to `items` (always feasible: one item per bin).
///
/// # Panics
/// Panics if `items == 0` or `capacity <= 0`.
pub fn bin_packing(items: usize, capacity: f64, seed: u64) -> MipInstance {
    assert!(items > 0, "need items");
    assert!(capacity > 0.0, "capacity must be positive");
    let bins = items;
    let mut rng = super::rng(seed);
    let sizes: Vec<f64> = (0..items)
        .map(|_| (rng.gen_range(0.2..0.7) * capacity * 100.0).round() / 100.0)
        .collect();

    let mut m = MipInstance::new(format!("binpack-i{items}-s{seed}"), Objective::Minimize);
    for i in 0..items {
        for b in 0..bins {
            m.add_var(Variable::binary(format!("x_{i}_{b}"), 0.0));
        }
    }
    for b in 0..bins {
        m.add_var(Variable::binary(format!("y_{b}"), 1.0));
    }
    let x_idx = |i: usize, b: usize| i * bins + b;
    let y_idx = |b: usize| items * bins + b;

    for i in 0..items {
        m.add_con(Constraint::new(
            format!("place{i}"),
            (0..bins).map(|b| (x_idx(i, b), 1.0)).collect(),
            Sense::Eq,
            1.0,
        ));
    }
    for b in 0..bins {
        let mut coeffs: Vec<(usize, f64)> = (0..items).map(|i| (x_idx(i, b), sizes[i])).collect();
        coeffs.push((y_idx(b), -capacity));
        m.add_con(Constraint::new(format!("cap{b}"), coeffs, Sense::Le, 0.0));
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_item_per_bin_is_feasible() {
        let items = 5;
        let m = bin_packing(items, 1.0, 3);
        let bins = items;
        let mut x = vec![0.0; m.num_vars()];
        for i in 0..items {
            x[i * bins + i] = 1.0; // item i in bin i
            x[items * bins + i] = 1.0; // bin i open
        }
        assert!(m.is_integer_feasible(&x, 1e-9));
        // All-closed is infeasible (items must be placed).
        assert!(!m.is_feasible(&vec![0.0; m.num_vars()], 1e-9));
    }

    #[test]
    fn shape() {
        let m = bin_packing(4, 1.0, 1);
        assert_eq!(m.num_vars(), 4 * 4 + 4);
        assert_eq!(m.num_cons(), 4 + 4);
        assert_eq!(m.num_integral(), m.num_vars());
        assert_eq!(m.objective, Objective::Minimize);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(bin_packing(4, 1.0, 9), bin_packing(4, 1.0, 9));
    }

    #[test]
    fn sizes_force_sharing_constraints_to_bind() {
        // An open bin with two large items must violate capacity.
        let m = bin_packing(3, 1.0, 2);
        let bins = 3;
        let mut x = vec![0.0; m.num_vars()];
        // All three items in bin 0 (sizes ≥ 0.2 each, at least one pair > 1.0
        // with high probability for this seed — assert the generator's sizes
        // sum over capacity).
        for i in 0..3 {
            x[i * bins] = 1.0;
        }
        x[3 * bins] = 1.0;
        assert!(
            !m.is_feasible(&x, 1e-9),
            "three items of ≥0.2..0.7 each should overflow one unit bin"
        );
    }
}
