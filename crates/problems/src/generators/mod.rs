//! Parameterized MIP instance generators.
//!
//! Substitutes for the MIPLIB instances the paper's discussion assumes
//! (MIPLIB files are not redistributable here). Each family is a classic
//! model class from the MIP literature the paper cites (knapsack and
//! flow-shop style combinatorial problems in Section 2.3, unit commitment
//! in the application list of Section 1), with controllable size and
//! density so the experiments can sweep the regimes of Section 3.
//!
//! All generators are deterministic in their `seed`.

pub mod assignment;
pub mod binpacking;
pub mod facility;
pub mod knapsack;
pub mod netflow;
pub mod random;
pub mod setcover;
pub mod ucommit;

pub use assignment::generalized_assignment;
pub use binpacking::bin_packing;
pub use facility::facility_location;
pub use knapsack::knapsack;
pub use netflow::fixed_charge_flow;
pub use random::{random_mip, RandomMipConfig};
pub use setcover::set_cover;
pub use ucommit::unit_commitment;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used by every generator (small, fast, seedable, reproducible).
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
