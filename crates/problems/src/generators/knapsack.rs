//! 0/1 knapsack instances.
//!
//! The earliest GPU branch-and-bound work the paper cites (\[19\], Lalami et
//! al.) targeted knapsack; it is also the canonical "single dense-ish
//! constraint, all-binary" family, which stresses branching rather than LP
//! size.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a 0/1 knapsack instance:
/// maximize `Σ vᵢ xᵢ` subject to `Σ wᵢ xᵢ ≤ ⌊ratio · Σ wᵢ⌋`, `x` binary.
///
/// Weights are uniform in `[10, 100]`; values are weight-correlated
/// (`v = w + U[1, 20]`), which is the standard "weakly correlated" class
/// that defeats pure greedy and forces real branching.
///
/// # Panics
/// Panics if `n == 0` or `ratio` is not in `(0, 1)`.
pub fn knapsack(n: usize, capacity_ratio: f64, seed: u64) -> MipInstance {
    assert!(n > 0, "knapsack needs at least one item");
    assert!(
        capacity_ratio > 0.0 && capacity_ratio < 1.0,
        "capacity ratio must be in (0,1)"
    );
    let mut rng = super::rng(seed);
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(10..=100) as f64).collect();
    let values: Vec<f64> = weights
        .iter()
        .map(|w| w + rng.gen_range(1..=20) as f64)
        .collect();
    let capacity = (capacity_ratio * weights.iter().sum::<f64>()).floor();

    let mut m = MipInstance::new(format!("knapsack-n{n}-s{seed}"), Objective::Maximize);
    for (i, &v) in values.iter().enumerate() {
        m.add_var(Variable::binary(format!("x{i}"), v));
    }
    m.add_con(Constraint::new(
        "capacity",
        weights.iter().copied().enumerate().collect(),
        Sense::Le,
        capacity,
    ));
    debug_assert!(m.validate().is_ok());
    m
}

/// Exhaustive-search optimum of a knapsack instance produced by
/// [`knapsack`]. Only usable for small `n` (≤ ~22); used by tests to verify
/// the branch-and-bound solver end to end.
pub fn knapsack_brute_force(m: &MipInstance) -> f64 {
    let n = m.num_vars();
    assert!(n <= 22, "brute force limited to small instances");
    let mut best = f64::NEG_INFINITY;
    let mut x = vec![0.0; n];
    for bits in 0u32..(1 << n) {
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = ((bits >> i) & 1) as f64;
        }
        if m.is_feasible(&x, 1e-9) {
            best = best.max(m.objective_value(&x));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = knapsack(10, 0.5, 7);
        let b = knapsack(10, 0.5, 7);
        assert_eq!(a, b);
        let c = knapsack(10, 0.5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn structure_is_single_le_constraint_all_binary() {
        let m = knapsack(15, 0.4, 1);
        assert_eq!(m.num_cons(), 1);
        assert_eq!(m.num_integral(), 15);
        assert_eq!(m.cons[0].sense, Sense::Le);
        assert!(m.validate().is_ok());
        // All-zeros is always feasible.
        assert!(m.is_integer_feasible(&[0.0; 15], 1e-9));
        // All-ones is infeasible (capacity strictly below total weight).
        assert!(!m.is_feasible(&[1.0; 15], 1e-9));
    }

    #[test]
    fn brute_force_on_tiny_instance() {
        let m = knapsack(8, 0.5, 3);
        let best = knapsack_brute_force(&m);
        assert!(best.is_finite());
        assert!(best > 0.0);
    }
}
