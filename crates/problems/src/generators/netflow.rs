//! Fixed-charge network flow instances.
//!
//! Single-commodity flow from a source to a sink on a random strongly
//! connected digraph, where using an arc incurs a fixed charge (binary) in
//! addition to per-unit flow cost (continuous). Flow conservation gives
//! equality rows, arc capacity linking gives the classic big-M structure —
//! a very sparse mixed family that complements the dense knapsack.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a fixed-charge flow instance on `nodes` nodes.
///
/// The graph is a directed ring `0 → 1 → … → 0` (guaranteeing a path from
/// the source to every node) plus `extra_arcs` random chords. Node 0 is the
/// source with `supply` units; the last node is the sink. Variables per arc
/// `a`: continuous flow `f_a ∈ [0, cap_a]` with cost `c_a`, binary use
/// indicator `y_a` with fixed charge; linking `f_a − cap_a y_a ≤ 0`.
///
/// # Panics
/// Panics if `nodes < 2`.
pub fn fixed_charge_flow(nodes: usize, extra_arcs: usize, supply: f64, seed: u64) -> MipInstance {
    assert!(nodes >= 2, "need at least source and sink");
    let mut rng = super::rng(seed);

    // Arc list: ring then chords (self-loops and duplicate chords avoided).
    let mut arcs: Vec<(usize, usize)> = (0..nodes).map(|i| (i, (i + 1) % nodes)).collect();
    let mut tries = 0;
    while arcs.len() < nodes + extra_arcs && tries < 50 * (extra_arcs + 1) {
        tries += 1;
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u != v && !arcs.contains(&(u, v)) {
            arcs.push((u, v));
        }
    }
    // Capacities comfortably above supply on the ring so routing the whole
    // supply along the ring is always feasible.
    let caps: Vec<f64> = arcs
        .iter()
        .map(|_| supply * rng.gen_range(1.2..3.0))
        .collect();
    let flow_cost: Vec<f64> = arcs.iter().map(|_| rng.gen_range(1..=10) as f64).collect();
    let fixed_cost: Vec<f64> = arcs
        .iter()
        .map(|_| rng.gen_range(20..=100) as f64)
        .collect();

    let mut m = MipInstance::new(
        format!("netflow-n{nodes}-a{}-s{seed}", arcs.len()),
        Objective::Minimize,
    );
    let n_arcs = arcs.len();
    // Flow variables first, then indicators.
    for (a, &(u, v)) in arcs.iter().enumerate() {
        m.add_var(Variable::continuous(
            format!("f_{u}_{v}_{a}"),
            0.0,
            caps[a],
            flow_cost[a],
        ));
    }
    for (a, &(u, v)) in arcs.iter().enumerate() {
        m.add_var(Variable::binary(format!("y_{u}_{v}_{a}"), fixed_cost[a]));
    }

    let sink = nodes - 1;
    // Flow conservation: out − in = supply at source, −supply at sink, 0 else.
    for node in 0..nodes {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for (a, &(u, v)) in arcs.iter().enumerate() {
            if u == node {
                coeffs.push((a, 1.0));
            }
            if v == node {
                coeffs.push((a, -1.0));
            }
        }
        let rhs = if node == 0 {
            supply
        } else if node == sink {
            -supply
        } else {
            0.0
        };
        m.add_con(Constraint::new(
            format!("bal{node}"),
            coeffs,
            Sense::Eq,
            rhs,
        ));
    }
    // Linking: f_a ≤ cap_a · y_a.
    for a in 0..n_arcs {
        m.add_con(Constraint::new(
            format!("link{a}"),
            vec![(a, 1.0), (n_arcs + a, -caps[a])],
            Sense::Le,
            0.0,
        ));
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routing_is_feasible() {
        let nodes = 5;
        let supply = 10.0;
        let m = fixed_charge_flow(nodes, 3, supply, 21);
        // Route the whole supply along ring arcs 0..nodes-1 (the first
        // `nodes` arcs are the ring, and arc nodes-1 closes the cycle back to
        // 0, which we leave unused).
        let n_arcs = (m.num_vars()) / 2;
        let mut x = vec![0.0; m.num_vars()];
        for a in 0..nodes - 1 {
            x[a] = supply;
            x[n_arcs + a] = 1.0;
        }
        assert!(
            m.is_integer_feasible(&x, 1e-9),
            "ring routing should be feasible"
        );
    }

    #[test]
    fn sparse_structure() {
        let m = fixed_charge_flow(20, 10, 5.0, 2);
        assert!(m.density() < 0.2, "flow instances must be sparse");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            fixed_charge_flow(6, 2, 4.0, 7),
            fixed_charge_flow(6, 2, 4.0, 7)
        );
    }

    #[test]
    fn zero_flow_infeasible_with_positive_supply() {
        let m = fixed_charge_flow(4, 0, 3.0, 1);
        assert!(!m.is_feasible(&vec![0.0; m.num_vars()], 1e-9));
    }
}
