//! Generalized assignment problem (GAP) instances.
//!
//! Assign every task to exactly one agent, respecting per-agent capacity,
//! maximizing profit. A mixed equality/inequality family whose LP
//! relaxations are naturally degenerate — good stress for the dual simplex
//! and for branching-rule comparisons.

use crate::instance::{Constraint, MipInstance, Objective, Sense, Variable};
use rand::Rng;

/// Generates a GAP instance with `agents × tasks` binary assignment
/// variables `x[a][t]`:
///
/// * `Σ_a x[a][t] = 1` for every task `t` (each task assigned once);
/// * `Σ_t w[a][t] x[a][t] ≤ cap_a` for every agent `a`;
/// * maximize `Σ p[a][t] x[a][t]`.
///
/// Capacities are sized so the balanced round-robin assignment fits with a
/// 10% margin — instances are always feasible, but capacities bind.
///
/// # Panics
/// Panics if `agents == 0` or `tasks == 0`.
pub fn generalized_assignment(agents: usize, tasks: usize, seed: u64) -> MipInstance {
    assert!(agents > 0 && tasks > 0, "need agents and tasks");
    let mut rng = super::rng(seed);

    let weights: Vec<Vec<f64>> = (0..agents)
        .map(|_| (0..tasks).map(|_| rng.gen_range(5..=25) as f64).collect())
        .collect();
    let profits: Vec<Vec<f64>> = (0..agents)
        .map(|_| (0..tasks).map(|_| rng.gen_range(10..=50) as f64).collect())
        .collect();
    // Size capacities so the balanced round-robin assignment (task t → agent
    // t mod agents) fits with a 10% margin: instances are feasible by
    // construction while capacities still bind.
    let mut rr_load = vec![0.0; agents];
    for t in 0..tasks {
        let a = t % agents;
        rr_load[a] += weights[a][t];
    }
    let capacity = (1.1 * rr_load.iter().copied().fold(0.0, f64::max)).ceil();

    let mut m = MipInstance::new(format!("gap-{agents}x{tasks}-s{seed}"), Objective::Maximize);
    // Variable index: a * tasks + t.
    for a in 0..agents {
        for t in 0..tasks {
            m.add_var(Variable::binary(format!("x_{a}_{t}"), profits[a][t]));
        }
    }
    for t in 0..tasks {
        m.add_con(Constraint::new(
            format!("assign{t}"),
            (0..agents).map(|a| (a * tasks + t, 1.0)).collect(),
            Sense::Eq,
            1.0,
        ));
    }
    for a in 0..agents {
        m.add_con(Constraint::new(
            format!("cap{a}"),
            (0..tasks).map(|t| (a * tasks + t, weights[a][t])).collect(),
            Sense::Le,
            capacity,
        ));
    }
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_validation() {
        let m = generalized_assignment(3, 5, 11);
        assert_eq!(m.num_vars(), 15);
        assert_eq!(m.num_cons(), 5 + 3);
        assert_eq!(m.num_integral(), 15);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn round_robin_feasible_by_construction() {
        // Capacities are sized from the round-robin load, so this assignment
        // must be feasible for every seed.
        for seed in 0..10 {
            let agents = 3;
            let tasks = 7;
            let m = generalized_assignment(agents, tasks, seed);
            let mut x = vec![0.0; agents * tasks];
            for t in 0..tasks {
                x[(t % agents) * tasks + t] = 1.0;
            }
            assert!(m.is_integer_feasible(&x, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generalized_assignment(2, 4, 3),
            generalized_assignment(2, 4, 3)
        );
    }
}
