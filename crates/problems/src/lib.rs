//! # gmip-problems
//!
//! MIP instance model, generators, and MPS I/O for the `gmip` stack.
//!
//! * [`instance`] — the mixed integer program representation (the paper's
//!   Equation 1 generalized with senses, bounds, and direction);
//! * [`generators`] — deterministic, parameterized instance families
//!   (knapsack, set cover, generalized assignment, unit commitment,
//!   fixed-charge flow, random) standing in for MIPLIB;
//! * [`mps`] — an MPS-subset reader/writer for interchange;
//! * [`catalog`] — named tiny instances (Figure 1's tree, textbook LP/MIP,
//!   pathological cases) and the standard small benchmark suite.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod generators;
pub mod instance;
pub mod mps;

pub use instance::{Constraint, InstanceError, MipInstance, Objective, Sense, VarType, Variable};
