//! MPS-subset reader and writer.
//!
//! Covers the fixed sections used by MIPLIB-style files: `NAME`, `ROWS`,
//! `COLUMNS` (with `MARKER`/`INTORG`/`INTEND` integrality markers), `RHS`,
//! `BOUNDS` (`UP`, `LO`, `FX`, `BV`), `OBJSENSE`, and `ENDATA`. Free-format
//! (whitespace-separated) parsing; ranges and negative-row types are not
//! supported and are reported as errors rather than silently dropped.

use crate::instance::{Constraint, MipInstance, Objective, Sense, VarType, Variable};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from MPS parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum MpsError {
    /// A line could not be interpreted in the current section.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The file ended before `ENDATA`.
    UnexpectedEof,
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::Parse { line, message } => write!(f, "MPS line {line}: {message}"),
            MpsError::UnexpectedEof => write!(f, "MPS file ended before ENDATA"),
        }
    }
}

impl std::error::Error for MpsError {}

/// Serializes an instance to MPS text.
pub fn write_mps(m: &MipInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          {}", m.name);
    let _ = writeln!(out, "OBJSENSE");
    let _ = writeln!(
        out,
        "    {}",
        match m.objective {
            Objective::Maximize => "MAX",
            Objective::Minimize => "MIN",
        }
    );
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  OBJ");
    for c in &m.cons {
        let tag = match c.sense {
            Sense::Le => 'L',
            Sense::Ge => 'G',
            Sense::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  {}", c.name);
    }
    let _ = writeln!(out, "COLUMNS");
    // Per-column entries: objective then constraint coefficients.
    let mut by_col: Vec<Vec<(String, f64)>> = vec![Vec::new(); m.num_vars()];
    for (j, v) in m.vars.iter().enumerate() {
        if v.obj != 0.0 {
            by_col[j].push(("OBJ".to_string(), v.obj));
        }
    }
    for c in &m.cons {
        for &(j, v) in &c.coeffs {
            by_col[j].push((c.name.clone(), v));
        }
    }
    let mut in_int = false;
    for (j, v) in m.vars.iter().enumerate() {
        let want_int = v.ty.is_integral();
        if want_int && !in_int {
            let _ = writeln!(
                out,
                "    MARKER                 'MARKER'                 'INTORG'"
            );
            in_int = true;
        }
        if !want_int && in_int {
            let _ = writeln!(
                out,
                "    MARKER                 'MARKER'                 'INTEND'"
            );
            in_int = false;
        }
        for (row, val) in &by_col[j] {
            let _ = writeln!(out, "    {:<10} {:<10} {}", v.name, row, val);
        }
        if by_col[j].is_empty() {
            // Emit a zero objective entry so the column (variable) exists.
            let _ = writeln!(out, "    {:<10} {:<10} 0", v.name, "OBJ");
        }
    }
    if in_int {
        let _ = writeln!(
            out,
            "    MARKER                 'MARKER'                 'INTEND'"
        );
    }
    let _ = writeln!(out, "RHS");
    for c in &m.cons {
        if c.rhs != 0.0 {
            let _ = writeln!(out, "    RHS       {:<10} {}", c.name, c.rhs);
        }
    }
    let _ = writeln!(out, "BOUNDS");
    for v in &m.vars {
        match v.ty {
            VarType::Binary => {
                let _ = writeln!(out, " BV BND       {}", v.name);
            }
            _ => {
                if v.lb == v.ub {
                    let _ = writeln!(out, " FX BND       {:<10} {}", v.name, v.lb);
                } else {
                    if v.lb != 0.0 && v.lb.is_finite() {
                        let _ = writeln!(out, " LO BND       {:<10} {}", v.name, v.lb);
                    }
                    if v.ub.is_finite() {
                        let _ = writeln!(out, " UP BND       {:<10} {}", v.name, v.ub);
                    }
                }
            }
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    ObjSense,
    Rows,
    Columns,
    Rhs,
    Bounds,
}

/// Parses MPS text into an instance.
pub fn read_mps(text: &str) -> Result<MipInstance, MpsError> {
    let mut name = String::from("unnamed");
    let mut objective = Objective::Minimize; // MPS default
    let mut section = Section::None;
    // Row name -> (sense or objective marker).
    let mut row_order: Vec<(String, Option<Sense>)> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    // Column name -> index; collected coefficients.
    let mut col_index: HashMap<String, usize> = HashMap::new();
    let mut cols: Vec<(String, bool)> = Vec::new(); // (name, integral)
    let mut obj_coeffs: HashMap<usize, f64> = HashMap::new();
    let mut entries: Vec<(usize, usize, f64)> = Vec::new(); // (row, col, value)
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut bounds: HashMap<usize, (Option<f64>, Option<f64>, bool)> = HashMap::new(); // (lb, ub, binary)
    let mut in_int = false;
    let mut saw_endata = false;

    let err = |line: usize, message: String| MpsError::Parse { line, message };

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        if raw.trim().is_empty() || raw.starts_with('*') {
            continue;
        }
        let is_header = !raw.starts_with(' ') && !raw.starts_with('\t');
        let fields: Vec<&str> = raw.split_whitespace().collect();
        if is_header {
            match fields[0] {
                "NAME" => {
                    if fields.len() > 1 {
                        name = fields[1].to_string();
                    }
                    section = Section::None;
                }
                "OBJSENSE" => section = Section::ObjSense,
                "ROWS" => section = Section::Rows,
                "COLUMNS" => section = Section::Columns,
                "RHS" => section = Section::Rhs,
                "BOUNDS" => section = Section::Bounds,
                "RANGES" => {
                    return Err(err(lineno, "RANGES section not supported".into()));
                }
                "ENDATA" => {
                    saw_endata = true;
                    break;
                }
                other => return Err(err(lineno, format!("unknown section {other}"))),
            }
            continue;
        }
        match section {
            Section::None => return Err(err(lineno, "data before any section".into())),
            Section::ObjSense => {
                objective = match fields[0].to_ascii_uppercase().as_str() {
                    "MAX" | "MAXIMIZE" => Objective::Maximize,
                    "MIN" | "MINIMIZE" => Objective::Minimize,
                    other => return Err(err(lineno, format!("bad OBJSENSE {other}"))),
                };
            }
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(err(lineno, "ROWS line needs 2 fields".into()));
                }
                let sense = match fields[0] {
                    "N" => None,
                    "L" => Some(Sense::Le),
                    "G" => Some(Sense::Ge),
                    "E" => Some(Sense::Eq),
                    other => return Err(err(lineno, format!("bad row type {other}"))),
                };
                let rname = fields[1].to_string();
                if sense.is_some() {
                    row_index.insert(rname.clone(), row_order.len());
                }
                row_order.push((rname, sense));
            }
            Section::Columns => {
                // Marker detection must match the quoted keyword exactly: a
                // column or row legitimately named e.g. "MARKER_COST" would
                // otherwise be swallowed as a marker line (and `raw.contains`
                // would misfire on names containing INTORG/INTEND too).
                if fields.len() >= 3 && fields[1] == "'MARKER'" {
                    if fields[2..].contains(&"'INTORG'") {
                        in_int = true;
                    } else if fields[2..].contains(&"'INTEND'") {
                        in_int = false;
                    } else {
                        return Err(err(lineno, "MARKER without INTORG/INTEND".into()));
                    }
                    continue;
                }
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(err(lineno, "COLUMNS line needs name + pairs".into()));
                }
                let cname = fields[0];
                let j = *col_index.entry(cname.to_string()).or_insert_with(|| {
                    cols.push((cname.to_string(), in_int));
                    cols.len() - 1
                });
                for pair in fields[1..].chunks(2) {
                    let rname = pair[0];
                    let val: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, format!("bad value {}", pair[1])))?;
                    if rname == "OBJ" || row_order.iter().any(|(n, s)| n == rname && s.is_none()) {
                        *obj_coeffs.entry(j).or_insert(0.0) += val;
                    } else if let Some(&ri) = row_index.get(rname) {
                        // Row position among constraint rows only.
                        let ci = row_order[..ri].iter().filter(|(_, s)| s.is_some()).count();
                        entries.push((ci, j, val));
                    } else {
                        return Err(err(lineno, format!("unknown row {rname}")));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(err(lineno, "RHS line needs set name + pairs".into()));
                }
                for pair in fields[1..].chunks(2) {
                    let rname = pair[0];
                    let val: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, format!("bad value {}", pair[1])))?;
                    if let Some(&ri) = row_index.get(rname) {
                        let ci = row_order[..ri].iter().filter(|(_, s)| s.is_some()).count();
                        rhs.insert(ci, val);
                    } else {
                        return Err(err(lineno, format!("unknown RHS row {rname}")));
                    }
                }
            }
            Section::Bounds => {
                if fields.len() < 3 {
                    return Err(err(lineno, "BOUNDS line too short".into()));
                }
                let btype = fields[0];
                let vname = fields[2];
                let j = *col_index
                    .get(vname)
                    .ok_or_else(|| err(lineno, format!("unknown column {vname}")))?;
                let slot = bounds.entry(j).or_insert((None, None, false));
                match btype {
                    "UP" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| err(lineno, "UP needs a value".into()))?
                            .parse()
                            .map_err(|_| err(lineno, "bad bound value".into()))?;
                        slot.1 = Some(v);
                    }
                    "LO" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| err(lineno, "LO needs a value".into()))?
                            .parse()
                            .map_err(|_| err(lineno, "bad bound value".into()))?;
                        slot.0 = Some(v);
                    }
                    "FX" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| err(lineno, "FX needs a value".into()))?
                            .parse()
                            .map_err(|_| err(lineno, "bad bound value".into()))?;
                        slot.0 = Some(v);
                        slot.1 = Some(v);
                    }
                    "BV" => slot.2 = true,
                    other => return Err(err(lineno, format!("bound type {other} unsupported"))),
                }
            }
        }
    }
    if !saw_endata {
        return Err(MpsError::UnexpectedEof);
    }

    // Assemble the instance.
    let mut m = MipInstance::new(name, objective);
    for (j, (cname, integral)) in cols.iter().enumerate() {
        let b = bounds.get(&j).copied().unwrap_or((None, None, false));
        let obj = obj_coeffs.get(&j).copied().unwrap_or(0.0);
        let var = if b.2 {
            Variable::binary(cname.clone(), obj)
        } else if *integral {
            Variable::integer(cname.clone(), b.0.unwrap_or(0.0), b.1.unwrap_or(1.0), obj)
        } else {
            Variable::continuous(
                cname.clone(),
                b.0.unwrap_or(0.0),
                b.1.unwrap_or(f64::INFINITY),
                obj,
            )
        };
        m.add_var(var);
    }
    let con_rows: Vec<(String, Sense)> = row_order
        .into_iter()
        .filter_map(|(n, s)| s.map(|s| (n, s)))
        .collect();
    let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); con_rows.len()];
    for (ci, j, v) in entries {
        per_row[ci].push((j, v));
    }
    for (ci, (cname, sense)) in con_rows.into_iter().enumerate() {
        m.add_con(Constraint::new(
            cname,
            std::mem::take(&mut per_row[ci]),
            sense,
            rhs.get(&ci).copied().unwrap_or(0.0),
        ));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{knapsack, set_cover, unit_commitment};

    fn roundtrip(m: &MipInstance) -> MipInstance {
        let text = write_mps(m);
        read_mps(&text).unwrap_or_else(|e| panic!("roundtrip failed: {e}\n{text}"))
    }

    fn assert_equivalent(a: &MipInstance, b: &MipInstance) {
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.num_vars(), b.num_vars());
        assert_eq!(a.num_cons(), b.num_cons());
        for (va, vb) in a.vars.iter().zip(&b.vars) {
            assert_eq!(va.name, vb.name);
            assert_eq!(va.ty.is_integral(), vb.ty.is_integral());
            assert_eq!(va.lb, vb.lb, "lb of {}", va.name);
            assert_eq!(va.ub, vb.ub, "ub of {}", va.name);
            assert_eq!(va.obj, vb.obj);
        }
        for (ca, cb) in a.cons.iter().zip(&b.cons) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.sense, cb.sense);
            assert_eq!(ca.rhs, cb.rhs);
            assert_eq!(ca.coeffs, cb.coeffs);
        }
    }

    #[test]
    fn knapsack_roundtrip() {
        let m = knapsack(12, 0.5, 4);
        assert_equivalent(&m, &roundtrip(&m));
    }

    #[test]
    fn setcover_roundtrip() {
        let m = set_cover(8, 6, 0.4, 1);
        assert_equivalent(&m, &roundtrip(&m));
    }

    #[test]
    fn mixed_instance_roundtrip() {
        let m = unit_commitment(2, 2, 3);
        assert_equivalent(&m, &roundtrip(&m));
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let bad = "ROWS\n X  R0\nENDATA\n";
        match read_mps(bad) {
            Err(MpsError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_endata() {
        assert_eq!(
            read_mps("NAME t\nROWS\n N OBJ\n"),
            Err(MpsError::UnexpectedEof)
        );
    }

    #[test]
    fn ranges_unsupported() {
        let text = "NAME t\nRANGES\nENDATA\n";
        assert!(matches!(read_mps(text), Err(MpsError::Parse { .. })));
    }

    #[test]
    fn objsense_default_is_minimize() {
        let text = "NAME t\nROWS\n N  OBJ\n L  c0\nCOLUMNS\n    x         OBJ       2 c0 1\nRHS\n    RHS       c0        5\nENDATA\n";
        let m = read_mps(text).unwrap();
        assert_eq!(m.objective, Objective::Minimize);
        assert_eq!(m.num_vars(), 1);
        assert_eq!(m.vars[0].obj, 2.0);
        assert_eq!(m.cons[0].rhs, 5.0);
        assert_eq!(m.cons[0].coeffs, vec![(0, 1.0)]);
    }
}
