//! The MIP instance model.
//!
//! Represents the paper's Equation (1):
//!
//! ```text
//! maximize  cᵀx   subject to  Ax ≤ b,   x = {x_r, x_z},
//! x_r real, x_z integer
//! ```
//!
//! generalized with ≥/= senses, variable bounds, and a minimize/maximize
//! flag so that standard model families (set cover, unit commitment) are
//! expressible directly. Lowering to the equality standard form with slack
//! variables ("the inequality of Ax ≤ b can be replaced with equality ...
//! with the introduction of variables y ≥ 0") happens in `gmip-lp`.

use gmip_linalg::{CooMatrix, CsrMatrix, DenseMatrix};

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Continuous (the `x_r` block of Equation 1).
    Continuous,
    /// General integer (the `x_z` block).
    Integer,
    /// 0/1 integer.
    Binary,
}

impl VarType {
    /// Whether the variable carries an integrality constraint.
    pub fn is_integral(self) -> bool {
        !matches!(self, VarType::Continuous)
    }
}

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize `cᵀx` (the paper's canonical form).
    Maximize,
    /// Minimize `cᵀx`.
    Minimize,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Display name (also used by the MPS writer).
    pub name: String,
    /// Variable kind.
    pub ty: VarType,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
    /// Objective coefficient.
    pub obj: f64,
}

impl Variable {
    /// A continuous variable on `[lb, ub]`.
    pub fn continuous(name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> Self {
        Self {
            name: name.into(),
            ty: VarType::Continuous,
            lb,
            ub,
            obj,
        }
    }

    /// A binary variable.
    pub fn binary(name: impl Into<String>, obj: f64) -> Self {
        Self {
            name: name.into(),
            ty: VarType::Binary,
            lb: 0.0,
            ub: 1.0,
            obj,
        }
    }

    /// A general integer variable on `[lb, ub]`.
    pub fn integer(name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> Self {
        Self {
            name: name.into(),
            ty: VarType::Integer,
            lb,
            ub,
            obj,
        }
    }
}

/// A linear constraint `Σ coeffs·x  (sense)  rhs`, with coefficients stored
/// sparsely as `(var_index, value)` pairs sorted by index.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Display name.
    pub name: String,
    /// Sorted sparse coefficients.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Builds a constraint, sorting and merging its coefficients.
    pub fn new(
        name: impl Into<String>,
        mut coeffs: Vec<(usize, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> Self {
        coeffs.sort_unstable_by_key(|&(j, _)| j);
        coeffs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        coeffs.retain(|&(_, v)| v != 0.0);
        Self {
            name: name.into(),
            coeffs,
            sense,
            rhs,
        }
    }

    /// Left-hand-side value at point `x`.
    pub fn lhs(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(j, v)| v * x[j]).sum()
    }

    /// Whether the constraint holds at `x` within tolerance `tol`.
    pub fn satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs(x);
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Ge => lhs >= self.rhs - tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Errors raised by instance validation.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A constraint references a variable index that does not exist.
    BadVarIndex {
        /// Constraint index.
        constraint: usize,
        /// Offending variable index.
        var: usize,
    },
    /// A variable has `lb > ub`.
    EmptyBoundRange {
        /// Variable index.
        var: usize,
    },
    /// A binary variable's bounds are outside `[0, 1]`.
    BadBinaryBounds {
        /// Variable index.
        var: usize,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::BadVarIndex { constraint, var } => {
                write!(
                    f,
                    "constraint {constraint} references missing variable {var}"
                )
            }
            InstanceError::EmptyBoundRange { var } => {
                write!(f, "variable {var} has lb > ub")
            }
            InstanceError::BadBinaryBounds { var } => {
                write!(f, "binary variable {var} has bounds outside [0,1]")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A complete mixed integer programming instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MipInstance {
    /// Instance name.
    pub name: String,
    /// Optimization direction.
    pub objective: Objective,
    /// Decision variables.
    pub vars: Vec<Variable>,
    /// Linear constraints.
    pub cons: Vec<Constraint>,
}

impl MipInstance {
    /// Creates an empty instance.
    pub fn new(name: impl Into<String>, objective: Objective) -> Self {
        Self {
            name: name.into(),
            objective,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Adds a variable, returning its index.
    pub fn add_var(&mut self, v: Variable) -> usize {
        self.vars.push(v);
        self.vars.len() - 1
    }

    /// Adds a constraint, returning its index.
    pub fn add_con(&mut self, c: Constraint) -> usize {
        self.cons.push(c);
        self.cons.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Number of integral (integer or binary) variables.
    pub fn num_integral(&self) -> usize {
        self.vars.iter().filter(|v| v.ty.is_integral()).count()
    }

    /// Indices of integral variables.
    pub fn integral_indices(&self) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.ty.is_integral())
            .map(|(i, _)| i)
            .collect()
    }

    /// Structural density of the constraint matrix: `nnz / (m·n)`.
    pub fn density(&self) -> f64 {
        let nnz: usize = self.cons.iter().map(|c| c.coeffs.len()).sum();
        let cells = self.num_cons() * self.num_vars();
        if cells == 0 {
            0.0
        } else {
            nnz as f64 / cells as f64
        }
    }

    /// Validates index ranges and bound sanity.
    pub fn validate(&self) -> Result<(), InstanceError> {
        let n = self.num_vars();
        for (ci, c) in self.cons.iter().enumerate() {
            for &(j, _) in &c.coeffs {
                if j >= n {
                    return Err(InstanceError::BadVarIndex {
                        constraint: ci,
                        var: j,
                    });
                }
            }
        }
        for (vi, v) in self.vars.iter().enumerate() {
            if v.lb > v.ub {
                return Err(InstanceError::EmptyBoundRange { var: vi });
            }
            if v.ty == VarType::Binary && (v.lb < -1e-9 || v.ub > 1.0 + 1e-9) {
                return Err(InstanceError::BadBinaryBounds { var: vi });
            }
        }
        Ok(())
    }

    /// Objective value at point `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Whether `x` satisfies every constraint and bound within `tol`
    /// (ignoring integrality).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
        }
        self.cons.iter().all(|c| c.satisfied(x, tol))
    }

    /// Whether `x` additionally satisfies integrality within `tol`.
    pub fn is_integer_feasible(&self, x: &[f64], tol: f64) -> bool {
        if !self.is_feasible(x, tol) {
            return false;
        }
        self.vars
            .iter()
            .zip(x)
            .all(|(v, &xi)| !v.ty.is_integral() || (xi - xi.round()).abs() <= tol)
    }

    /// Whether a candidate objective `a` is better than incumbent `b` under
    /// this instance's direction.
    pub fn is_better(&self, a: f64, b: f64) -> bool {
        match self.objective {
            Objective::Maximize => a > b,
            Objective::Minimize => a < b,
        }
    }

    /// The worst possible objective (starting incumbent value).
    pub fn worst_objective(&self) -> f64 {
        match self.objective {
            Objective::Maximize => f64::NEG_INFINITY,
            Objective::Minimize => f64::INFINITY,
        }
    }

    /// Dense constraint matrix `A` (one row per constraint).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(self.num_cons(), self.num_vars());
        for (i, c) in self.cons.iter().enumerate() {
            for &(j, v) in &c.coeffs {
                a.set(i, j, v);
            }
        }
        a
    }

    /// Sparse (CSR) constraint matrix.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.num_cons(), self.num_vars());
        for (i, c) in self.cons.iter().enumerate() {
            for &(j, v) in &c.coeffs {
                coo.push(i, j, v).expect("validated indices");
            }
        }
        coo.to_csr()
    }

    /// Objective coefficient vector.
    pub fn obj_coeffs(&self) -> Vec<f64> {
        self.vars.iter().map(|v| v.obj).collect()
    }

    /// Right-hand-side vector.
    pub fn rhs(&self) -> Vec<f64> {
        self.cons.iter().map(|c| c.rhs).collect()
    }

    /// Approximate bytes of the dense LP-relaxation matrix — the quantity
    /// Section 3 compares against device memory when choosing a strategy.
    pub fn dense_matrix_bytes(&self) -> usize {
        self.num_cons() * self.num_vars() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// max x + y s.t. x + y <= 1.5, x,y binary → optimum 1.
    fn tiny() -> MipInstance {
        let mut m = MipInstance::new("tiny", Objective::Maximize);
        m.add_var(Variable::binary("x", 1.0));
        m.add_var(Variable::binary("y", 1.0));
        m.add_con(Constraint::new(
            "c0",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Le,
            1.5,
        ));
        m
    }

    #[test]
    fn construction_and_counts() {
        let m = tiny();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        assert_eq!(m.num_integral(), 2);
        assert_eq!(m.integral_indices(), vec![0, 1]);
        assert!(m.validate().is_ok());
        assert_eq!(m.density(), 1.0);
        assert_eq!(m.dense_matrix_bytes(), 16);
    }

    #[test]
    fn feasibility_checks() {
        let m = tiny();
        assert!(m.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!m.is_integer_feasible(&[1.0, 0.5], 1e-9));
        assert!(m.is_integer_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9)); // violates c0
        assert!(!m.is_feasible(&[1.5, 0.0], 1e-9)); // violates ub
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong length
    }

    #[test]
    fn objective_and_direction() {
        let m = tiny();
        assert_eq!(m.objective_value(&[1.0, 0.0]), 1.0);
        assert!(m.is_better(2.0, 1.0));
        assert_eq!(m.worst_objective(), f64::NEG_INFINITY);
        let mut mm = tiny();
        mm.objective = Objective::Minimize;
        assert!(mm.is_better(1.0, 2.0));
        assert_eq!(mm.worst_objective(), f64::INFINITY);
    }

    #[test]
    fn constraint_senses() {
        let ge = Constraint::new("g", vec![(0, 1.0)], Sense::Ge, 2.0);
        assert!(ge.satisfied(&[2.5], 1e-9));
        assert!(!ge.satisfied(&[1.0], 1e-9));
        let eq = Constraint::new("e", vec![(0, 1.0)], Sense::Eq, 2.0);
        assert!(eq.satisfied(&[2.0], 1e-9));
        assert!(!eq.satisfied(&[2.1], 1e-9));
    }

    #[test]
    fn constraint_merges_duplicates() {
        let c = Constraint::new(
            "c",
            vec![(1, 2.0), (0, 1.0), (1, 3.0), (2, 0.0)],
            Sense::Le,
            1.0,
        );
        assert_eq!(c.coeffs, vec![(0, 1.0), (1, 5.0)]);
    }

    #[test]
    fn validation_errors() {
        let mut m = tiny();
        m.add_con(Constraint::new("bad", vec![(9, 1.0)], Sense::Le, 0.0));
        assert!(matches!(
            m.validate(),
            Err(InstanceError::BadVarIndex {
                constraint: 1,
                var: 9
            })
        ));

        let mut m2 = MipInstance::new("b", Objective::Maximize);
        m2.add_var(Variable::continuous("x", 1.0, 0.0, 0.0));
        assert!(matches!(
            m2.validate(),
            Err(InstanceError::EmptyBoundRange { var: 0 })
        ));

        let mut m3 = MipInstance::new("b2", Objective::Maximize);
        let mut v = Variable::binary("z", 0.0);
        v.ub = 2.0;
        m3.add_var(v);
        assert!(matches!(
            m3.validate(),
            Err(InstanceError::BadBinaryBounds { var: 0 })
        ));
    }

    #[test]
    fn matrix_exports_agree() {
        let m = tiny();
        let dense = m.to_dense();
        let csr = m.to_csr();
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(m.obj_coeffs(), vec![1.0, 1.0]);
        assert_eq!(m.rhs(), vec![1.5]);
    }
}
