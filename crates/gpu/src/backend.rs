//! The [`Accelerator`] trait: fused kernel-class dispatch as an interface,
//! with a cost-model-only simulator and a natively *executing* backend.
//!
//! Every fused launch the wave engines issue goes through this trait. Both
//! implementations charge the **same** simulated nanoseconds through the
//! same [`GpuDevice`] — the simulator stays the deterministic oracle and
//! the only source of traced time. They differ in *who runs the lane
//! numerics*:
//!
//! * [`SimAccelerator`] runs each lane body sequentially on the calling
//!   thread (exactly the pre-trait host loops), then applies the charge.
//! * [`NativeAccelerator`] fans the lane bodies across a persistent
//!   [`rayon::ThreadPool`] — one parallel dispatch per kernel class per
//!   superstep — and measures real wall-clock per class into a `wall.*`
//!   metric family. Within a lane the floating-point operation order is
//!   untouched (the bodies in [`crate::kernels`] are shared verbatim), so
//!   lane outcomes are bit-identical across backends and thread counts;
//!   only wall-clock varies, and wall-clock never enters traces or
//!   simulated `_ns` totals.

use crate::device::GpuDevice;
use crate::kernels::{self, AxpyLane, SpmvLane, SpmvTLane};
use crate::stream::StreamId;
use gmip_linalg::CsrMatrix;
use gmip_trace::{names, MetricsRegistry};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Which executing backend an [`crate::Accel`] dispatches lane bodies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Sequential host execution + cost-model charges (the oracle).
    #[default]
    Sim,
    /// Lane-parallel execution on the vendored rayon pool. `threads == 0`
    /// sizes the pool from `RAYON_NUM_THREADS` / available parallelism.
    Native {
        /// Worker threads (0 = auto).
        threads: usize,
    },
}

impl BackendKind {
    /// Parses a CLI `--backend` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(Self::Sim),
            "native" => Some(Self::Native { threads: 0 }),
            _ => None,
        }
    }

    /// Stable label for reports and errors.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Sim => "sim",
            Self::Native { .. } => "native",
        }
    }
}

/// One simulated cost charge a fused dispatch applies after executing its
/// lane bodies: the same `(flops, bytes)` pairs the pre-trait code handed
/// to `batched_wave_kernel{_sparse}` directly.
#[derive(Debug)]
pub struct WaveCharge<'a> {
    /// Kernel-class span name (`fo.spmv`, `prop.activity`, ...).
    pub name: &'static str,
    /// Per-active-lane `(flops, bytes)` of this class.
    pub per_lane: &'a [(f64, f64)],
    /// Charge at the sparse throughput instead of the dense rate.
    pub sparse: bool,
}

/// A per-lane executing body for classes whose numerics live outside
/// `gmip-gpu` (the `fo.norm` convergence checks, propagation rounds,
/// fix-and-propagate dives). Each body is called exactly once per
/// dispatch, by exactly one thread.
pub type LaneBody<'a> = &'a mut (dyn FnMut() + Send);

/// Fused kernel-class dispatch: execute the lane payloads, then charge the
/// simulated cost. All methods return the simulated ns charged.
pub trait Accelerator: Send + Sync + std::fmt::Debug {
    /// Backend label (`"sim"` / `"native"`).
    fn name(&self) -> &'static str;

    /// Threads lane bodies fan across (1 for the simulator).
    fn threads(&self) -> usize;

    /// Fused `fo.spmv_t` over all active lanes: `aty = Aᵀy`.
    fn fo_spmv_t(
        &self,
        csr: &CsrMatrix,
        lanes: &mut [SpmvTLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64;

    /// Fused `fo.axpy`: projected primal step + over-relaxation.
    fn fo_axpy(
        &self,
        c_tilde: &[f64],
        lanes: &mut [AxpyLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64;

    /// Fused `fo.spmv`: `ax = Ax̂`, dual ascent, averaging sums.
    fn fo_spmv(
        &self,
        csr: &CsrMatrix,
        b: &[f64],
        lanes: &mut [SpmvLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64;

    /// Fused dispatch of opaque per-lane bodies under wall-clock class
    /// `class`, followed by the listed cost charges in order. Used for the
    /// `fo.norm` checks (whose safe-bound math lives in `gmip-lp`) and the
    /// propagation/dive sweeps (whose math lives in `gmip-prop`).
    fn fused_dispatch(
        &self,
        class: &'static str,
        bodies: &mut [LaneBody<'_>],
        charges: &[WaveCharge<'_>],
        stream: StreamId,
    ) -> f64;

    /// Charges a host↔device transfer on the underlying device.
    fn transfer(&self, bytes: usize, h2d: bool, stream: StreamId);

    /// Records a stream event on the underlying device.
    fn record_event(&self, stream: StreamId);

    /// Snapshot of the backend's `wall.*` registry (empty for the
    /// simulator). Kept outside the device's `gpu.*` registry so the
    /// byte-determinism surface never sees wall-clock.
    fn wall(&self) -> MetricsRegistry;
}

fn apply_charges(dev: &Mutex<GpuDevice>, charges: &[WaveCharge<'_>], stream: StreamId) -> f64 {
    let mut d = dev.lock();
    let mut total = 0.0;
    for c in charges {
        total += if c.sparse {
            d.batched_wave_kernel_sparse(c.name, c.per_lane, stream)
        } else {
            d.batched_wave_kernel(c.name, c.per_lane, stream)
        };
    }
    total
}

/// The cost-model backend: sequential lane execution, simulated charges.
/// This is bitwise the pre-trait behavior and remains the oracle every
/// other backend is checked against.
#[derive(Debug, Clone)]
pub struct SimAccelerator {
    dev: Arc<Mutex<GpuDevice>>,
}

impl SimAccelerator {
    /// Wraps a shared device.
    pub fn new(dev: Arc<Mutex<GpuDevice>>) -> Self {
        Self { dev }
    }
}

impl Accelerator for SimAccelerator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn threads(&self) -> usize {
        1
    }

    fn fo_spmv_t(
        &self,
        csr: &CsrMatrix,
        lanes: &mut [SpmvTLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        for lane in lanes.iter_mut() {
            kernels::spmv_t_lane(csr, lane);
        }
        self.dev
            .lock()
            .batched_wave_kernel_sparse("fo.spmv_t", per_lane, stream)
    }

    fn fo_axpy(
        &self,
        c_tilde: &[f64],
        lanes: &mut [AxpyLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        for lane in lanes.iter_mut() {
            kernels::axpy_lane(c_tilde, lane);
        }
        self.dev
            .lock()
            .batched_wave_kernel("fo.axpy", per_lane, stream)
    }

    fn fo_spmv(
        &self,
        csr: &CsrMatrix,
        b: &[f64],
        lanes: &mut [SpmvLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        for lane in lanes.iter_mut() {
            kernels::spmv_lane(csr, b, lane);
        }
        self.dev
            .lock()
            .batched_wave_kernel_sparse("fo.spmv", per_lane, stream)
    }

    fn fused_dispatch(
        &self,
        _class: &'static str,
        bodies: &mut [LaneBody<'_>],
        charges: &[WaveCharge<'_>],
        stream: StreamId,
    ) -> f64 {
        for body in bodies.iter_mut() {
            body();
        }
        apply_charges(&self.dev, charges, stream)
    }

    fn transfer(&self, bytes: usize, h2d: bool, stream: StreamId) {
        self.dev.lock().charge_transfer(bytes, h2d, stream);
    }

    fn record_event(&self, stream: StreamId) {
        let _ = self.dev.lock().record_event(stream);
    }

    fn wall(&self) -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// The executing backend: identical charges, but the lane bodies really
/// run — fanned across a persistent thread pool, one fused dispatch per
/// kernel class — with real wall-clock per class recorded under `wall.*`.
#[derive(Debug)]
pub struct NativeAccelerator {
    dev: Arc<Mutex<GpuDevice>>,
    pool: rayon::ThreadPool,
    wall: Mutex<MetricsRegistry>,
}

impl NativeAccelerator {
    /// Builds the backend over a shared device with `threads` pool
    /// threads (0 = `rayon::current_num_threads()`).
    pub fn new(dev: Arc<Mutex<GpuDevice>>, threads: usize) -> Self {
        let threads = if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        };
        let mut wall = MetricsRegistry::new();
        wall.set_gauge(names::WALL_THREADS, threads as f64);
        Self {
            dev,
            pool: rayon::ThreadPool::new(threads),
            wall: Mutex::new(wall),
        }
    }

    fn wall_key(class: &str) -> &'static str {
        match class {
            "fo.spmv_t" => names::WALL_FO_SPMV_T,
            "fo.axpy" => names::WALL_FO_AXPY,
            "fo.spmv" => names::WALL_FO_SPMV,
            "fo.norm" => names::WALL_FO_NORM,
            "prop.round" => names::WALL_PROP_ROUND,
            "heur.dive" => names::WALL_HEUR_DIVE,
            _ => names::WALL_OTHER,
        }
    }

    /// Runs `f` over every lane, each lane touched by exactly one pool
    /// thread, timing the fan-out under the class's wall key.
    fn run_lanes<T: Send>(&self, class: &'static str, lanes: &mut [T], f: impl Fn(&mut T) + Sync) {
        let t0 = Instant::now();
        let base = lanes.as_mut_ptr() as usize;
        self.pool.dispatch(lanes.len(), &|i| {
            // Safety: `dispatch` hands each index to exactly one thread and
            // blocks until all are done, so the `&mut` borrows are disjoint
            // and live for the call.
            let lane = unsafe { &mut *(base as *mut T).add(i) };
            f(lane);
        });
        let mut wall = self.wall.lock();
        wall.incr(Self::wall_key(class), t0.elapsed().as_nanos() as f64);
        wall.incr(names::WALL_DISPATCHES, 1.0);
    }
}

impl Accelerator for NativeAccelerator {
    fn name(&self) -> &'static str {
        "native"
    }

    fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    fn fo_spmv_t(
        &self,
        csr: &CsrMatrix,
        lanes: &mut [SpmvTLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        self.run_lanes("fo.spmv_t", lanes, |lane| kernels::spmv_t_lane(csr, lane));
        self.dev
            .lock()
            .batched_wave_kernel_sparse("fo.spmv_t", per_lane, stream)
    }

    fn fo_axpy(
        &self,
        c_tilde: &[f64],
        lanes: &mut [AxpyLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        self.run_lanes("fo.axpy", lanes, |lane| kernels::axpy_lane(c_tilde, lane));
        self.dev
            .lock()
            .batched_wave_kernel("fo.axpy", per_lane, stream)
    }

    fn fo_spmv(
        &self,
        csr: &CsrMatrix,
        b: &[f64],
        lanes: &mut [SpmvLane<'_>],
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        self.run_lanes("fo.spmv", lanes, |lane| kernels::spmv_lane(csr, b, lane));
        self.dev
            .lock()
            .batched_wave_kernel_sparse("fo.spmv", per_lane, stream)
    }

    fn fused_dispatch(
        &self,
        class: &'static str,
        bodies: &mut [LaneBody<'_>],
        charges: &[WaveCharge<'_>],
        stream: StreamId,
    ) -> f64 {
        self.run_lanes(class, bodies, |body| body());
        apply_charges(&self.dev, charges, stream)
    }

    fn transfer(&self, bytes: usize, h2d: bool, stream: StreamId) {
        self.dev.lock().charge_transfer(bytes, h2d, stream);
    }

    fn record_event(&self, stream: StreamId) {
        let _ = self.dev.lock().record_event(stream);
    }

    fn wall(&self) -> MetricsRegistry {
        self.wall.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, DEFAULT_STREAM};
    use gmip_linalg::DenseMatrix;

    fn dev() -> Arc<Mutex<GpuDevice>> {
        Arc::new(Mutex::new(GpuDevice::new(DeviceConfig::gpu(1))))
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(
            BackendKind::parse("native"),
            Some(BackendKind::Native { threads: 0 })
        );
        assert_eq!(BackendKind::parse("cuda"), None);
        assert_eq!(BackendKind::default().label(), "sim");
        assert_eq!(BackendKind::Native { threads: 3 }.label(), "native");
    }

    #[test]
    fn both_backends_charge_identical_ns() {
        let per_lane = vec![(1000.0, 4000.0); 4];
        let sim = SimAccelerator::new(dev());
        let nat = NativeAccelerator::new(dev(), 2);
        let csr = CsrMatrix::from_dense(&DenseMatrix::identity(3));
        let run = |a: &dyn Accelerator| {
            let mut ys = vec![vec![1.0, 2.0, 3.0]; 4];
            let mut atys = vec![vec![0.0; 3]; 4];
            let mut lanes: Vec<SpmvTLane<'_>> = ys
                .iter_mut()
                .zip(atys.iter_mut())
                .map(|(y, aty)| SpmvTLane { y, aty })
                .collect();
            let t = a.fo_spmv_t(&csr, &mut lanes, &per_lane, DEFAULT_STREAM);
            (t, atys)
        };
        let (t_sim, out_sim) = run(&sim);
        let (t_nat, out_nat) = run(&nat);
        assert_eq!(t_sim.to_bits(), t_nat.to_bits());
        assert_eq!(out_sim, out_nat);
        // Wall clock exists only on the native side and never under gpu.*.
        assert!(sim.wall().is_empty());
        let wall = nat.wall();
        assert!(wall.counter(names::WALL_DISPATCHES) >= 1.0);
        assert!(wall.counter(names::WALL_FO_SPMV_T) > 0.0);
    }

    #[test]
    fn fused_dispatch_runs_bodies_and_charges_in_order() {
        let nat = NativeAccelerator::new(dev(), 3);
        let mut hits = [0u32; 8];
        let mut closures: Vec<_> = hits
            .iter_mut()
            .map(|h| {
                move || {
                    *h += 1;
                }
            })
            .collect();
        let mut bodies: Vec<LaneBody<'_>> = closures
            .iter_mut()
            .map(|c| c as &mut (dyn FnMut() + Send))
            .collect();
        let per_lane = vec![(10.0, 10.0); 8];
        let t = nat.fused_dispatch(
            "prop.round",
            &mut bodies,
            &[
                WaveCharge {
                    name: "prop.activity",
                    per_lane: &per_lane,
                    sparse: true,
                },
                WaveCharge {
                    name: "prop.reduce",
                    per_lane: &per_lane,
                    sparse: false,
                },
            ],
            DEFAULT_STREAM,
        );
        assert!(t > 0.0);
        drop(bodies);
        drop(closures);
        assert!(hits.iter().all(|&h| h == 1));
        assert!(nat.wall().counter(names::WALL_PROP_ROUND) > 0.0);
    }
}
