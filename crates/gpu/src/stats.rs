//! Operation counters for a simulated device.
//!
//! Every experiment in the reproduction reports some subset of these: E3a–E3c
//! count host↔device transfers (Section 5's reuse arguments), E4 counts
//! kernel launches (batching), E1/E8 report simulated busy time.
//!
//! Since the observability refactor the ledger of record is a
//! [`gmip_trace::MetricsRegistry`] owned by the device (keys in
//! [`gmip_trace::names`], `gpu.*`); [`DeviceStats`] remains the stable
//! reporting view, materialized on demand by [`DeviceStats::from_registry`]
//! and convertible back with [`DeviceStats::to_registry`] for session-level
//! aggregation.

use gmip_trace::{names, MetricsRegistry};

/// Cumulative counters maintained by a [`crate::device::GpuDevice`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Host→device transfer count.
    pub h2d_transfers: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host transfer count.
    pub d2h_transfers: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Kernel launches issued (a batched launch counts once).
    pub kernel_launches: u64,
    /// Floating-point operations charged to the device.
    pub flops: f64,
    /// Simulated nanoseconds spent in transfers.
    pub transfer_ns: f64,
    /// Simulated nanoseconds spent in kernels.
    pub kernel_ns: f64,
}

impl DeviceStats {
    /// Materializes the reporting view from a device's metrics registry.
    pub fn from_registry(r: &MetricsRegistry) -> Self {
        DeviceStats {
            h2d_transfers: r.counter(names::GPU_H2D_TRANSFERS) as u64,
            h2d_bytes: r.counter(names::GPU_H2D_BYTES) as u64,
            d2h_transfers: r.counter(names::GPU_D2H_TRANSFERS) as u64,
            d2h_bytes: r.counter(names::GPU_D2H_BYTES) as u64,
            kernel_launches: r.counter(names::GPU_KERNEL_LAUNCHES) as u64,
            flops: r.counter(names::GPU_KERNEL_FLOPS),
            transfer_ns: r.counter(names::GPU_TRANSFER_NS),
            kernel_ns: r.counter(names::GPU_KERNEL_NS),
        }
    }

    /// Writes the counters back out as a registry fragment (for merging a
    /// snapshot into a session-level summary).
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.incr(names::GPU_H2D_TRANSFERS, self.h2d_transfers as f64);
        r.incr(names::GPU_H2D_BYTES, self.h2d_bytes as f64);
        r.incr(names::GPU_D2H_TRANSFERS, self.d2h_transfers as f64);
        r.incr(names::GPU_D2H_BYTES, self.d2h_bytes as f64);
        r.incr(names::GPU_KERNEL_LAUNCHES, self.kernel_launches as f64);
        r.incr(names::GPU_KERNEL_FLOPS, self.flops);
        r.incr(names::GPU_TRANSFER_NS, self.transfer_ns);
        r.incr(names::GPU_KERNEL_NS, self.kernel_ns);
        r
    }

    /// Total transfers in both directions.
    pub fn total_transfers(&self) -> u64 {
        self.h2d_transfers + self.d2h_transfers
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total simulated busy time (transfers + kernels), ns.
    pub fn busy_ns(&self) -> f64 {
        self.transfer_ns + self.kernel_ns
    }

    /// Adds another stats block into this one (aggregating multiple devices
    /// or workers).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.h2d_transfers += other.h2d_transfers;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_transfers += other.d2h_transfers;
        self.d2h_bytes += other.d2h_bytes;
        self.kernel_launches += other.kernel_launches;
        self.flops += other.flops;
        self.transfer_ns += other.transfer_ns;
        self.kernel_ns += other.kernel_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = DeviceStats {
            h2d_transfers: 1,
            h2d_bytes: 100,
            d2h_transfers: 2,
            d2h_bytes: 50,
            kernel_launches: 3,
            flops: 10.0,
            transfer_ns: 5.0,
            kernel_ns: 7.0,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.h2d_transfers, 2);
        assert_eq!(a.total_transfers(), 6);
        assert_eq!(a.total_bytes(), 300);
        assert_eq!(a.kernel_launches, 6);
        assert_eq!(a.busy_ns(), 24.0);
    }

    #[test]
    fn default_is_zero() {
        let s = DeviceStats::default();
        assert_eq!(s.total_transfers(), 0);
        assert_eq!(s.busy_ns(), 0.0);
    }

    #[test]
    fn registry_round_trip_preserves_counters() {
        let s = DeviceStats {
            h2d_transfers: 3,
            h2d_bytes: 4096,
            d2h_transfers: 1,
            d2h_bytes: 64,
            kernel_launches: 17,
            flops: 1.5e6,
            transfer_ns: 250.0,
            kernel_ns: 900.0,
        };
        assert_eq!(DeviceStats::from_registry(&s.to_registry()), s);
        // An empty registry materializes to the zero view.
        assert_eq!(
            DeviceStats::from_registry(&MetricsRegistry::new()),
            DeviceStats::default()
        );
    }

    #[test]
    fn merging_registries_matches_merging_stats() {
        let a = DeviceStats {
            h2d_transfers: 2,
            h2d_bytes: 100,
            d2h_transfers: 5,
            d2h_bytes: 700,
            kernel_launches: 9,
            flops: 50.0,
            transfer_ns: 10.0,
            kernel_ns: 20.0,
        };
        let b = DeviceStats {
            h2d_transfers: 1,
            h2d_bytes: 11,
            d2h_transfers: 0,
            d2h_bytes: 0,
            kernel_launches: 4,
            flops: 8.0,
            transfer_ns: 2.5,
            kernel_ns: 4.5,
        };
        // Aggregating via the registry (counters add under merge) agrees
        // with the legacy DeviceStats::merge path.
        let mut reg = a.to_registry();
        reg.merge(&b.to_registry());
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(DeviceStats::from_registry(&reg), direct);
    }
}
