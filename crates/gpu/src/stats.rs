//! Operation counters for a simulated device.
//!
//! Every experiment in the reproduction reports some subset of these: E3a–E3c
//! count host↔device transfers (Section 5's reuse arguments), E4 counts
//! kernel launches (batching), E1/E8 report simulated busy time.

/// Cumulative counters maintained by a [`crate::device::GpuDevice`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Host→device transfer count.
    pub h2d_transfers: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host transfer count.
    pub d2h_transfers: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Kernel launches issued (a batched launch counts once).
    pub kernel_launches: u64,
    /// Floating-point operations charged to the device.
    pub flops: f64,
    /// Simulated nanoseconds spent in transfers.
    pub transfer_ns: f64,
    /// Simulated nanoseconds spent in kernels.
    pub kernel_ns: f64,
}

impl DeviceStats {
    /// Total transfers in both directions.
    pub fn total_transfers(&self) -> u64 {
        self.h2d_transfers + self.d2h_transfers
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total simulated busy time (transfers + kernels), ns.
    pub fn busy_ns(&self) -> f64 {
        self.transfer_ns + self.kernel_ns
    }

    /// Adds another stats block into this one (aggregating multiple devices
    /// or workers).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.h2d_transfers += other.h2d_transfers;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_transfers += other.d2h_transfers;
        self.d2h_bytes += other.d2h_bytes;
        self.kernel_launches += other.kernel_launches;
        self.flops += other.flops;
        self.transfer_ns += other.transfer_ns;
        self.kernel_ns += other.kernel_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = DeviceStats {
            h2d_transfers: 1,
            h2d_bytes: 100,
            d2h_transfers: 2,
            d2h_bytes: 50,
            kernel_launches: 3,
            flops: 10.0,
            transfer_ns: 5.0,
            kernel_ns: 7.0,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.h2d_transfers, 2);
        assert_eq!(a.total_transfers(), 6);
        assert_eq!(a.total_bytes(), 300);
        assert_eq!(a.kernel_launches, 6);
        assert_eq!(a.busy_ns(), 24.0);
    }

    #[test]
    fn default_is_zero() {
        let s = DeviceStats::default();
        assert_eq!(s.total_transfers(), 0);
        assert_eq!(s.busy_ns(), 0.0);
    }
}
