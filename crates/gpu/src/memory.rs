//! Device memory accounting.
//!
//! GPU memory capacity is the central architectural constraint in the
//! paper's strategy analysis (Section 3): Strategy 1 fails when the
//! branch-and-cut tree outgrows device memory, Strategy 2 works when the LP
//! matrix fits on one device, Strategy 4 exists for matrices that don't fit
//! anywhere. The allocator here tracks bytes only — the simulated device
//! stores actual payloads host-side — but enforces capacity exactly so those
//! regime boundaries are real in the experiments.

/// Byte-accurate device memory allocator.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: usize,
    used: usize,
    /// High-water mark, for reporting.
    peak: usize,
    allocations: usize,
}

/// Error returned when an allocation exceeds the remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes still available.
    pub available: usize,
    /// Total device capacity.
    pub capacity: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B, available {} B of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl DeviceMemory {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
            allocations: 0,
        }
    }

    /// Reserves `bytes`, failing if capacity would be exceeded.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory {
                requested: bytes,
                available,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.allocations += 1;
        Ok(())
    }

    /// Releases `bytes` previously allocated.
    ///
    /// # Panics
    /// Panics (in debug builds) if more is freed than is in use — that is a
    /// device bookkeeping bug, not a recoverable condition.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(
            bytes <= self.used,
            "freeing {} of {} used",
            bytes,
            self.used
        );
        self.used = self.used.saturating_sub(bytes);
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently in use.
    #[inline]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes currently free.
    #[inline]
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// High-water mark of usage.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of successful allocations performed.
    #[inline]
    pub fn allocation_count(&self) -> usize {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut mem = DeviceMemory::new(1000);
        mem.alloc(400).unwrap();
        assert_eq!(mem.used(), 400);
        assert_eq!(mem.available(), 600);
        mem.alloc(600).unwrap();
        assert_eq!(mem.available(), 0);
        mem.free(400);
        assert_eq!(mem.used(), 600);
        assert_eq!(mem.peak(), 1000);
        assert_eq!(mem.allocation_count(), 2);
    }

    #[test]
    fn oom_reports_shortfall() {
        let mut mem = DeviceMemory::new(100);
        mem.alloc(80).unwrap();
        let err = mem.alloc(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 20);
        assert_eq!(err.capacity, 100);
        // Failed allocation must not change state.
        assert_eq!(mem.used(), 80);
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut mem = DeviceMemory::new(0);
        mem.alloc(0).unwrap();
        assert!(mem.alloc(1).is_err());
    }
}
