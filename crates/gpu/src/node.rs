//! Compute-node composition: a host CPU plus one or more accelerators.
//!
//! Models the node architecture the paper assumes (Section 3: "modern
//! architectures in which the CPUs comprise of many processor cores in
//! addition to multiple GPUs serving as accelerators"). The [`Accel`]
//! wrapper makes a device shareable across solver components (the
//! orchestrator, the LP engine, the cut separator) the way a CUDA context
//! is shared by host threads.

use crate::backend::{Accelerator, BackendKind, NativeAccelerator, SimAccelerator};
use crate::cost::CostModel;
use crate::device::{DeviceConfig, GpuDevice};
use crate::stats::DeviceStats;
use parking_lot::Mutex;
use std::sync::Arc;

/// A cloneable, shareable handle to a simulated device.
///
/// All device methods are reachable through [`Accel::with`]; convenience
/// accessors cover the common queries. Fused lane dispatches go through
/// the handle's executing backend ([`Accel::exec`]), which defaults to the
/// sequential cost-model simulator and can be swapped via
/// [`Accel::with_backend`]. Either way the *simulated* charges land on the
/// same shared device.
#[derive(Debug, Clone)]
pub struct Accel {
    inner: Arc<Mutex<GpuDevice>>,
    kind: AccelKind,
    backend: BackendKind,
    exec: Arc<dyn Accelerator>,
}

/// What kind of executor an [`Accel`] wraps — used by the solver's strategy
/// logic to decide placement (e.g. Hybrid sends sparse setup to the CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelKind {
    /// A GPU-class accelerator.
    Gpu,
    /// The host CPU executing under the CPU cost model.
    Cpu,
}

impl Accel {
    /// Wraps a device, routing its trace spans to the group matching the
    /// executor kind (GPU devices default to `Gpu(0)`; see
    /// [`Accel::with_trace_group`] for multi-GPU nodes).
    pub fn new(mut device: GpuDevice, kind: AccelKind) -> Self {
        if kind == AccelKind::Cpu {
            device.set_trace_group(gmip_trace::TrackGroup::Host);
        }
        let inner = Arc::new(Mutex::new(device));
        Self {
            exec: Arc::new(SimAccelerator::new(Arc::clone(&inner))),
            inner,
            kind,
            backend: BackendKind::Sim,
        }
    }

    /// Swaps the executing backend (default [`BackendKind::Sim`]). The
    /// simulated device — and therefore every traced ns — is shared
    /// unchanged; only who runs the lane numerics differs.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.exec = match backend {
            BackendKind::Sim => Arc::new(SimAccelerator::new(Arc::clone(&self.inner))),
            BackendKind::Native { threads } => {
                Arc::new(NativeAccelerator::new(Arc::clone(&self.inner), threads))
            }
        };
        self.backend = backend;
        self
    }

    /// The executing backend fused lane dispatches run on.
    pub fn exec(&self) -> Arc<dyn Accelerator> {
        Arc::clone(&self.exec)
    }

    /// The configured backend kind.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Snapshot of the executing backend's `wall.*` registry (real
    /// wall-clock; empty under the simulator). Strictly outside the
    /// byte-determinism surface.
    pub fn wall_metrics(&self) -> gmip_trace::MetricsRegistry {
        self.exec.wall()
    }

    /// Reassigns the trace track group (e.g. `TrackGroup::Gpu(i)` for the
    /// i-th device of a node) and returns the handle.
    pub fn with_trace_group(self, group: gmip_trace::TrackGroup) -> Self {
        self.with(|d| d.set_trace_group(group));
        self
    }

    /// Snapshot of the device's metrics registry (`gpu.*` series).
    pub fn metrics(&self) -> gmip_trace::MetricsRegistry {
        self.inner.lock().metrics().clone()
    }

    /// A GPU accelerator with `gib` GiB of memory over PCIe.
    pub fn gpu(gib: usize) -> Self {
        Self::new(GpuDevice::new(DeviceConfig::gpu(gib)), AccelKind::Gpu)
    }

    /// A GPU accelerator with a custom configuration.
    pub fn gpu_with(config: DeviceConfig) -> Self {
        Self::new(GpuDevice::new(config), AccelKind::Gpu)
    }

    /// The host CPU as an executor.
    pub fn cpu() -> Self {
        Self::new(GpuDevice::new(DeviceConfig::cpu()), AccelKind::Cpu)
    }

    /// Executor kind.
    pub fn kind(&self) -> AccelKind {
        self.kind
    }

    /// Runs `f` with exclusive access to the device.
    pub fn with<R>(&self, f: impl FnOnce(&mut GpuDevice) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Simulated elapsed time at the device frontier, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.inner.lock().elapsed_ns()
    }

    /// Modeled energy consumed so far, joules: busy time × board power
    /// (the Section 2.2 energy-efficiency comparison).
    pub fn energy_j(&self) -> f64 {
        let dev = self.inner.lock();
        dev.elapsed_ns() * 1e-9 * dev.cost_model().power_w
    }

    /// Snapshot of the device's cumulative stats.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats()
    }

    /// The device's cost-model name (preset identification in reports).
    pub fn cost_name(&self) -> &'static str {
        self.inner.lock().cost_model().name
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity(&self) -> usize {
        self.inner.lock().memory().capacity()
    }

    /// Device memory currently in use, bytes.
    pub fn mem_used(&self) -> usize {
        self.inner.lock().memory().used()
    }
}

/// A compute node: one host executor plus `gpus` accelerators.
#[derive(Debug, Clone)]
pub struct ComputeNode {
    /// The host CPU executor.
    pub host: Accel,
    /// The node's accelerators.
    pub gpus: Vec<Accel>,
}

impl ComputeNode {
    /// Builds a node with `n_gpus` GPUs of `gib` GiB each. Each GPU's trace
    /// spans land on its own track group (`Gpu(0)`, `Gpu(1)`, ...).
    pub fn new(n_gpus: usize, gib: usize) -> Self {
        Self {
            host: Accel::cpu(),
            gpus: (0..n_gpus)
                .map(|i| Accel::gpu(gib).with_trace_group(gmip_trace::TrackGroup::Gpu(i as u16)))
                .collect(),
        }
    }

    /// Builds a node whose GPUs use a custom cost model.
    pub fn with_cost(n_gpus: usize, mem_capacity: usize, cost: CostModel) -> Self {
        Self {
            host: Accel::cpu(),
            gpus: (0..n_gpus)
                .map(|i| {
                    Accel::gpu_with(DeviceConfig {
                        cost: cost.clone(),
                        mem_capacity,
                        streams: 1,
                    })
                    .with_trace_group(gmip_trace::TrackGroup::Gpu(i as u16))
                })
                .collect(),
        }
    }

    /// The node's makespan: the max simulated time over host and devices.
    pub fn makespan_ns(&self) -> f64 {
        let mut t = self.host.elapsed_ns();
        for g in &self.gpus {
            t = t.max(g.elapsed_ns());
        }
        t
    }

    /// Aggregated stats over host + devices.
    pub fn total_stats(&self) -> DeviceStats {
        let mut s = self.host.stats();
        for g in &self.gpus {
            s.merge(&g.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DEFAULT_STREAM;
    use gmip_linalg::DenseMatrix;

    #[test]
    fn accel_shares_one_device() {
        let a = Accel::gpu(1);
        let b = a.clone();
        let m = DenseMatrix::identity(4);
        a.with(|d| d.upload_matrix(&m, DEFAULT_STREAM)).unwrap();
        // The clone sees the same stats.
        assert_eq!(b.stats().h2d_transfers, 1);
        assert_eq!(a.kind(), AccelKind::Gpu);
        assert_eq!(Accel::cpu().kind(), AccelKind::Cpu);
    }

    #[test]
    fn cpu_accel_has_free_transfers() {
        let c = Accel::cpu();
        let m = DenseMatrix::identity(8);
        c.with(|d| d.upload_matrix(&m, DEFAULT_STREAM)).unwrap();
        let s = c.stats();
        assert_eq!(s.h2d_transfers, 1);
        assert_eq!(s.transfer_ns, 0.0);
    }

    #[test]
    fn node_makespan_is_max_over_executors() {
        let node = ComputeNode::new(2, 1);
        let m = DenseMatrix::identity(16);
        node.gpus[0]
            .with(|d| {
                let h = d.upload_matrix(&m, DEFAULT_STREAM)?;
                d.lu_factor(h, DEFAULT_STREAM)
            })
            .unwrap();
        let t0 = node.gpus[0].elapsed_ns();
        assert!(t0 > 0.0);
        assert_eq!(node.gpus[1].elapsed_ns(), 0.0);
        assert_eq!(node.makespan_ns(), t0);
        let total = node.total_stats();
        assert_eq!(total.h2d_transfers, 1);
    }

    #[test]
    fn custom_cost_node() {
        let node = ComputeNode::with_cost(1, 1 << 20, CostModel::gpu_nvlink());
        assert_eq!(node.gpus[0].cost_name(), "gpu-nvlink");
        assert_eq!(node.gpus[0].mem_capacity(), 1 << 20);
        assert_eq!(node.gpus[0].mem_used(), 0);
    }
}
