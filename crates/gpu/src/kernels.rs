//! Typed lane payloads and canonical per-lane bodies of the executing
//! kernel classes.
//!
//! A fused wave launch in the simulator takes pre-reduced `(flops, bytes)`
//! pairs; the executing [`crate::Accelerator`] variants instead take these
//! payload structs — the shared CSR matrix plus each lane's dense vectors —
//! and run the per-lane body below once per lane. The bodies are plain
//! sequential loops in the *exact* floating-point operation order the
//! first-order wave engine used when it ran lane-by-lane on the host, which
//! is what makes a lane's result bit-identical no matter which backend (or
//! how many threads) executed the dispatch: parallelism only ever crosses
//! lane boundaries, never reorders math within one.

use gmip_linalg::CsrMatrix;

/// Per-lane payload of the fused `fo.spmv_t` class: `aty = Aᵀ·y` over the
/// shared CSR matrix.
#[derive(Debug)]
pub struct SpmvTLane<'a> {
    /// The lane's dual iterate (length `m`).
    pub y: &'a [f64],
    /// Output: `Aᵀ y` (length `n`), fully overwritten.
    pub aty: &'a mut [f64],
}

/// Canonical body of one `fo.spmv_t` lane.
pub fn spmv_t_lane(csr: &CsrMatrix, lane: &mut SpmvTLane<'_>) {
    csr.matvec_transposed_into(lane.y, lane.aty)
        .expect("fo.spmv_t shape");
}

/// Per-lane payload of the fused `fo.axpy` class: the projected primal
/// gradient step plus the over-relaxed point `x̂ = 2x⁺ − x`.
#[derive(Debug)]
pub struct AxpyLane<'a> {
    /// Primal iterate (length `n`), updated in place.
    pub x: &'a mut [f64],
    /// Output: the over-relaxed point (length `n`), fully overwritten.
    pub xhat: &'a mut [f64],
    /// `Aᵀ y` from the preceding `fo.spmv_t` (length `n`).
    pub aty: &'a [f64],
    /// The lane's lower bounds (length `n`).
    pub lb: &'a [f64],
    /// The lane's upper bounds (length `n`).
    pub ub: &'a [f64],
    /// Primal step size `τ = η/ω`.
    pub tau: f64,
}

/// Canonical body of one `fo.axpy` lane: for each variable, step along
/// `−(c̃ + Aᵀy)`, clamp to the box, and emit the over-relaxed point using
/// the *old* `x[j]`.
pub fn axpy_lane(c_tilde: &[f64], lane: &mut AxpyLane<'_>) {
    for j in 0..c_tilde.len() {
        let step = lane.x[j] - lane.tau * (c_tilde[j] + lane.aty[j]);
        let xj = step.max(lane.lb[j]).min(lane.ub[j]);
        lane.xhat[j] = 2.0 * xj - lane.x[j];
        lane.x[j] = xj;
    }
}

/// Per-lane payload of the fused `fo.spmv` class: `ax = A·x̂`, the dual
/// ascent step, and the running-average accumulators (the epilogue rides in
/// the same class because it consumes `ax` in place).
#[derive(Debug)]
pub struct SpmvLane<'a> {
    /// The over-relaxed primal point from `fo.axpy` (length `n`).
    pub xhat: &'a [f64],
    /// Output: `A x̂` (length `m`), fully overwritten.
    pub ax: &'a mut [f64],
    /// The updated primal iterate (length `n`), read by the averaging sum.
    pub x: &'a [f64],
    /// Dual iterate (length `m`), updated in place.
    pub y: &'a mut [f64],
    /// Running primal-average accumulator (length `n`).
    pub x_sum: &'a mut [f64],
    /// Running dual-average accumulator (length `m`).
    pub y_sum: &'a mut [f64],
    /// Dual step size `σ = η·ω`.
    pub sigma: f64,
}

/// Canonical body of one `fo.spmv` lane: matvec, dual update against the
/// rhs, then the two averaging sums — in that order.
pub fn spmv_lane(csr: &CsrMatrix, b: &[f64], lane: &mut SpmvLane<'_>) {
    csr.matvec_into(lane.xhat, lane.ax).expect("fo.spmv shape");
    for i in 0..b.len() {
        lane.y[i] += lane.sigma * (lane.ax[i] - b[i]);
    }
    for j in 0..lane.x.len() {
        lane.x_sum[j] += lane.x[j];
    }
    for i in 0..b.len() {
        lane.y_sum[i] += lane.y[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_linalg::DenseMatrix;

    fn small_csr() -> CsrMatrix {
        let d = DenseMatrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![0.0, -1.0, 3.0]]).unwrap();
        CsrMatrix::from_dense(&d)
    }

    #[test]
    fn spmv_t_matches_reference() {
        let csr = small_csr();
        let y = vec![2.0, -1.0];
        let mut aty = vec![0.0; 3];
        spmv_t_lane(
            &csr,
            &mut SpmvTLane {
                y: &y,
                aty: &mut aty,
            },
        );
        assert_eq!(aty, csr.matvec_transposed(&y).unwrap());
    }

    #[test]
    fn axpy_clamps_and_over_relaxes_with_old_x() {
        let c_tilde = vec![1.0, -1.0];
        let mut x = vec![0.5, 0.5];
        let mut xhat = vec![0.0; 2];
        let aty = vec![0.0, 0.0];
        let (lb, ub) = (vec![0.0, 0.0], vec![1.0, 0.6]);
        axpy_lane(
            &c_tilde,
            &mut AxpyLane {
                x: &mut x,
                xhat: &mut xhat,
                aty: &aty,
                lb: &lb,
                ub: &ub,
                tau: 1.0,
            },
        );
        // Var 0 steps to -0.5, clamps to 0; var 1 steps to 1.5, clamps to
        // 0.6; both over-relax against the pre-update x = 0.5.
        assert_eq!(x, vec![0.0, 0.6]);
        assert_eq!(xhat, vec![-0.5, 0.7]);
    }

    #[test]
    fn spmv_runs_dual_update_then_sums() {
        let csr = small_csr();
        let b = vec![1.0, 1.0];
        let xhat = vec![1.0, 1.0, 1.0];
        let x = vec![0.25, 0.25, 0.25];
        let mut ax = vec![0.0; 2];
        let mut y = vec![0.0, 0.0];
        let mut x_sum = vec![0.0; 3];
        let mut y_sum = vec![0.0; 2];
        spmv_lane(
            &csr,
            &b,
            &mut SpmvLane {
                xhat: &xhat,
                ax: &mut ax,
                x: &x,
                y: &mut y,
                x_sum: &mut x_sum,
                y_sum: &mut y_sum,
                sigma: 0.5,
            },
        );
        assert_eq!(ax, vec![3.0, 2.0]);
        assert_eq!(y, vec![1.0, 0.5]);
        assert_eq!(x_sum, x);
        assert_eq!(y_sum, y);
    }
}
