//! Streams: per-queue logical timelines for concurrent kernel execution.
//!
//! Section 5.5: "multiple concurrent streams can be created and launched at
//! a given time on the same GPU". The simulator models a stream as an
//! independent completion-time line; operations enqueued on different
//! streams overlap in simulated time, and `sync` joins them. Events capture
//! a stream's current timestamp for cross-stream waits.

/// Identifier of a stream on a device. Stream 0 always exists (the default
/// stream).
pub type StreamId = usize;

/// A recorded event: the simulated timestamp a stream had reached when the
/// event was recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Timestamp (ns) at which the event completes.
    pub at_ns: f64,
}

/// The set of stream timelines of one device.
#[derive(Debug, Clone)]
pub struct StreamSet {
    completion_ns: Vec<f64>,
}

impl StreamSet {
    /// Creates a stream set with `n` streams (at least 1 is enforced).
    pub fn new(n: usize) -> Self {
        Self {
            completion_ns: vec![0.0; n.max(1)],
        }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.completion_ns.len()
    }

    /// Always false: stream 0 exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a stream, returning its id. New streams start at the current
    /// device-wide frontier so they cannot "execute in the past".
    pub fn create(&mut self) -> StreamId {
        let start = self.frontier();
        self.completion_ns.push(start);
        self.completion_ns.len() - 1
    }

    /// Enqueues an operation of duration `cost_ns` on `stream`; returns the
    /// operation's completion timestamp.
    ///
    /// # Panics
    /// Panics if `stream` does not exist (device programming error).
    pub fn enqueue(&mut self, stream: StreamId, cost_ns: f64) -> f64 {
        let t = &mut self.completion_ns[stream];
        *t += cost_ns;
        *t
    }

    /// Records an event on `stream`.
    pub fn record(&self, stream: StreamId) -> Event {
        Event {
            at_ns: self.completion_ns[stream],
        }
    }

    /// Makes `stream` wait for `event` (its timeline cannot proceed before
    /// the event's timestamp).
    pub fn wait(&mut self, stream: StreamId, event: Event) {
        let t = &mut self.completion_ns[stream];
        if *t < event.at_ns {
            *t = event.at_ns;
        }
    }

    /// Device-wide completion frontier (max over streams).
    pub fn frontier(&self) -> f64 {
        self.completion_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Joins all streams at the frontier (device synchronize); returns the
    /// frontier timestamp.
    pub fn sync(&mut self) -> f64 {
        let f = self.frontier();
        for t in &mut self.completion_ns {
            *t = f;
        }
        f
    }

    /// Current completion time of one stream.
    pub fn stream_time(&self, stream: StreamId) -> f64 {
        self.completion_ns[stream]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap() {
        let mut s = StreamSet::new(2);
        s.enqueue(0, 100.0);
        s.enqueue(1, 80.0);
        // Overlapping: frontier is the max, not the sum.
        assert_eq!(s.frontier(), 100.0);
        s.enqueue(1, 30.0);
        assert_eq!(s.frontier(), 110.0);
    }

    #[test]
    fn serial_on_one_stream_accumulates() {
        let mut s = StreamSet::new(1);
        s.enqueue(0, 50.0);
        s.enqueue(0, 50.0);
        assert_eq!(s.frontier(), 100.0);
    }

    #[test]
    fn sync_joins_all_streams() {
        let mut s = StreamSet::new(3);
        s.enqueue(0, 10.0);
        s.enqueue(2, 99.0);
        let f = s.sync();
        assert_eq!(f, 99.0);
        for i in 0..3 {
            assert_eq!(s.stream_time(i), 99.0);
        }
    }

    #[test]
    fn events_order_cross_stream_work() {
        let mut s = StreamSet::new(2);
        s.enqueue(0, 100.0);
        let e = s.record(0);
        // Stream 1 must wait for stream 0's work before its kernel.
        s.wait(1, e);
        s.enqueue(1, 10.0);
        assert_eq!(s.stream_time(1), 110.0);
        // Waiting on a past event is a no-op.
        let past = Event { at_ns: 5.0 };
        s.wait(1, past);
        assert_eq!(s.stream_time(1), 110.0);
    }

    #[test]
    fn created_streams_start_at_frontier() {
        let mut s = StreamSet::new(1);
        s.enqueue(0, 500.0);
        let id = s.create();
        assert_eq!(s.stream_time(id), 500.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_streams_clamped_to_one() {
        let s = StreamSet::new(0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
